"""Ablation A12: cost of the observability plane on the sync cycle.

PR 4 instrumented the hub's hot paths (metrics registry + tracer); this
ablation prices what the observability *plane* adds on top: the metrics
history snapshot taken after every sync cycle plus a full SLO rule
evaluation per cycle.  The baseline arm is the PR-4 configuration — a
fully instrumented hub with ``obs.history.enabled = False`` and no alert
engine — so the measured delta is exactly history recording + alert
evaluation.  Budget: within 5% (plus a small absolute slack for
sub-millisecond cycles).

Also renders the alert table from a fault-injected demo federation and
saves it under ``out/`` — CI uploads that report as a workflow artifact.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.cli import _demo_federation
from repro.core import FederationHub, XdmodInstance
from repro.obs import AlertEngine, Observability
from repro.timeutil import SECONDS_PER_HOUR, ts

from conftest import emit, emit_metrics

T0 = ts(2017, 1, 1)

BUDGET_REL = 1.05  # plane-enabled within 5% of the PR-4 baseline ...
BUDGET_ABS = 0.05  # ... plus 50 ms slack so tiny timings cannot flake
REPEATS = 5
BATCH = 200  # events pumped per sync cycle (many cycles per run)


def _min_time(fn, repeats: int = REPEATS) -> float:
    """Best-of-N wall time; min is the standard noise-robust estimator."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _satellite(n: int) -> XdmodInstance:
    """An instance with ``n`` binlogged fact rows ready to replicate.

    Satellite telemetry is disabled so both arms pay identical
    satellite-side costs; the plane under test lives on the hub.
    """
    from repro.etl.star import create_jobs_star

    sat = XdmodInstance("satellite", obs=Observability.disabled())
    create_jobs_star(sat.schema)
    fact = sat.schema.table("fact_job")
    rng = random.Random(13)
    for i in range(n):
        start = T0 + rng.randrange(0, 300 * 86400)
        wall = rng.randrange(1, 86400)
        cores = (1, 4, 16)[i % 3]
        fact.insert({
            "job_id": i + 1, "resource_id": 1 + i % 3,
            "person_id": 1 + i % 12, "pi_id": 1 + i % 4,
            "app_id": 1 + i % 6, "queue_id": 1,
            "submit_ts": start - 600, "start_ts": start,
            "end_ts": start + wall, "walltime_s": wall,
            "wait_s": 600, "req_walltime_s": wall + 60,
            "nodes": max(1, cores // 16), "cores": cores,
            "cpu_hours": cores * wall / SECONDS_PER_HOUR,
            "node_hours": max(1, cores // 16) * wall / SECONDS_PER_HOUR,
            "xdsu": 1.2 * cores * wall / SECONDS_PER_HOUR,
            "state": "completed", "exit_code": 0,
        })
    return sat


def _run_sync_cycles(sat: XdmodInstance, *, plane: bool) -> Observability:
    """Replicate the satellite's backlog in BATCH-sized sync cycles.

    ``plane=True`` is the configuration this PR ships (history recording
    inside ``hub.sync`` plus an alert evaluation per cycle);
    ``plane=False`` reproduces the PR-4 instrumented baseline.
    """
    hub = FederationHub("hub")
    hub.obs.history.enabled = plane
    hub.join(sat, mode="tight", initial_sync=False)
    engine = AlertEngine(hub.obs.history) if plane else None
    members = [m.name for m in hub.members]
    while sum(hub.lag().values()):
        hub.sync(batch=BATCH)
        if engine is not None:
            engine.evaluate(members)
    return hub.obs


@pytest.mark.parametrize("n_events", [4000, 20000])
def test_a12_obs_plane_overhead(n_events):
    sat = _satellite(n_events)
    _run_sync_cycles(sat, plane=True)  # warm-up

    t_base = _min_time(lambda: _run_sync_cycles(sat, plane=False))
    t_plane = _min_time(lambda: _run_sync_cycles(sat, plane=True))

    overhead = (t_plane / t_base - 1.0) * 100 if t_base > 0 else 0.0
    cycles = -(-n_events // BATCH)
    emit(f"a12_obs_plane_{n_events}", "\n".join([
        f"A12 observability-plane overhead, {n_events} events in "
        f"{cycles} sync cycles of {BATCH}:",
        f"  PR-4 baseline (no history/alerts): {t_base * 1e3:.2f} ms",
        f"  history + alert eval per cycle:    {t_plane * 1e3:.2f} ms",
        f"  overhead: {overhead:+.1f}% (budget {(BUDGET_REL - 1) * 100:.0f}%"
        f" + {BUDGET_ABS * 1e3:.0f} ms slack)",
    ]))
    emit_metrics(f"a12_obs_plane_{n_events}", {
        "baseline_time": (t_base, "s"),
        "plane_time": (t_plane, "s"),
    })

    obs = _run_sync_cycles(sat, plane=True)
    assert obs.history.last(
        "federation_member_syncs_total", member="satellite"
    ) is not None
    assert t_plane <= t_base * BUDGET_REL + BUDGET_ABS, (
        f"observability plane {t_plane * 1e3:.2f} ms exceeds budget over "
        f"baseline {t_base * 1e3:.2f} ms"
    )


def test_a12_alert_report_artifact():
    """Render the alert table a fault-injected federation produces."""
    _, _, monitor = _demo_federation(inject_faults=True)
    report = monitor.alerts.render()
    firing = {s.rule.id for s in monitor.alerts.firing()}
    assert "sync_failure_burn_rate" in firing
    emit("a12_alert_report", report)
    emit_metrics("a12_alert_report", {
        "alerts_firing": (float(len(firing)), "alerts"),
    })
