"""Shared benchmark scenarios.

Session-scoped fixtures build the paper's evaluation data once:

- ``fig1_federation`` — the Figure 1/2/3/Table I substrate: three
  satellites (comet / stampede2 / stampede shapes), a full simulated 2017,
  tight-federated into one hub and aggregated monthly under the hub's
  levels.
- ``heterogeneous_hub`` — the Section III substrate: a CCR-style instance
  with a year of Cloud and Storage realm data, federated with the
  all-realms filter (Figures 6 and 7).

Each bench prints the series/rows the corresponding paper artifact shows
and mirrors them to ``benchmarks/out/<name>.txt`` so the regenerated
"figures" survive the run.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

import pytest

from repro.aggregation import AggregationConfig, TABLE1_FEDERATION_HUB
from repro.core import (
    FederationHub,
    ReplicationFilter,
    XdmodInstance,
    standardize_federation,
)
from repro.simulators import (
    CloudConfig,
    CloudSimulator,
    StorageConfig,
    StorageSimulator,
    WorkloadGenerator,
    figure1_sites,
    simulate_resource,
    to_sacct_log,
)
from repro.timeutil import ts

YEAR_START = ts(2017, 1, 1)
YEAR_END = ts(2018, 1, 1)

OUT_DIR = Path(__file__).parent / "out"


def emit(name: str, text: str) -> None:
    """Print a regenerated figure/table and persist it under out/."""
    print()
    print(text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")


def _commit_hash() -> str:
    """Short hash of HEAD, or "unknown" outside a usable git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def emit_metrics(bench_id: str, metrics: dict[str, tuple[float, str]]) -> Path:
    """Persist a bench's headline numbers as ``out/BENCH_<id>.json``.

    ``metrics`` maps metric name to ``(value, unit)``.  The JSON carries
    the commit hash so CI artifacts from different runs are comparable;
    it is the machine-readable companion of the human ``emit`` text.
    """
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"BENCH_{bench_id}.json"
    path.write_text(json.dumps({
        "bench": bench_id,
        "commit": _commit_hash(),
        "metrics": [
            {"name": name, "value": value, "unit": unit}
            for name, (value, unit) in sorted(metrics.items())
        ],
    }, indent=2) + "\n")
    return path


@pytest.fixture(scope="session")
def fig1_federation():
    sites = figure1_sites(scale=0.15)
    conversion, hpl = standardize_federation(
        {name: preset.resource for name, preset in sites.items()}
    )
    hub = FederationHub(
        "hub",
        aggregation=AggregationConfig(walltime_levels=TABLE1_FEDERATION_HUB),
        conversion=conversion,
    )
    satellites = {}
    records_by_site = {}
    for name, preset in sorted(sites.items()):
        instance = XdmodInstance(f"site_{name}", conversion=conversion)
        records = simulate_resource(
            preset.resource,
            WorkloadGenerator(preset.workload).generate(YEAR_START, YEAR_END),
        )
        instance.pipeline.ingest_sacct(
            to_sacct_log(records), default_resource=name
        )
        hub.join(instance, mode="tight")
        satellites[name] = instance
        records_by_site[name] = records
    hub.aggregate_federation(["month"])
    return {
        "hub": hub,
        "satellites": satellites,
        "sites": sites,
        "conversion": conversion,
        "hpl": hpl,
        "records": records_by_site,
        "range": (YEAR_START, YEAR_END),
    }


@pytest.fixture(scope="session")
def heterogeneous_hub():
    hub = FederationHub("aristotle_hub")
    instance = XdmodInstance("xdmod_ccr")
    cloud_events = CloudSimulator(
        CloudConfig(resource="ccr_research_cloud", seed=77, vms_per_day=8.0)
    ).generate(YEAR_START, YEAR_END)
    instance.pipeline.ingest_cloud(cloud_events)
    storage_docs = list(
        StorageSimulator(
            StorageConfig(resource="ccr_storage", seed=77, n_users=30)
        ).generate(YEAR_START, YEAR_END)
    )
    instance.pipeline.ingest_storage(storage_docs)
    hub.join(instance, filter=ReplicationFilter(tables=None))
    hub.aggregate_federation(["month"])
    return {
        "hub": hub,
        "instance": instance,
        "n_cloud_events": len(cloud_events),
        "n_storage_docs": len(storage_docs),
        "range": (YEAR_START, YEAR_END),
    }
