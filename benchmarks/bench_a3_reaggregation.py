"""Ablation A3: re-aggregation cost when hub levels change.

The Table I scenario: a new satellite joins, the administrator redefines
the hub's wall-time levels, and "re-aggregate[s] all raw federation data."
This bench measures that full rebuild as a function of raw row count, and
confirms totals are invariant across the level change.
"""

from __future__ import annotations

import time

import pytest

from repro.aggregation import (
    AggregationConfig,
    Aggregator,
    DEFAULT_WALLTIME_LEVELS,
    TABLE1_FEDERATION_HUB,
)
from repro.etl import ParsedJob, ingest_jobs
from repro.timeutil import ts
from repro.warehouse import Database

from conftest import emit, emit_metrics


def _schema_with_jobs(n: int):
    schema = Database().create_schema("modw")
    jobs = [
        ParsedJob(
            job_id=i, user=f"u{i % 41}", pi=f"pi{i % 9}", queue="normal",
            application=f"app{i % 13}",
            submit_ts=ts(2017, 1, 1) + i * 120,
            start_ts=ts(2017, 1, 1) + i * 120 + 600,
            end_ts=ts(2017, 1, 1) + i * 120 + 600 + (i % 50 + 1) * 1800,
            nodes=1, cores=2 ** (i % 6), req_walltime_s=90000,
            state="COMPLETED", exit_code=0, resource="r1",
        )
        for i in range(n)
    ]
    ingest_jobs(schema, jobs)
    return schema


@pytest.mark.parametrize("n_jobs", [1000, 5000, 20000])
def test_a3_reaggregation_scaling(benchmark, n_jobs):
    schema = _schema_with_jobs(n_jobs)
    aggregator = Aggregator(
        schema, AggregationConfig(walltime_levels=DEFAULT_WALLTIME_LEVELS)
    )
    aggregator.aggregate_jobs("month")
    total_before = sum(
        r["cpu_hours"] for r in schema.table("agg_job_month").rows()
    )

    def reaggregate():
        return aggregator.reaggregate(
            AggregationConfig(walltime_levels=TABLE1_FEDERATION_HUB), ["month"]
        )

    built = benchmark(reaggregate)

    total_after = sum(
        r["cpu_hours"] for r in schema.table("agg_job_month").rows()
    )
    # the benchmark fixture times the default (columnar) rebuild; time the
    # pure-Python oracle once for the before/after comparison
    t0 = time.perf_counter()
    aggregator.aggregate_jobs_oracle("month")
    oracle_s = time.perf_counter() - t0
    columnar_s = benchmark.stats.stats.mean
    emit(f"a3_reaggregation_{n_jobs}", "\n".join([
        f"A3 re-aggregation over {n_jobs} raw jobs:",
        f"  agg rows rebuilt: {built['agg_job_month']}",
        f"  CPU-hour total invariant: {abs(total_after - total_before) < 1e-6}",
        f"  columnar rebuild: {columnar_s * 1e3:.1f} ms",
        f"  pure-Python oracle: {oracle_s * 1e3:.1f} ms"
        f"  ({oracle_s / columnar_s:.1f}x slower)",
    ]))
    emit_metrics(f"a3_reaggregation_{n_jobs}", {
        "columnar_rebuild_time": (columnar_s, "s"),
        "oracle_rebuild_time": (oracle_s, "s"),
        "agg_rows_rebuilt": (float(built["agg_job_month"]), "rows"),
    })
    assert total_after == pytest.approx(total_before)
