"""Ablation A8: cluster-simulator validation — wait time vs utilization.

The synthetic substrate must behave like a real batch system for the
reproduced figures to mean anything: as offered load approaches capacity,
queue waits should grow nonlinearly (the classic M/G/c hockey stick).
This bench sweeps target utilization and reports mean/p95 wait —
validating the EASY-backfill simulator that feeds every jobs-realm figure.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulators import (
    ResourceSpec,
    WorkloadConfig,
    WorkloadGenerator,
    calibrate_jobs_per_day,
    simulate_resource,
)
from repro.timeutil import SECONDS_PER_HOUR, ts

from conftest import emit, emit_metrics

RESOURCE = ResourceSpec("sweep", 16, 16, 64, 16.0)
START, END = ts(2017, 1, 1), ts(2017, 3, 1)

_RESULTS: dict[float, tuple[float, float, int]] = {}


@pytest.mark.parametrize("utilization", [0.3, 0.6, 0.9])
def test_a8_wait_vs_utilization(benchmark, utilization):
    config = calibrate_jobs_per_day(
        WorkloadConfig(seed=90, max_cores=RESOURCE.total_cores),
        RESOURCE,
        target_utilization=utilization,
    )
    requests = list(WorkloadGenerator(config).generate(START, END))

    records = benchmark(simulate_resource, RESOURCE, requests)

    waits = np.array([
        r.wait_s for r in records if r.state != "CANCELLED"
    ]) / SECONDS_PER_HOUR
    mean_wait = float(waits.mean()) if len(waits) else 0.0
    p95_wait = float(np.percentile(waits, 95)) if len(waits) else 0.0
    _RESULTS[utilization] = (mean_wait, p95_wait, len(records))

    if len(_RESULTS) == 3:
        lines = ["A8 scheduler validation: wait time vs offered load",
                 "=" * 52,
                 f"{'target util':>12}{'jobs':>8}{'mean wait h':>14}{'p95 wait h':>13}"]
        for util in sorted(_RESULTS):
            mean_w, p95_w, n = _RESULTS[util]
            lines.append(f"{util:>12.0%}{n:>8}{mean_w:>14.2f}{p95_w:>13.2f}")
        lines.append("")
        lines.append("expected shape: waits grow nonlinearly toward saturation")
        emit("a8_scheduler", "\n".join(lines))
        emit_metrics("a8_scheduler", {
            f"mean_wait_util_{int(util * 100)}": (_RESULTS[util][0], "h")
            for util in sorted(_RESULTS)
        })
        # the hockey stick: high-load waits dominate low-load waits
        assert _RESULTS[0.9][0] > _RESULTS[0.3][0]
