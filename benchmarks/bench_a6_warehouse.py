"""Ablation A6: warehouse query-engine scaling.

Not a paper artifact — a substrate sanity bench.  Group-by aggregation
latency over the embedded warehouse as row count grows, plus the
vectorized grouped-sum fast path used by nightly aggregation.
"""

from __future__ import annotations

import pytest

from repro.warehouse import (
    Agg,
    ColumnType,
    Database,
    P,
    Query,
    TableSchema,
    make_columns,
    vector_group_sum,
)

from conftest import emit, emit_metrics

C = ColumnType


def _table(n: int):
    schema = Database().create_schema("modw")
    table = schema.create_table(
        TableSchema(
            "facts",
            make_columns([
                ("id", C.INT, False),
                ("resource", C.STR, False),
                ("value", C.FLOAT, False),
            ]),
            primary_key=("id",),
            indexes=("resource",),
        )
    )
    for i in range(n):
        table.insert(
            {"id": i, "resource": f"r{i % 8}", "value": float(i % 1000)}
        )
    return table


@pytest.mark.parametrize("n_rows", [1000, 10000, 50000])
def test_a6_group_by_latency(benchmark, n_rows):
    table = _table(n_rows)

    def group_query():
        return (
            Query(table)
            .where(P.gt("value", 100.0))
            .group_by("resource")
            .aggregate(total=Agg.sum("value"), n=Agg.count())
            .order_by("total", descending=True)
            .run()
        )

    rows = benchmark(group_query)
    assert len(rows) == 8
    emit(f"a6_groupby_{n_rows}", "\n".join([
        f"A6 group-by over {n_rows} rows -> {len(rows)} groups; "
        f"top group total {rows[0]['total']:,.0f}",
    ]))
    emit_metrics(f"a6_groupby_{n_rows}", {
        "group_by_time": (benchmark.stats.stats.mean, "s"),
    })


@pytest.mark.parametrize("n_rows", [10000, 100000])
def test_a6_vectorized_group_sum(benchmark, n_rows):
    keys = [f"r{i % 8}" for i in range(n_rows)]
    values = [float(i % 1000) for i in range(n_rows)]

    sums = benchmark(vector_group_sum, keys, values)
    assert len(sums) == 8
    emit_metrics(f"a6_vector_group_sum_{n_rows}", {
        "vector_group_sum_time": (benchmark.stats.stats.mean, "s"),
    })


def test_a6_index_point_lookup(benchmark):
    table = _table(50000)

    hits = benchmark(table.lookup_index, "resource", "r3")
    assert len(hits) == 50000 // 8
    emit_metrics("a6_index_point_lookup", {
        "index_lookup_time": (benchmark.stats.stats.mean, "s"),
    })
