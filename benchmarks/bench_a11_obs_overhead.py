"""Ablation A11: telemetry overhead on the instrumented hot paths.

The observability layer (metrics registry + tracer, ``repro.obs``) is
wired into the two hottest paths — nightly aggregation and tight
replication.  Instrumentation is deliberately batch-level (stat deltas
published per pump / per build, cached labelled children), so the
budget is tight: the instrumented run must stay within 5% of the bare
run (plus a small absolute slack for sub-millisecond timings).

Also renders the populated registry through ``GET /metrics`` and saves
it under ``out/`` — CI uploads that snapshot as a workflow artifact.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.aggregation import Aggregator
from repro.core import ReplicationChannel
from repro.obs import Observability, parse_prometheus_text
from repro.timeutil import SECONDS_PER_HOUR, ts
from repro.ui import XdmodApi
from repro.warehouse import Database

from bench_a10_columnar_agg import _jobs_schema
from conftest import emit, emit_metrics

T0 = ts(2017, 1, 1)

BUDGET_REL = 1.05  # instrumented within 5% of bare ...
BUDGET_ABS = 0.05  # ... plus 50 ms slack so tiny timings cannot flake
REPEATS = 5


def _min_time(fn, repeats: int = REPEATS) -> float:
    """Best-of-N wall time; min is the standard noise-robust estimator."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _overhead_lines(title: str, t_bare: float, t_instr: float) -> list[str]:
    overhead = (t_instr / t_bare - 1.0) * 100 if t_bare > 0 else 0.0
    return [
        title,
        f"  bare (no obs attached):      {t_bare * 1e3:.2f} ms",
        f"  instrumented (default obs):  {t_instr * 1e3:.2f} ms",
        f"  overhead: {overhead:+.1f}% (budget {(BUDGET_REL - 1) * 100:.0f}%"
        f" + {BUDGET_ABS * 1e3:.0f} ms slack)",
    ]


def _replication_source(n: int):
    """A satellite schema with ``n`` binlogged fact rows to stream."""
    from repro.etl.star import create_jobs_star

    source = Database("satellite").create_schema("modw")
    create_jobs_star(source)
    fact = source.table("fact_job")
    rng = random.Random(13)
    for i in range(n):
        start = T0 + rng.randrange(0, 300 * 86400)
        wall = rng.randrange(1, 86400)
        cores = (1, 4, 16)[i % 3]
        fact.insert({
            "job_id": i + 1, "resource_id": 1 + i % 3,
            "person_id": 1 + i % 12, "pi_id": 1 + i % 4,
            "app_id": 1 + i % 6, "queue_id": 1,
            "submit_ts": start - 600, "start_ts": start,
            "end_ts": start + wall, "walltime_s": wall,
            "wait_s": 600, "req_walltime_s": wall + 60,
            "nodes": max(1, cores // 16), "cores": cores,
            "cpu_hours": cores * wall / SECONDS_PER_HOUR,
            "node_hours": max(1, cores // 16) * wall / SECONDS_PER_HOUR,
            "xdsu": 1.2 * cores * wall / SECONDS_PER_HOUR,
            "state": "completed", "exit_code": 0,
        })
    return source


@pytest.mark.parametrize("n_jobs", [4000, 40000])
def test_a11_aggregation_overhead(n_jobs):
    schema = _jobs_schema(n_jobs)
    obs = Observability.default()
    bare = Aggregator(schema)
    instrumented = Aggregator(schema, obs=obs)
    # warm both paths so column caches and dimension lookups are shared
    bare.aggregate_jobs("month")
    instrumented.aggregate_jobs("month")

    t_bare = _min_time(lambda: bare.aggregate_jobs("month"))
    t_instr = _min_time(lambda: instrumented.aggregate_jobs("month"))

    emit(f"a11_obs_overhead_agg_{n_jobs}", "\n".join(_overhead_lines(
        f"A11 telemetry overhead, jobs aggregation over {n_jobs} fact rows:",
        t_bare, t_instr,
    )))
    emit_metrics(f"a11_obs_overhead_agg_{n_jobs}", {
        "bare_time": (t_bare, "s"),
        "instrumented_time": (t_instr, "s"),
    })
    assert obs.registry.value(
        "aggregation_rows_total", realm="jobs", mode="full"
    ) > 0
    assert t_instr <= t_bare * BUDGET_REL + BUDGET_ABS, (
        f"instrumented aggregation {t_instr * 1e3:.2f} ms exceeds budget "
        f"over bare {t_bare * 1e3:.2f} ms"
    )


@pytest.mark.parametrize("n_events", [4000, 40000])
def test_a11_replication_overhead(n_events):
    source = _replication_source(n_events)

    def run(obs):
        hub = Database(
            "hub", metrics=obs.registry if obs is not None else None
        )
        target = hub.create_schema("fed_satellite")
        channel = ReplicationChannel(
            source, target, obs=obs, name="satellite"
        )
        channel.catch_up()

    obs = Observability.default()
    run(None)  # warm-up
    t_bare = _min_time(lambda: run(None))
    t_instr = _min_time(lambda: run(obs))

    emit(f"a11_obs_overhead_repl_{n_events}", "\n".join(_overhead_lines(
        f"A11 telemetry overhead, tight replication of {n_events}+ events:",
        t_bare, t_instr,
    )))
    emit_metrics(f"a11_obs_overhead_repl_{n_events}", {
        "bare_time": (t_bare, "s"),
        "instrumented_time": (t_instr, "s"),
    })
    assert obs.registry.value(
        "replication_events_applied_total", channel="satellite"
    ) > 0
    assert t_instr <= t_bare * BUDGET_REL + BUDGET_ABS, (
        f"instrumented replication {t_instr * 1e3:.2f} ms exceeds budget "
        f"over bare {t_bare * 1e3:.2f} ms"
    )


def test_a11_metrics_snapshot_artifact():
    """Render a populated registry exactly as ``GET /metrics`` serves it."""
    obs = Observability.default()
    schema = _jobs_schema(2000)
    Aggregator(schema, obs=obs).aggregate_jobs("month")
    source = _replication_source(500)
    target = Database("hub", metrics=obs.registry).create_schema(
        "fed_satellite"
    )
    ReplicationChannel(source, target, obs=obs, name="satellite").catch_up()

    api = XdmodApi({}, {}, obs=obs)
    status, content_type, body = api.handle_raw("/metrics", {})
    assert status == 200
    text = body.decode("utf-8")
    parsed = parse_prometheus_text(text)
    assert parsed.value(
        "replication_events_applied_total", channel="satellite"
    ) > 0
    emit("a11_metrics_snapshot", text.rstrip("\n"))
    emit_metrics("a11_metrics_snapshot", {
        "snapshot_size": (float(len(body)), "bytes"),
    })
