"""Figure 7: cloud realm — average core hours per VM, by VM memory size.

Paper artifact: monthly average core hours used per VM on CCR's research
cloud, 2017, grouped into memory bins <1 GB, 1-2 GB, 2-4 GB, and 4-8 GB
(bigger-memory VMs accumulate more core hours).  The bench regenerates the
four monthly series from the federated hub and measures the cloud-realm
query path.
"""

from __future__ import annotations

from repro.aggregation import FIG7_VM_MEMORY_LEVELS
from repro.realms import cloud_realm
from repro.ui import ChartBuilder, render_table

from conftest import emit, emit_metrics


def test_fig7_avg_core_hours_by_vm_memory(benchmark, heterogeneous_hub):
    hub = heterogeneous_hub["hub"]
    start, end = heterogeneous_hub["range"]
    builder = ChartBuilder(cloud_realm(), hub.federated_schemas())

    def run_query():
        return builder.timeseries(
            "avg_core_hours_per_vm", start=start, end=end,
            group_by="memory_level",
            title=("Figure 7: average core hours per VM by VM memory size, "
                   "CCR research cloud, 2017"),
        )

    chart = benchmark(run_query)

    lines = [render_table(chart, value_format="{:,.1f}")]
    annual = cloud_realm().query(
        hub.federated_schemas(), "avg_core_hours_per_vm",
        start=start, end=end, group_by="memory_level", view="aggregate",
    ).totals()
    lines.append("")
    lines.append("annual average core hours per VM by memory bin:")
    ordered = [l for l in FIG7_VM_MEMORY_LEVELS.labels if l in annual]
    for label in ordered:
        lines.append(f"  {label:<8} {annual[label]:>10,.1f}")
    lines.append("")
    lines.append("paper shape: larger-memory VMs average more core hours")
    emit("fig7_cloud_realm", "\n".join(lines))
    emit_metrics("fig7_cloud_realm", {
        "cloud_query_time": (benchmark.stats.stats.mean, "s"),
    })

    # all four bins present, series are monthly
    assert set(chart.labels) == set(FIG7_VM_MEMORY_LEVELS.labels)
    # shape: the biggest bin out-consumes the smallest
    assert annual["4-8 GB"] > annual["<1 GB"]
