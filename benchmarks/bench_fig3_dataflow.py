"""Figure 3: the end-to-end data flow — ingest, replicate, aggregate.

Paper artifact: the data-flow diagram (heterogeneous resources -> satellite
ingestion -> replication -> hub aggregation).  The bench measures each
stage of that pipe for one month of fresh data on a two-resource satellite,
and verifies the diagram's invariant: the hub's copy of the raw data is
byte-identical to the satellite's after the flow completes.
"""

from __future__ import annotations

from repro.core import FederationHub, XdmodInstance, check_member
from repro.simulators import (
    ResourceSpec,
    WorkloadConfig,
    WorkloadGenerator,
    simulate_resource,
    to_sacct_log,
)
from repro.timeutil import ts

from conftest import emit, emit_metrics

START, END = ts(2017, 1, 1), ts(2017, 2, 1)

RES_A = ResourceSpec("resource_a", 12, 16, 64, 18.0)
RES_B = ResourceSpec("resource_b", 24, 8, 128, 9.0)


def _logs():
    out = {}
    for i, res in enumerate((RES_A, RES_B)):
        config = WorkloadConfig(seed=50 + i, jobs_per_day=12,
                                max_cores=res.total_cores)
        records = simulate_resource(
            res, WorkloadGenerator(config).generate(START, END)
        )
        out[res.name] = to_sacct_log(records)
    return out


def test_fig3_ingest_replicate_aggregate(benchmark):
    logs = _logs()
    counter = {"n": 0}

    def dataflow():
        counter["n"] += 1
        satellite = XdmodInstance(f"instance_x_{counter['n']}")
        for resource, text in logs.items():
            satellite.pipeline.ingest_sacct(text, default_resource=resource)
        hub = FederationHub(f"hub_{counter['n']}")
        hub.join(satellite, mode="tight")  # replication
        hub.aggregate_federation(["month"])  # hub-side aggregation
        return satellite, hub

    satellite, hub = benchmark(dataflow)

    member_check = check_member(hub, satellite.name)
    fed_schema = hub.database.schema(f"fed_{satellite.name}")
    lines = ["Figure 3: data flow stages (one month, resources A+B)",
             "=" * 60]
    lines.append(f"  ingest:     {len(satellite.schema.table('fact_job'))} "
                 f"jobs into {satellite.name}/modw")
    lines.append(f"  replicate:  {len(fed_schema.table('fact_job'))} "
                 f"jobs into hub/{fed_schema.name}")
    agg_rows = len(fed_schema.table("agg_job_month"))
    lines.append(f"  aggregate:  {agg_rows} agg_job_month rows on the hub")
    lines.append("  fidelity:")
    for check in member_check.tables:
        status = "identical" if check.ok else "MISMATCH"
        lines.append(
            f"    {check.table:<18} satellite {check.satellite_rows:>6} rows"
            f" / hub {check.hub_rows:>6} rows -> {status}"
        )
    emit("fig3_dataflow", "\n".join(lines))
    emit_metrics("fig3_dataflow", {
        "dataflow_time": (benchmark.stats.stats.mean, "s"),
        "agg_rows": (float(agg_rows), "rows"),
    })

    assert member_check.ok
    assert agg_rows > 0
