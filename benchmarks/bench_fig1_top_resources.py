"""Figure 1: top three resources by total XD SUs charged, 2017, monthly.

Paper artifact: an XDMoD timeseries chart of standardized XD SUs for
Comet (largest), Stampede2 (ramping up through 2017), and Stampede
(decommissioned during 2017).  The bench regenerates the same three
monthly series from the federation hub and measures the federated
query+chart path.
"""

from __future__ import annotations

from repro.realms import jobs_realm
from repro.ui import ChartBuilder, render_table

from conftest import emit, emit_metrics


def test_fig1_top_resources_by_xdsu(benchmark, fig1_federation):
    hub = fig1_federation["hub"]
    start, end = fig1_federation["range"]
    builder = ChartBuilder(jobs_realm(), hub.federated_schemas())

    def run_query():
        return builder.timeseries(
            "xdsu", start=start, end=end, group_by="resource", top_n=3,
            title="Figure 1: top 3 resources by total XD SUs charged, 2017",
        )

    chart = benchmark(run_query)

    lines = [render_table(chart)]
    ranking = [(s.label, s.total()) for s in chart.series]
    lines.append("")
    lines.append("annual totals (XD SUs):")
    for name, total in ranking:
        lines.append(f"  {name:<11} {total:>14,.0f}")
    lines.append("")
    lines.append(f"paper shape: Comet > Stampede2 > Stampede; "
                 f"measured: {' > '.join(n for n, _ in ranking)}")
    emit("fig1_top_resources", "\n".join(lines))
    emit_metrics("fig1_top_resources", {
        "timeseries_query_time": (benchmark.stats.stats.mean, "s"),
        "top_resource_xdsu": (ranking[0][1], "xdsu"),
    })

    # shape assertions (the reproduction contract)
    assert [n for n, _ in ranking] == ["comet", "stampede2", "stampede"]
    series = {s.label: [v or 0 for _, v in s.points] for s in chart.series}
    assert series["stampede"][-1] < series["stampede"][0]  # decommissioning
    assert series["stampede2"][-1] > series["stampede2"][0]  # ramp-up
