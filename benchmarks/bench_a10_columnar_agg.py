"""Ablation A10: columnar aggregation fast path vs the pure-Python oracle.

The nightly aggregation step is the repo's hottest path.  This bench
measures all three realms at scale:

- jobs: the columnar ``aggregate_jobs`` (NumPy group-index reductions
  over cached column arrays) against ``aggregate_jobs_oracle`` on the
  same facts.  The acceptance bar is a >= 3x speedup at 100k fact rows.
- storage / cloud: columnar vs oracle, plus the incremental fold
  (two batches) asserted identical to a full rebuild.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.aggregation import Aggregator
from repro.timeutil import SECONDS_PER_HOUR, ts
from repro.warehouse import Database

from conftest import emit, emit_metrics

T0 = ts(2017, 1, 1)


def _jobs_schema(n: int):
    """Direct fact inserts (no ETL) so setup stays a small share of the run."""
    from repro.etl.star import create_jobs_star

    schema = Database().create_schema("modw")
    create_jobs_star(schema)
    fact = schema.table("fact_job")
    rng = random.Random(10)
    for i in range(n):
        start = T0 + rng.randrange(0, 300 * 86400)
        wall = 0 if i % 97 == 0 else rng.randrange(1, 3 * 86400)
        cores = (1, 4, 16, 64)[i % 4]
        # realistic aggregation regime: many facts per group (users run
        # many jobs a month), so agg rows << fact rows
        person = 1 + i % 12
        fact.insert({
            "job_id": i + 1, "resource_id": 1 + i % 3,
            "person_id": person, "pi_id": 1 + person % 4,
            "app_id": 1 + person % 6, "queue_id": 1,
            "submit_ts": start - 600, "start_ts": start,
            "end_ts": start + wall, "walltime_s": wall,
            "wait_s": rng.randrange(0, 7200), "req_walltime_s": wall + 60,
            "nodes": max(1, cores // 16), "cores": cores,
            "cpu_hours": cores * wall / SECONDS_PER_HOUR,
            "node_hours": max(1, cores // 16) * wall / SECONDS_PER_HOUR,
            "xdsu": 1.2 * cores * wall / SECONDS_PER_HOUR,
            "state": "completed", "exit_code": 0,
        }, _log=False)
    return schema


def _storage_schema(n: int):
    from repro.etl.storagefs import create_storage_realm

    schema = Database().create_schema("modw")
    create_storage_realm(schema)
    fact = schema.table("fact_storage")
    rng = random.Random(11)
    for i in range(n):
        fs = ("home", "scratch", "projects")[i % 3]
        soft = (None, 0.0, 100.0, 250.0)[i % 4]
        fact.insert({
            "snapshot_id": i + 1, "resource_id": 1 + i % 2,
            "filesystem": fs, "mountpoint": f"/{fs}",
            "resource_type": "gpfs" if fs == "home" else "lustre",
            "person_id": 1 + i % 30, "pi": "p", "system_username": "u",
            "ts": T0 + (i % 180) * 86400,
            "file_count": rng.randrange(10, 100_000),
            "logical_usage_gb": rng.random() * 500,
            "physical_usage_gb": rng.random() * 450,
            "soft_quota_gb": soft,
            "hard_quota_gb": None if soft is None else soft * 1.5,
        }, _log=False)
    return schema


def _cloud_schema(n_vms: int):
    from repro.etl.cloudevents import create_cloud_realm

    schema = Database().create_schema("modw")
    create_cloud_realm(schema)
    vm_fact = schema.table("fact_vm")
    iv_fact = schema.table("fact_vm_interval")
    rng = random.Random(12)
    iv_id = 0
    for i in range(n_vms):
        vm_id = i + 1
        project = ("astro", "bio", "chem")[i % 3]
        mem = (0.5, 1.5, 3.0, 6.0)[i % 4]
        vcpus = 1 + i % 8
        prov = T0 + rng.randrange(0, 200 * 86400)
        cursor = prov
        n_ivs = 1 + i % 4
        for k in range(n_ivs):
            dur = 0 if (i + k) % 53 == 0 else rng.randrange(1, 10 * 86400)
            iv_id += 1
            iv_fact.insert({
                "interval_id": iv_id, "vm_id": vm_id, "resource_id": 1,
                "person_id": 1 + i % 20, "project": project,
                "os": ("centos7", "ubuntu16")[i % 2],
                "submission_venue": ("api", "gui")[k % 2],
                "instance_type": "m1.small",
                "state": ("running", "running", "stopped", "paused")[k % 4],
                "start_ts": cursor, "end_ts": cursor + dur,
                "vcpus": vcpus, "mem_gb": mem, "disk_gb": 20.0,
            }, _log=False)
            cursor += dur
        vm_fact.insert({
            "vm_id": vm_id, "resource_id": 1, "person_id": 1 + i % 20,
            "project": project, "os": ("centos7", "ubuntu16")[i % 2],
            "submission_venue": "api", "provision_ts": prov,
            "terminate_ts": cursor if i % 5 else None,
            "first_instance_type": "m1.small",
            "last_instance_type": "m1.small", "last_vcpus": vcpus,
            "last_mem_gb": mem, "last_disk_gb": 20.0,
            "wall_s": 0, "core_hours": 0.0, "reserved_core_hours": 0.0,
            "reserved_mem_gb_hours": 0.0, "reserved_disk_gb_hours": 0.0,
            "n_state_changes": n_ivs, "n_resizes": 0,
            "running_s": 0, "stopped_s": 0, "paused_s": 0,
        }, _log=False)
    return schema


def _table_snapshot(schema, name):
    return sorted(
        tuple(sorted(r.items())) for r in schema.table(name).rows()
    )


def _assert_rows_match(got, want, label):
    assert len(got) == len(want), label
    for rg, rw in zip(got, want):
        for (kg, vg), (kw, vw) in zip(rg, rw):
            assert kg == kw
            if isinstance(vg, float) or isinstance(vw, float):
                assert vg == pytest.approx(vw, rel=1e-9, abs=1e-9), (
                    f"{label}: {kg}"
                )
            else:
                assert vg == vw, f"{label}: {kg}"


@pytest.mark.parametrize("n_jobs", [5000, 100000])
def test_a10_columnar_vs_oracle_jobs(benchmark, n_jobs):
    schema = _jobs_schema(n_jobs)
    aggregator = Aggregator(schema)

    columnar_rows = benchmark(aggregator.aggregate_jobs, "month")
    columnar_snapshot = _table_snapshot(schema, "agg_job_month")
    columnar_s = benchmark.stats.stats.mean

    t0 = time.perf_counter()
    oracle_rows = aggregator.aggregate_jobs_oracle("month")
    oracle_s = time.perf_counter() - t0
    _assert_rows_match(
        columnar_snapshot, _table_snapshot(schema, "agg_job_month"),
        "columnar vs oracle",
    )

    speedup = oracle_s / columnar_s
    emit(f"a10_columnar_jobs_{n_jobs}", "\n".join([
        f"A10 jobs aggregation over {n_jobs} fact rows ({columnar_rows} agg rows):",
        f"  pure-Python oracle (before): {oracle_s * 1e3:.1f} ms",
        f"  columnar fast path (after):  {columnar_s * 1e3:.1f} ms",
        f"  speedup: {speedup:.1f}x",
    ]))
    emit_metrics(f"a10_columnar_jobs_{n_jobs}", {
        "columnar_time": (columnar_s, "s"),
        "oracle_time": (oracle_s, "s"),
        "speedup": (speedup, "x"),
    })
    assert columnar_rows == oracle_rows
    if n_jobs >= 100000:
        # acceptance bar: >= 3x over the oracle at 100k fact rows
        assert speedup >= 3.0, f"columnar speedup {speedup:.2f}x < 3x"


@pytest.mark.parametrize("n_snaps", [2000, 50000])
def test_a10_columnar_vs_oracle_storage(benchmark, n_snaps):
    schema = _storage_schema(n_snaps)
    aggregator = Aggregator(schema)

    benchmark(aggregator.aggregate_storage, "month")
    columnar_snapshot = _table_snapshot(schema, "agg_storage_month")
    columnar_s = benchmark.stats.stats.mean

    t0 = time.perf_counter()
    aggregator.aggregate_storage_oracle("month")
    oracle_s = time.perf_counter() - t0
    _assert_rows_match(
        columnar_snapshot, _table_snapshot(schema, "agg_storage_month"),
        "columnar vs oracle",
    )
    emit(f"a10_columnar_storage_{n_snaps}", "\n".join([
        f"A10 storage aggregation over {n_snaps} snapshots:",
        f"  pure-Python oracle (before): {oracle_s * 1e3:.1f} ms",
        f"  columnar fast path (after):  {columnar_s * 1e3:.1f} ms",
        f"  speedup: {oracle_s / columnar_s:.1f}x",
    ]))
    emit_metrics(f"a10_columnar_storage_{n_snaps}", {
        "columnar_time": (columnar_s, "s"),
        "oracle_time": (oracle_s, "s"),
        "speedup": (oracle_s / columnar_s, "x"),
    })


@pytest.mark.parametrize("n_vms", [500, 10000])
def test_a10_columnar_vs_oracle_cloud(benchmark, n_vms):
    schema = _cloud_schema(n_vms)
    aggregator = Aggregator(schema)

    benchmark(aggregator.aggregate_cloud, "month")
    columnar_snapshot = _table_snapshot(schema, "agg_cloud_month")
    columnar_s = benchmark.stats.stats.mean

    t0 = time.perf_counter()
    aggregator.aggregate_cloud_oracle("month")
    oracle_s = time.perf_counter() - t0
    _assert_rows_match(
        columnar_snapshot, _table_snapshot(schema, "agg_cloud_month"),
        "columnar vs oracle",
    )
    emit(f"a10_columnar_cloud_{n_vms}", "\n".join([
        f"A10 cloud aggregation over {n_vms} VMs:",
        f"  pure-Python oracle (before): {oracle_s * 1e3:.1f} ms",
        f"  columnar fast path (after):  {columnar_s * 1e3:.1f} ms",
        f"  speedup: {oracle_s / columnar_s:.1f}x",
    ]))
    emit_metrics(f"a10_columnar_cloud_{n_vms}", {
        "columnar_time": (columnar_s, "s"),
        "oracle_time": (oracle_s, "s"),
        "speedup": (oracle_s / columnar_s, "x"),
    })


def test_a10_incremental_identical_to_rebuild(benchmark):
    """Incremental storage/cloud folds match a drop-and-rebuild exactly."""
    n_snaps, n_vms = 5000, 800
    inc_schema = Database().create_schema("modw")
    full_schema = Database().create_schema("modw")
    for target in (inc_schema, full_schema):
        src_storage = _storage_schema(n_snaps)
        src_cloud = _cloud_schema(n_vms)
        for name in ("fact_storage",):
            target.create_table(src_storage.table(name).schema)
            for row in src_storage.table(name).rows():
                target.table(name).insert(row, _log=False)
        for name in ("fact_vm", "fact_vm_interval"):
            target.create_table(src_cloud.table(name).schema)
            for row in src_cloud.table(name).rows():
                target.table(name).insert(row, _log=False)

    inc = Aggregator(inc_schema)
    # first fold covers everything ingested so far; time the steady-state
    # second fold, which sees no new facts
    inc.aggregate_storage_incremental("month")
    inc.aggregate_cloud_incremental("month")

    def noop_fold():
        return (
            inc.aggregate_storage_incremental("month")
            + inc.aggregate_cloud_incremental("month")
        )

    folded = benchmark(noop_fold)
    assert folded == 0

    full = Aggregator(full_schema)
    full.aggregate_storage("month")
    full.aggregate_cloud("month")
    for name in ("agg_storage_month", "agg_cloud_month"):
        _assert_rows_match(
            _table_snapshot(inc_schema, name),
            _table_snapshot(full_schema, name),
            name,
        )
    emit("a10_incremental_parity", "\n".join([
        f"A10 incremental parity ({n_snaps} snapshots, {n_vms} VMs):",
        "  incremental storage+cloud fold == full rebuild: True",
        f"  steady-state no-op fold: {benchmark.stats.stats.mean * 1e3:.1f} ms",
    ]))
    emit_metrics("a10_incremental_parity", {
        "noop_fold_time": (benchmark.stats.stats.mean, "s"),
    })
