"""Ablation A9: resilience — what fault tolerance costs, and what it saves.

The paper's federation assumes cooperating-but-independent centers, which
means partial failure is the steady state: a satellite reboots mid-sync, a
shipment corrupts in transit, one bad event wedges a channel.  This bench
measures the three mechanisms added for that:

- retry with backoff: overhead of absorbing seeded transient apply faults
  during an otherwise normal incremental sync;
- circuit breaker: cost of a federation sync cycle when one member is dead,
  with the breaker open (skip) vs. hammering the dead member every cycle;
- quarantine: throughput of a sync that dead-letters poison events instead
  of wedging, plus the replay that drains the queue after healing.
"""

from __future__ import annotations


from repro.core import (
    CircuitBreaker,
    CircuitState,
    FaultPlan,
    FederationHub,
    ReplicationChannel,
    RetryPolicy,
    XdmodInstance,
    inject_apply_faults,
)
from repro.etl import ParsedJob, ingest_jobs
from repro.timeutil import ts
from repro.warehouse import Database

from conftest import emit, emit_metrics

N_BASE = 1000
N_DELTA = 100
TRANSIENT_RATE = 0.1
POISON_RATE = 0.05


def _jobs(start_id: int, n: int):
    return [
        ParsedJob(
            job_id=start_id + i, user=f"u{i % 37}", pi=f"pi{i % 7}",
            queue="normal", application=f"app{i % 11}",
            submit_ts=ts(2017, 1, 1) + i * 60,
            start_ts=ts(2017, 1, 1) + i * 60 + 300,
            end_ts=ts(2017, 1, 1) + i * 60 + 7500,
            nodes=1, cores=8, req_walltime_s=7200,
            state="COMPLETED", exit_code=0, resource="r1",
        )
        for i in range(n)
    ]


def _satellite(name: str) -> XdmodInstance:
    instance = XdmodInstance(name)
    ingest_jobs(instance.schema, _jobs(0, N_BASE))
    return instance


def test_a9_retry_absorbs_transient_faults(benchmark):
    """Incremental sync with ~10% of applies failing once before succeeding."""
    satellite = _satellite("sat_retry")
    target = Database("hub").create_schema("fed_sat")
    channel = ReplicationChannel(
        satellite.schema, target,
        retry_policy=RetryPolicy(max_retries=3, base_delay=0.0, jitter=0.0),
    )
    channel.catch_up()
    wrapper = inject_apply_faults(
        channel,
        FaultPlan(seed=9, transient_rate=TRANSIENT_RATE, transient_burst=1),
    )
    state = {"next_id": 10**6}

    def setup():
        ingest_jobs(satellite.schema, _jobs(state["next_id"], N_DELTA))
        state["next_id"] += N_DELTA
        return (), {}

    benchmark.pedantic(channel.catch_up, setup=setup, rounds=10)
    assert channel.lag == 0
    assert wrapper.faults_raised > 0
    assert channel.stats.retries >= wrapper.faults_raised
    assert len(channel.dead_letters) == 0

    emit("a9_retry", "\n".join([
        f"A9 (retry): {N_DELTA}-job deltas sync while "
        f"{TRANSIENT_RATE:.0%} of applies fail transiently",
        f"  faults injected: {wrapper.faults_raised}",
        f"  retries spent:   {channel.stats.retries}",
        f"  events applied:  {channel.stats.events_applied} "
        "(zero lag, zero quarantined — every fault absorbed in-line)",
    ]))
    emit_metrics("a9_retry", {
        "faulty_sync_time": (benchmark.stats.stats.mean, "s"),
        "retries_spent": (float(channel.stats.retries), "retries"),
    })


def _dead_member_hub(name: str, breaker: CircuitBreaker) -> FederationHub:
    hub = FederationHub(name)
    healthy = _satellite(f"{name}_healthy")
    dead = _satellite(f"{name}_dead")
    hub.join(healthy, retry_policy=RetryPolicy(max_retries=1, base_delay=0.0))
    hub.join(dead, retry_policy=RetryPolicy(max_retries=1, base_delay=0.0),
             breaker=breaker)
    # every event the dead member ever produces fails to apply
    inject_apply_faults(
        hub.member(f"{name}_dead").channel,
        FaultPlan(transient_rate=1.0, transient_burst=10**9),
    )
    ingest_jobs(dead.schema, _jobs(2 * 10**6, N_DELTA))
    return hub


def test_a9_sync_cycle_hammering_dead_member(benchmark):
    """Every cycle re-attempts (and re-fails) the dead member's backlog."""
    hub = _dead_member_hub(
        "hub_hammer", CircuitBreaker(failure_threshold=10**9, cooldown=1)
    )
    out = benchmark(hub.sync)
    assert out["hub_hammer_dead"].status == "failed"

    stats = hub.member("hub_hammer_dead").channel.stats
    emit("a9_hammer", "\n".join([
        "A9 (no breaker): each sync cycle re-polls, re-applies and re-fails "
        "the dead member's first event",
        f"  apply failures accumulated: {stats.apply_failures}",
        f"  sync cycles:                {stats.syncs}",
    ]))
    emit_metrics("a9_hammer", {
        "sync_cycle_time": (benchmark.stats.stats.mean, "s"),
    })


def test_a9_sync_cycle_with_breaker_open(benchmark):
    """The breaker opens after 2 failures; later cycles skip the member."""
    hub = _dead_member_hub(
        "hub_breaker", CircuitBreaker(failure_threshold=2, cooldown=10**9)
    )
    hub.sync()
    hub.sync()  # second failure trips the breaker
    member = hub.member("hub_breaker_dead")
    assert member.breaker.state is CircuitState.OPEN

    out = benchmark(hub.sync)
    assert out["hub_breaker_dead"].status == "circuit_open"

    stats = member.channel.stats
    emit("a9_breaker", "\n".join([
        "A9 (breaker open): after 2 failed cycles the circuit opens and "
        "sync skips the dead member outright",
        f"  apply failures frozen at: {stats.apply_failures} "
        "(no further wasted work)",
        "  healthy member still syncs every cycle at full speed",
    ]))
    emit_metrics("a9_breaker", {
        "sync_cycle_time": (benchmark.stats.stats.mean, "s"),
    })


def test_a9_quarantine_throughput(benchmark):
    """Sync keeps flowing while ~5% of events are dead-lettered."""
    satellite = _satellite("sat_quar")
    target = Database("hub_q").create_schema("fed_sat")
    channel = ReplicationChannel(
        satellite.schema, target,
        retry_policy=RetryPolicy(max_retries=1, base_delay=0.0),
        quarantine=True,
    )
    channel.catch_up()
    wrapper = inject_apply_faults(
        channel,
        FaultPlan(seed=9, transient_rate=POISON_RATE, transient_burst=10**9),
    )
    state = {"next_id": 3 * 10**6}

    def setup():
        ingest_jobs(satellite.schema, _jobs(state["next_id"], N_DELTA))
        state["next_id"] += N_DELTA
        return (), {}

    benchmark.pedantic(channel.catch_up, setup=setup, rounds=10)
    assert channel.lag == 0
    quarantined = len(channel.dead_letters)
    assert quarantined > 0

    # operator heals the cause, then drains the queue
    wrapper.plan.transient_burst = 0
    replayed = channel.replay()
    assert replayed == quarantined
    assert len(channel.dead_letters) == 0

    emit("a9_quarantine", "\n".join([
        f"A9 (quarantine): sync continues while {POISON_RATE:.0%} of events "
        "fail terminally",
        f"  events applied in-line: {channel.stats.events_applied - replayed}",
        f"  events quarantined:     {quarantined} (channel never wedged)",
        f"  replayed after heal:    {replayed} (dead-letter queue drained)",
    ]))
    emit_metrics("a9_quarantine", {
        "quarantining_sync_time": (benchmark.stats.stats.mean, "s"),
        "events_quarantined": (float(quarantined), "events"),
    })
