"""Figure 5: authentication across an XDMoD federation.

Paper artifact: instances X and Z with direct-authenticating users, Y and
the federated hub with SSO users.  The bench wires that exact topology —
hub as identity provider for its satellites (Section II-D3) — and measures
a federated user's sign-on fan-out across all member instances.
"""

from __future__ import annotations

import pytest

from repro.auth import Account, Role, SsoManager, hub_as_identity_provider

from conftest import emit, emit_metrics


@pytest.fixture(scope="module")
def federation_auth():
    # X and Z: local-password instances; Y and the hub: SSO
    site_x = SsoManager("instance_x")
    site_z = SsoManager("instance_z")
    for manager in (site_x, site_z):
        manager.accounts.add(Account("localuser", roles={Role.USER}))
        manager.local.set_password("localuser", "local-password-1")

    site_y = SsoManager("instance_y")
    hub = SsoManager("federated_hub")
    hub_idp = hub_as_identity_provider("federated_hub", [site_y, hub])
    hub_idp.register_user("feduser", {"mail": "feduser@project.org"})
    return site_x, site_y, site_z, hub, hub_idp


def test_fig5_federated_signon_fanout(benchmark, federation_auth):
    site_x, site_y, site_z, hub, hub_idp = federation_auth

    def federation_wide_signon():
        sessions = []
        # direct users on X and Z
        sessions.append(site_x.login_local("localuser", "local-password-1"))
        sessions.append(site_z.login_local("localuser", "local-password-1"))
        # the federated user signs onto Y and the hub via SSO
        for manager in (site_y, hub):
            assertion = hub_idp.idp.issue("feduser", manager.instance)
            sessions.append(manager.login_sso(assertion))
        return sessions

    sessions = benchmark(federation_wide_signon)

    lines = ["Figure 5: sign-on paths across the federation", "=" * 50]
    for session in sessions:
        lines.append(
            f"  {session.username:<10} -> {session.instance:<14} "
            f"via {session.method}"
        )
    lines.append("  hub IdP trusted by: instance_y, federated_hub")
    emit("fig5_federated_auth", "\n".join(lines))
    emit_metrics("fig5_federated_auth", {
        "federation_signon_time": (benchmark.stats.stats.mean, "s"),
    })

    assert {s.instance for s in sessions} == {
        "instance_x", "instance_z", "instance_y", "federated_hub",
    }
    assert {s.method for s in sessions} == {"local", "keycloak"}
