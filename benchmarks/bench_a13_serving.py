"""Ablation A13: the cache-first serving layer on the REST read path.

The federated hub exists to be looked at, and a portal workload is
overwhelmingly repeated reads of the same handful of charts.  This
ablation prices the query-result cache that PR 6 put in front of the
aggregation engine:

- **Speedup** — the same ``/query`` mix served in-process by a cached
  API (warm) and an uncached baseline (``cache=False``, every request
  recomputes).  Budget on the large parametrization: warm-cache p99 at
  least 5x faster than the uncached p99, with every cached body
  byte-identical to its uncached twin (the cache must change latency,
  never answers).
- **Concurrency** — N simulated clients hammering a live
  :class:`~repro.ui.ApiServer` (ThreadingHTTPServer) over loopback HTTP
  with a mixed ``/query`` / ``/chart`` / ``/status`` / ``/metrics``
  workload; reports per-route p50/p99 and the cache hit ratio, and
  saves the report under ``out/`` — CI uploads it as a workflow
  artifact.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import pytest

from repro.cli import _demo_federation, _demo_instance
from repro.obs import Observability
from repro.realms import jobs_realm
from repro.timeutil import ts
from repro.ui import ApiServer, XdmodApi

from conftest import emit, emit_metrics

T0 = ts(2017, 1, 1)

SPEEDUP_BUDGET = 5.0  # warm p99 at least this many times faster than uncached
N_CLIENTS = 8
REQUESTS_PER_CLIENT = 40


def _query_mix(months: int) -> list[str]:
    """A portal-shaped request mix: a few standing charts, re-read often."""
    end = ts(2017, months + 1, 1) if months < 12 else ts(2018, 1, 1)
    mix = []
    for metric, group_by in (
        ("cpu_hours", "queue"),
        ("cpu_hours", "resource"),
        ("xdsu", "application"),
        ("n_jobs_ended", "person"),
        ("avg_wait_hours", None),
        ("node_hours", "queue"),
    ):
        path = f"/query?realm=jobs&metric={metric}&start={T0}&end={end}"
        if group_by:
            path += f"&group_by={group_by}"
        mix.append(path)
    return mix


def _percentiles(latencies: list[float]) -> tuple[float, float]:
    ordered = sorted(latencies)
    p50 = ordered[len(ordered) // 2]
    p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
    return p50, p99


def _hammer(api: XdmodApi, paths: list[str], rounds: int) -> list[float]:
    latencies = []
    for _ in range(rounds):
        for path in paths:
            t0 = time.perf_counter()
            status, _ = api.handle(path, {})
            latencies.append(time.perf_counter() - t0)
            assert status == 200
    return latencies


@pytest.mark.parametrize(
    "scale,months,rounds,enforce",
    [(0.05, 3, 5, False), (0.3, 12, 50, True)],
    ids=["small", "large"],
)
def test_a13_cache_speedup(scale, months, rounds, enforce):
    instance, _, _ = _demo_instance(scale, months=months)
    realms = {"jobs": jobs_realm()}
    cached = XdmodApi(
        realms, instance.schema, obs=Observability.default(), cache=True
    )
    uncached = XdmodApi(realms, instance.schema, cache=False)
    paths = _query_mix(months)

    # equal correctness first: warm the cache, then every cached body must
    # be byte-identical to the uncached recompute of the same request
    for path in paths:
        warm = cached.handle_raw(path, {})
        base = uncached.handle_raw(path, {})
        hit = cached.handle_raw(path, {})
        assert warm == base == hit

    t_uncached = _hammer(uncached, paths, rounds)
    t_warm = _hammer(cached, paths, rounds)

    u50, u99 = _percentiles(t_uncached)
    w50, w99 = _percentiles(t_warm)
    speedup = u99 / w99 if w99 > 0 else float("inf")
    registry = cached.obs.registry
    hits = registry.value("serving_cache_lookups_total", result="hit")
    misses = registry.value("serving_cache_lookups_total", result="miss")
    emit(f"a13_serving_speedup_{months}mo", "\n".join([
        f"A13 cache-first /query, scale {scale}, {months} months, "
        f"{len(paths)} distinct queries x {rounds} rounds:",
        f"  uncached baseline: p50 {u50 * 1e3:.3f} ms  p99 {u99 * 1e3:.3f} ms",
        f"  warm cache:        p50 {w50 * 1e3:.3f} ms  p99 {w99 * 1e3:.3f} ms",
        f"  p99 speedup: {speedup:.1f}x (budget >= {SPEEDUP_BUDGET:.0f}x)",
        f"  cache lookups: {hits:.0f} hits / {misses:.0f} misses",
    ]))
    emit_metrics(f"a13_serving_speedup_{months}mo", {
        "uncached_p99": (u99, "s"),
        "warm_cache_p99": (w99, "s"),
        "p99_speedup": (speedup, "x"),
    })
    assert hits > 0 and misses == len(paths)
    if enforce:
        assert speedup >= SPEEDUP_BUDGET, (
            f"warm p99 {w99 * 1e6:.0f} us vs uncached p99 {u99 * 1e6:.0f} us: "
            f"{speedup:.1f}x is under the {SPEEDUP_BUDGET:.0f}x budget"
        )


def test_a13_concurrent_clients():
    """N clients over live HTTP; reports p50/p99 per route + hit ratio."""
    hub, _, monitor = _demo_federation()
    api = XdmodApi(
        {"jobs": jobs_realm()},
        hub.federated_schemas(),
        obs=hub.obs,
        monitor=monitor,
    )
    end = ts(2017, 1, 4)
    mix = [
        f"/query?realm=jobs&metric=cpu_hours&start={T0}&end={end}"
        "&group_by=resource&view=aggregate",
        f"/query?realm=jobs&metric=n_jobs_ended&start={T0}&end={end}",
        f"/chart?realm=jobs&metric=xdsu&start={T0}&end={end}"
        "&group_by=person&view=aggregate&top_n=5",
        "/status",
        "/metrics",
    ]
    by_route: dict[str, list[float]] = {}
    failures: list[str] = []
    lock = threading.Lock()

    def client(seq: int) -> None:
        for i in range(REQUESTS_PER_CLIENT):
            path = mix[(seq + i) % len(mix)]
            route = path.split("?")[0]
            t0 = time.perf_counter()
            try:
                with urllib.request.urlopen(server.url + path, timeout=30) as r:
                    status = r.status
                    body = r.read()
            except Exception as exc:
                with lock:
                    failures.append(f"{path}: {exc}")
                continue
            elapsed = time.perf_counter() - t0
            with lock:
                by_route.setdefault(route, []).append(elapsed)
            if status != 200 or not body:
                with lock:
                    failures.append(f"{path}: HTTP {status}")
            elif route != "/metrics":
                json.loads(body)  # strict JSON all the way down

    with ApiServer(api) as server:
        threads = [
            threading.Thread(target=client, args=(seq,))
            for seq in range(N_CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    assert not failures, failures[:5]
    registry = api.obs.registry
    hits = registry.value("serving_cache_lookups_total", result="hit")
    misses = registry.value("serving_cache_lookups_total", result="miss")
    stale = registry.value("serving_cache_lookups_total", result="stale")
    lookups = hits + misses + stale
    hit_ratio = hits / lookups if lookups else 0.0
    count, total = registry.histogram_stats(
        "serving_request_seconds", route="/query"
    )
    lines = [
        f"A13 serving under {N_CLIENTS} concurrent clients x "
        f"{REQUESTS_PER_CLIENT} requests (loopback HTTP):",
    ]
    for route in sorted(by_route):
        p50, p99 = _percentiles(by_route[route])
        lines.append(
            f"  {route:<9} n={len(by_route[route]):<4} "
            f"p50 {p50 * 1e3:.3f} ms  p99 {p99 * 1e3:.3f} ms"
        )
    lines.append(
        f"  cache: {hits:.0f} hits / {misses:.0f} misses / {stale:.0f} stale "
        f"(hit ratio {hit_ratio:.1%})"
    )
    lines.append(
        f"  server-side /query: {count} requests, "
        f"{total * 1e3:.2f} ms total handler time"
    )
    emit("a13_serving_report", "\n".join(lines))
    query_p50, query_p99 = _percentiles(by_route["/query"])
    emit_metrics("a13_serving_report", {
        "query_p50": (query_p50, "s"),
        "query_p99": (query_p99, "s"),
        "cache_hit_ratio": (hit_ratio, "ratio"),
    })
    # 3 distinct read queries, hammered 8x40 times: nearly all lookups hit
    assert misses >= 3 and hit_ratio > 0.9
