"""Ablation A7: live replication — commit-to-hub-visibility latency.

The paper's tight federation is "live replication".  This bench runs the
background replication daemon against a two-satellite hub and measures the
wall-clock delay between a satellite commit and the row's visibility in
the hub's replicated schema.
"""

from __future__ import annotations

import time

import pytest

from repro.core import FederationHub, LiveReplicator, XdmodInstance
from repro.etl import ParsedJob, ingest_jobs
from repro.timeutil import ts

from conftest import emit, emit_metrics


def make_job(job_id):
    return ParsedJob(
        job_id=job_id, user="u", pi="p", queue="q", application="a",
        submit_ts=ts(2017, 8, 1), start_ts=ts(2017, 8, 1, 1),
        end_ts=ts(2017, 8, 1, 2), nodes=1, cores=2, req_walltime_s=3600,
        state="COMPLETED", exit_code=0, resource="r1",
    )


@pytest.fixture(scope="module")
def live_hub():
    hub = FederationHub("hub")
    satellites = []
    for i in range(2):
        satellite = XdmodInstance(f"sat{i}")
        ingest_jobs(satellite.schema, [make_job(j) for j in range(50)])
        hub.join(satellite)
        satellites.append(satellite)
    return hub, satellites


def test_a7_commit_to_visibility_latency(benchmark, live_hub):
    hub, satellites = live_hub
    fed = hub.database.schema("fed_sat0")
    source = satellites[0]
    state = {"next_id": 10_000}

    with LiveReplicator(hub, interval_s=0.002) as live:

        def commit_and_wait():
            job_id = state["next_id"]
            state["next_id"] += 1
            ingest_jobs(source.schema, [make_job(job_id)])
            resource_id = next(
                iter(source.schema.table("dim_resource").rows())
            )["resource_id"]
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if fed.table("fact_job").get((resource_id, job_id)):
                    return True
                time.sleep(0.0005)
            return False

        visible = benchmark(commit_and_wait)

    assert visible
    assert live.stats.errors == 0
    emit("a7_live_latency", "\n".join([
        "A7 live replication latency (commit -> hub visibility):",
        f"  daemon cycles: {live.stats.cycles}, "
        f"events applied: {live.stats.events_applied}, errors: 0",
        "  measured latency is the benchmark's reported time per round "
        "(dominated by the daemon's 2 ms poll interval)",
    ]))
    emit_metrics("a7_live_latency", {
        "commit_to_visibility_time": (benchmark.stats.stats.mean, "s"),
    })
