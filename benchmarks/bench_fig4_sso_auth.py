"""Figure 4: local-password vs SSO sign-on to one instance.

Paper artifact: the schematic of user group R (direct XDMoD password) and
user group S (web SSO via SAML) authenticating to the same instance.  The
bench measures both sign-on paths and reports their relative cost plus the
functional equivalence the paper requires (either path, same account, same
capabilities).
"""

from __future__ import annotations

import pytest

from repro.auth import (
    Account,
    Role,
    SsoKind,
    SsoManager,
    make_provider,
)

from conftest import emit, emit_metrics


@pytest.fixture(scope="module")
def instance():
    manager = SsoManager("ccr_xdmod")
    provider = make_provider(SsoKind.SHIBBOLETH, "idp.buffalo.edu")
    manager.configure_sso(provider)
    for i in range(50):
        username = f"user{i:03d}"
        manager.accounts.add(Account(username, roles={Role.USER}))
        manager.local.set_password(username, f"password-{i:03d}")
        provider.register_user(username, {"mail": f"{username}@example.edu"})
    return manager, provider


def test_fig4_local_password_login(benchmark, instance):
    manager, _ = instance

    session = benchmark(manager.login_local, "user007", "password-007")
    assert session.method == "local"
    emit_metrics("fig4_local_login", {
        "local_login_time": (benchmark.stats.stats.mean, "s"),
    })


def test_fig4_sso_login(benchmark, instance):
    manager, provider = instance

    def sso_round_trip():
        assertion = provider.idp.issue("user007", "ccr_xdmod")
        return manager.login_sso(assertion)

    session = benchmark(sso_round_trip)
    assert session.method == "shibboleth"

    local = manager.login_local("user007", "password-007")
    lines = [
        "Figure 4: two sign-on paths to one XDMoD instance",
        "=" * 52,
        f"  group R (local password): method={local.method}",
        f"  group S (SSO / SAML):     method={session.method}, "
        f"issuer=idp.buffalo.edu",
        f"  same account, same capabilities: "
        f"{sorted(local.capabilities) == sorted(session.capabilities)}",
        "  note: local path dominated by PBKDF2 stretching (by design);",
        "        SSO path is HMAC sign+verify.",
    ]
    emit("fig4_sso_auth", "\n".join(lines))
    emit_metrics("fig4_sso_auth", {
        "sso_round_trip_time": (benchmark.stats.stats.mean, "s"),
    })
    assert local.capabilities == session.capabilities
