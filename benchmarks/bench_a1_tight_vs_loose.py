"""Ablation A1: tight vs loose federation — sync cost and staleness.

The paper offers both coupling modes (Section II-C1/C2) without measuring
them; this bench quantifies the trade: tight replication pays a small
per-event streaming cost and is never stale; loose federation pays a bulk
re-ship of the whole schema and is stale between shipments.
"""

from __future__ import annotations

import pytest

from repro.core import LooseChannel, ReplicationChannel, XdmodInstance
from repro.etl import ParsedJob, ingest_jobs
from repro.timeutil import ts
from repro.warehouse import Database

from conftest import emit, emit_metrics

N_BASE = 2000
N_DELTA = 100


def _jobs(start_id: int, n: int):
    return [
        ParsedJob(
            job_id=start_id + i, user=f"u{i % 37}", pi=f"pi{i % 7}",
            queue="normal", application=f"app{i % 11}",
            submit_ts=ts(2017, 1, 1) + i * 60,
            start_ts=ts(2017, 1, 1) + i * 60 + 300,
            end_ts=ts(2017, 1, 1) + i * 60 + 7500,
            nodes=1, cores=8, req_walltime_s=7200,
            state="COMPLETED", exit_code=0, resource="r1",
        )
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def satellite():
    instance = XdmodInstance("satellite")
    ingest_jobs(instance.schema, _jobs(0, N_BASE))
    return instance


def test_a1_tight_incremental_sync(benchmark, satellite):
    """Cost of streaming a fresh delta through an up-to-date channel."""
    hub_db = Database("hub")
    target = hub_db.create_schema("fed_satellite")
    channel = ReplicationChannel(satellite.schema, target)
    channel.catch_up()
    state = {"next_id": 10**6}

    def setup():
        ingest_jobs(satellite.schema, _jobs(state["next_id"], N_DELTA))
        state["next_id"] += N_DELTA
        return (), {}

    def sync():
        return channel.catch_up()

    benchmark.pedantic(sync, setup=setup, rounds=20)
    assert channel.lag == 0

    emit("a1_tight", "\n".join([
        f"A1 (tight): {N_DELTA}-job delta streams through an open channel;",
        f"  events applied lifetime: {channel.stats.events_applied}",
        "  staleness between syncs: 0 events (live replication)",
    ]))
    emit_metrics("a1_tight", {
        "delta_sync_time": (benchmark.stats.stats.mean, "s"),
        "events_applied": (float(channel.stats.events_applied), "events"),
    })


def test_a1_loose_reship(benchmark, satellite):
    """Cost of a loose re-shipment of the whole satellite schema."""
    hub_db = Database("hub2")
    channel = LooseChannel(satellite.schema, hub_db, "fed_satellite")
    channel.ship()
    ingest_jobs(satellite.schema, _jobs(2 * 10**6, N_DELTA))
    staleness_before = channel.staleness

    benchmark(channel.ship)

    rows = len(hub_db.schema("fed_satellite").table("fact_job"))
    emit("a1_loose", "\n".join([
        f"A1 (loose): re-ship replaces the whole schema ({rows} jobs moved "
        f"to deliver a {N_DELTA}-job delta)",
        f"  staleness before shipment: {staleness_before} events",
        "  => tight wins on freshness and on incremental cost; loose needs "
        "no binlog access (the paper's motivation for offering both)",
    ]))
    emit_metrics("a1_loose", {
        "reship_time": (benchmark.stats.stats.mean, "s"),
        "rows_shipped": (float(rows), "rows"),
    })
    assert staleness_before >= N_DELTA
    assert channel.staleness == 0
