"""Table I: job wall-time aggregation levels on satellites and hub.

Paper artifact: the table of wall-time bins — Instance A (5-hour limit:
1-60 s / 1-60 min / 1-5 h), Instance B (50-hour limit: 1-10 h / 10-20 h /
20-50 h), and the federation hub's superset (0-60 min / 1-5 h / 5-10 h /
10-20 h / 20-50 h).  The bench ingests wall-time-diverse workloads on both
instances, aggregates each under its own levels and the hub under its own,
and prints the realized Table I.  The benchmark measures the hub's
re-aggregation pass — the cost the paper says administrators pay when
levels change.
"""

from __future__ import annotations

from repro.aggregation import (
    AggregationConfig,
    TABLE1_FEDERATION_HUB,
    TABLE1_INSTANCE_A,
    TABLE1_INSTANCE_B,
)
from repro.core import FederationHub, XdmodInstance
from repro.simulators import (
    ResourceSpec,
    WorkloadConfig,
    WorkloadGenerator,
    simulate_resource,
    to_sacct_log,
)
from repro.timeutil import SECONDS_PER_HOUR, ts

from conftest import emit, emit_metrics

START, END = ts(2017, 1, 1), ts(2017, 3, 1)


def _build():
    from repro.simulators import QueueSpec

    # Instance A: resources with a 5-hour wall-time limit
    res_a = ResourceSpec(
        "res_a", 16, 16, 64, 16.0,
        queues=(
            QueueSpec("debug", 1 * SECONDS_PER_HOUR, priority=10),
            QueueSpec("normal", 5 * SECONDS_PER_HOUR),
            QueueSpec("largemem", 5 * SECONDS_PER_HOUR),
        ),
    )
    # Instance B: resources with a 50-hour wall-time limit
    res_b = ResourceSpec("res_b", 16, 16, 64, 16.0)

    instance_a = XdmodInstance(
        "instance_a",
        aggregation=AggregationConfig(walltime_levels=TABLE1_INSTANCE_A),
    )
    instance_b = XdmodInstance(
        "instance_b",
        aggregation=AggregationConfig(walltime_levels=TABLE1_INSTANCE_B),
    )
    for inst, res, seed in ((instance_a, res_a, 61), (instance_b, res_b, 62)):
        config = WorkloadConfig(seed=seed, jobs_per_day=15,
                                max_cores=res.total_cores)
        records = simulate_resource(
            res, WorkloadGenerator(config).generate(START, END)
        )
        inst.pipeline.ingest_sacct(to_sacct_log(records),
                                   default_resource=res.name)
        inst.aggregate(["month"])

    hub = FederationHub(
        "hub",
        aggregation=AggregationConfig(walltime_levels=TABLE1_FEDERATION_HUB),
    )
    hub.join(instance_a)
    hub.join(instance_b)
    return instance_a, instance_b, hub


def _level_counts(schema) -> dict[str, int]:
    counts: dict[str, int] = {}
    for row in schema.table("agg_job_month").rows():
        counts[row["walltime_level"]] = (
            counts.get(row["walltime_level"], 0) + row["n_jobs_ended"]
        )
    return counts


def test_table1_aggregation_levels(benchmark):
    instance_a, instance_b, hub = _build()

    benchmark(hub.aggregate_federation, ["month"])

    counts_a = _level_counts(instance_a.schema)
    counts_b = _level_counts(instance_b.schema)
    hub_counts: dict[str, int] = {}
    for schema in hub.federated_schemas().values():
        for level, n in _level_counts(schema).items():
            hub_counts[level] = hub_counts.get(level, 0) + n

    all_levels = list(TABLE1_INSTANCE_A.labels) + [
        l for l in TABLE1_FEDERATION_HUB.labels
        if l not in TABLE1_INSTANCE_A.labels
    ] + [l for l in TABLE1_INSTANCE_B.labels
         if l not in TABLE1_FEDERATION_HUB.labels]
    lines = ["Table I: jobs per wall-time aggregation level",
             "=" * 64,
             f"{'level':<16}{'Instance A':>12}{'Instance B':>12}{'Hub':>12}"]
    for level in all_levels + ["outside"]:
        a = counts_a.get(level, "-")
        b = counts_b.get(level, "-")
        h = hub_counts.get(level, "-")
        if (a, b, h) == ("-", "-", "-"):
            continue
        lines.append(f"{level:<16}{a!s:>12}{b!s:>12}{h!s:>12}")
    total_sat = sum(counts_a.values()) + sum(counts_b.values())
    total_hub = sum(hub_counts.values())
    lines.append("")
    lines.append(f"satellite job total {total_sat}, hub job total "
                 f"{total_hub} -> no data lost or changed")
    emit("table1_agg_levels", "\n".join(lines))
    emit_metrics("table1_agg_levels", {
        "hub_reaggregation_time": (benchmark.stats.stats.mean, "s"),
        "hub_jobs_total": (float(total_hub), "jobs"),
    })

    # Table I contract: each party bins under its own configured levels
    assert set(counts_a) <= set(TABLE1_INSTANCE_A.labels) | {"outside"}
    assert set(counts_b) <= set(TABLE1_INSTANCE_B.labels) | {"outside"}
    assert set(hub_counts) <= set(TABLE1_FEDERATION_HUB.labels) | {"outside"}
    assert total_sat == total_hub
