"""Ablation A2: replication filtering/routing overhead and effect.

Section II-C4's selective routing drops excluded resources' rows on the
channel.  This bench measures replication throughput with no filter, with
a resource exclusion, and with an allowlist, and verifies the sensitive
rows never reach the hub.
"""

from __future__ import annotations

import pytest

from repro.core import ReplicationChannel, ReplicationFilter
from repro.etl import ParsedJob, ingest_jobs
from repro.timeutil import ts
from repro.warehouse import Database

from conftest import emit, emit_metrics

N_JOBS = 3000


@pytest.fixture(scope="module")
def source_schema():
    schema = Database("satellite").create_schema("modw")
    jobs = [
        ParsedJob(
            job_id=i, user=f"u{i % 23}", pi=f"pi{i % 5}", queue="normal",
            application=f"app{i % 7}",
            submit_ts=ts(2017, 1, 1) + i * 30,
            start_ts=ts(2017, 1, 1) + i * 30 + 60,
            end_ts=ts(2017, 1, 1) + i * 30 + 3700,
            nodes=1, cores=4, req_walltime_s=3600,
            state="COMPLETED", exit_code=0,
            resource="secure_cluster" if i % 3 == 0 else "open_cluster",
        )
        for i in range(N_JOBS)
    ]
    ingest_jobs(schema, jobs)
    return schema


def _replicate(source, filter=None):
    db = Database("hub")
    target = db.create_schema("fed")
    channel = ReplicationChannel(source, target, filter=filter)
    channel.catch_up()
    return channel, target


@pytest.mark.parametrize("label,filter_factory", [
    ("unfiltered", lambda: None),
    ("exclude_secure", lambda: ReplicationFilter(
        exclude_resources={"secure_cluster"})),
    ("allowlist_open", lambda: ReplicationFilter(
        include_resources={"open_cluster"})),
])
def test_a2_routing_throughput(benchmark, source_schema, label, filter_factory):
    channel, target = benchmark(
        lambda: _replicate(source_schema, filter_factory())
    )

    fact_rows = len(target.table("fact_job"))
    resources = {r["name"] for r in target.table("dim_resource").rows()}
    lines = [
        f"A2 routing [{label}]:",
        f"  events seen {channel.stats.events_seen}, applied "
        f"{channel.stats.events_applied}, filtered "
        f"{channel.stats.events_filtered}",
        f"  hub fact_job rows: {fact_rows}; hub resources: {sorted(resources)}",
    ]
    emit(f"a2_routing_{label}", "\n".join(lines))
    emit_metrics(f"a2_routing_{label}", {
        "replication_time": (benchmark.stats.stats.mean, "s"),
        "hub_fact_rows": (float(fact_rows), "rows"),
    })

    if label == "unfiltered":
        assert fact_rows == N_JOBS
    else:
        assert resources == {"open_cluster"}
        assert fact_rows == sum(1 for i in range(N_JOBS) if i % 3 != 0)
