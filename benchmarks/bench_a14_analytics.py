"""Ablation A14: job-level analytics — summarization and detection cost.

The analytics stage rides the existing federation cycle: satellites fold
``job_timeseries`` into ``fact_job_analytics`` (SUPReMM-style), the hub
re-collects the federated scores and runs the anomaly detector after
every aggregation.  This bench prices both halves:

- **Summarization throughput** — jobs folded per second by
  ``summarize_schema`` on a satellite with stored performance series.
- **Detector overhead** — a full hub cycle (join + replicate +
  aggregate) with the :class:`~repro.analytics.AnalyticsPlane` refresh
  hook attached vs. the same cycle without analytics.  Budget: within
  5% (plus a small absolute slack for sub-second cycles).

Also renders the federation-wide worst-jobs table from the
fault-injected demo federation and saves it under ``out/`` — CI uploads
that report as a workflow artifact.
"""

from __future__ import annotations

import time

import pytest

from repro.analytics import AnalyticsPlane, summarize_schema
from repro.cli import _demo_analytics_federation
from repro.core import FederationHub, XdmodInstance
from repro.core.replicator import supremm_summary_filter
from repro.obs import FakeClock, Observability
from repro.simulators import (
    WorkloadGenerator,
    ccr_like_site,
    generate_performance_batch,
    simulate_resource,
    to_sacct_log,
)
from repro.timeutil import ts

from conftest import emit, emit_metrics

BUDGET_REL = 1.05  # plane-enabled within 5% of the no-analytics cycle ...
BUDGET_ABS = 0.05  # ... plus 50 ms slack so tiny timings cannot flake
REPEATS = 5


def _min_time(fn, repeats: int = REPEATS) -> float:
    """Best-of-N wall time; min is the standard noise-robust estimator."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _bundle(name: str) -> Observability:
    return Observability(clock=FakeClock(auto_advance=0.001), name=name)


def _perf_satellite(
    name: str, *, days: int, max_jobs: int | None, seed: int
) -> tuple[XdmodInstance, int]:
    """A satellite with accounting plus per-job performance timeseries."""
    instance = XdmodInstance(name, obs=_bundle(name))
    site = ccr_like_site(scale=0.05, seed=seed)
    start, end = ts(2017, 1, 1), ts(2017, 1, 1 + days)
    records = simulate_resource(
        site.resource, WorkloadGenerator(site.workload).generate(start, end)
    )
    instance.pipeline.ingest_sacct(
        to_sacct_log(records), default_resource=site.name
    )
    perfs = generate_performance_batch(
        records, site.resource, max_jobs=max_jobs
    )
    instance.pipeline.ingest_performance(perfs)
    return instance, len(perfs)


@pytest.mark.parametrize(
    "days,max_jobs", [(7, 60), (21, 400)], ids=["small", "large"]
)
def test_a14_summarization_throughput(benchmark, days, max_jobs):
    """Jobs/second folded from raw timeseries into fact_job_analytics."""
    instance, n_jobs = _perf_satellite(
        "sat_summ", days=days, max_jobs=max_jobs, seed=30
    )

    summarized = benchmark(summarize_schema, instance.schema)

    mean_s = benchmark.stats.stats.mean
    jobs_per_sec = summarized / mean_s if mean_s > 0 else float("inf")
    emit(f"a14_summarize_{days}d", "\n".join([
        f"A14 summarization over {summarized} jobs with stored series "
        f"({days} days simulated):",
        f"  fold time: {mean_s * 1e3:.2f} ms "
        f"({jobs_per_sec:,.0f} jobs/sec)",
        "  upserts are idempotent: re-summarizing a window rewrites the "
        "same rows",
    ]))
    emit_metrics(f"a14_summarize_{days}d", {
        "summarize_time": (mean_s, "s"),
        "summarization_rate": (jobs_per_sec, "jobs/s"),
        "jobs_summarized": (float(summarized), "jobs"),
    })
    assert summarized == n_jobs
    assert len(instance.schema.table("fact_job_analytics")) == n_jobs


def test_a14_detector_overhead():
    """Full hub cycle with the analytics refresh hook vs. without."""
    satellites = []
    for i in range(2):
        instance, _ = _perf_satellite(
            f"sat_det{i}", days=7, max_jobs=60, seed=30 + i
        )
        summarize_schema(instance.schema)
        satellites.append(instance)
    state = {"n": 0}

    def cycle(analytics: bool) -> AnalyticsPlane | None:
        state["n"] += 1
        hub = FederationHub(f"hub{state['n']}", obs=_bundle("hub"))
        for satellite in satellites:
            hub.join(
                satellite, mode="tight", filter=supremm_summary_filter()
            )
        plane = None
        if analytics:
            plane = AnalyticsPlane(hub)
            hub.add_post_aggregation_hook(plane.refresh)
        hub.aggregate_federation(["month"])
        return plane

    plane = cycle(True)  # warm-up; also checks the hook actually ran
    assert plane is not None and plane.refreshes == 1
    assert len(plane.last_scores) > 0

    t_base = _min_time(lambda: cycle(False))
    t_analytics = _min_time(lambda: cycle(True))

    overhead = (t_analytics / t_base - 1.0) * 100 if t_base > 0 else 0.0
    emit("a14_detector_overhead", "\n".join([
        f"A14 detector overhead on a 2-member federation cycle "
        f"({len(plane.last_scores)} federated job scores):",
        f"  no analytics:           {t_base * 1e3:.2f} ms",
        f"  analytics refresh hook: {t_analytics * 1e3:.2f} ms",
        f"  overhead: {overhead:+.1f}% (budget {(BUDGET_REL - 1) * 100:.0f}%"
        f" + {BUDGET_ABS * 1e3:.0f} ms slack)",
    ]))
    emit_metrics("a14_detector_overhead", {
        "baseline_cycle_time": (t_base, "s"),
        "analytics_cycle_time": (t_analytics, "s"),
    })
    assert t_analytics <= t_base * BUDGET_REL + BUDGET_ABS, (
        f"analytics cycle {t_analytics * 1e3:.2f} ms exceeds budget over "
        f"baseline {t_base * 1e3:.2f} ms"
    )


def test_a14_worst_jobs_artifact():
    """Render the federation-wide worst-jobs view with injected outliers."""
    _, _, plane, _, pathological = _demo_analytics_federation(
        inject_pathological=True
    )
    lines = [
        f"A14 federation-wide efficiency view "
        f"({len(plane.last_scores)} jobs, worst first):",
        "=" * 64,
    ]
    for job in plane.worst_jobs(10):
        tags = f" [{','.join(job.tags)}]" if job.tags else ""
        lines.append(
            f"  {job.member}/{job.resource}#{job.job_id:<6} "
            f"{job.application:<16} {job.score:.3f}{tags}"
        )
    lines.append("")
    lines.append(
        f"anomalies flagged: "
        + ", ".join(
            f"{a.job.member}#{a.job.job_id} ({a.kind}, z={a.zscore:.1f})"
            for a in plane.anomalies
        )
    )
    emit("a14_worst_jobs", "\n".join(lines))
    emit_metrics("a14_worst_jobs", {
        "jobs_scored": (float(len(plane.last_scores)), "jobs"),
        "anomalies_open": (float(plane.anomalies_open), "jobs"),
    })

    # the injected pathological jobs rank worst and are exactly the
    # anomalies the detector flags — no false positives
    injected = set(pathological)
    assert {(j.member, j.job_id) for j in plane.worst_jobs(2)} == injected
    assert {(a.job.member, a.job.job_id) for a in plane.anomalies} == injected
