"""Ablation A4: hub-as-backup — satellite regeneration cost and fidelity.

Section II-E4: because the hub holds unreduced raw data, it "could be used
to regenerate the databases for the member instances."  The bench measures
regeneration of a satellite warehouse from the hub and verifies exactness
table by table.
"""

from __future__ import annotations

from repro.core import regenerate_satellite, verify_regeneration
from repro.etl import WAREHOUSE_SCHEMA

from conftest import emit, emit_metrics


def test_a4_regenerate_satellite(benchmark, fig1_federation):
    hub = fig1_federation["hub"]
    satellites = fig1_federation["satellites"]
    victim = sorted(satellites)[0]
    member_name = f"site_{victim}"

    restored_db = benchmark(regenerate_satellite, hub, member_name)

    original = satellites[victim].schema
    report = verify_regeneration(
        original, restored_db.schema(WAREHOUSE_SCHEMA)
    )
    n_jobs = len(original.table("fact_job"))
    emit("a4_backup_restore", "\n".join([
        f"A4 backup: regenerated {member_name} from the hub "
        f"({n_jobs} jobs, {len(report.tables_checked)} tables)",
        f"  matching tables:  {list(report.matching)}",
        f"  mismatched:       {list(report.mismatched)}",
        f"  missing:          {list(report.missing)}",
        f"  fidelity: {'EXACT' if report.exact else 'PARTIAL'}",
    ]))
    emit_metrics("a4_backup_restore", {
        "regeneration_time": (benchmark.stats.stats.mean, "s"),
        "jobs_restored": (float(n_jobs), "jobs"),
    })
    assert report.exact
