"""Ablation A5: federated user identity, with and without mapping.

Section II-D4: the federation module ships no identity mapping, so a
person with accounts on several satellites appears once per satellite.
This bench quantifies the duplication on the Figure 1 federation and
measures the future-work username-matching mapper.
"""

from __future__ import annotations

from repro.core import IdentityMap, federated_user_counts
from repro.realms import jobs_realm

from conftest import emit, emit_metrics


def test_a5_identity_mapping(benchmark, fig1_federation):
    hub = fig1_federation["hub"]
    satellites = fig1_federation["satellites"]
    users_by_instance = {
        f"site_{name}": [
            r["username"] for r in inst.schema.table("dim_person").rows()
        ]
        for name, inst in satellites.items()
    }

    idmap = benchmark(IdentityMap.from_username_match, users_by_instance)

    unmapped = federated_user_counts(hub)
    mapped = federated_user_counts(hub, idmap)
    start, end = fig1_federation["range"]
    person_groups_unmapped = len(jobs_realm().query(
        hub.federated_schemas(), "n_jobs_ended",
        start=start, end=end, group_by="person", view="aggregate",
    ).groups())
    person_groups_mapped = len(jobs_realm().query(
        hub.federated_schemas(), "n_jobs_ended",
        start=start, end=end, group_by="person", view="aggregate",
        idmap=idmap,
    ).groups())

    emit("a5_identity", "\n".join([
        "A5 identity across the federation:",
        f"  qualified identities (paper's current behaviour): "
        f"{unmapped['qualified']}",
        f"  canonical people after username matching:          "
        f"{mapped['canonical']}",
        f"  duplicate identities removed: "
        f"{unmapped['qualified'] - mapped['canonical']}",
        f"  'User' drill-down groups: {person_groups_unmapped} -> "
        f"{person_groups_mapped}",
    ]))
    emit_metrics("a5_identity", {
        "username_match_time": (benchmark.stats.stats.mean, "s"),
        "duplicates_removed": (
            float(unmapped["qualified"] - mapped["canonical"]), "identities"
        ),
    })
    assert mapped["canonical"] < unmapped["qualified"]
    assert person_groups_mapped == mapped["canonical"]
