"""Figure 2: fan-in federation topology — three satellites, one hub.

Paper artifact: the topology diagram (instances X, Y, Z each monitoring a
resource, replicating into a central hub).  The bench builds the topology
from scratch per round and measures the full join-and-initial-sync cost,
then reports the replicated row counts per member — the concrete form of
the diagram's arrows.
"""

from __future__ import annotations

from repro.core import FederationHub, XdmodInstance, standardize_federation
from repro.simulators import (
    WorkloadGenerator,
    figure1_sites,
    simulate_resource,
    to_sacct_log,
)
from repro.timeutil import ts

from conftest import emit, emit_metrics

START, END = ts(2017, 1, 1), ts(2017, 3, 1)


def _build_satellites():
    sites = figure1_sites(scale=0.1)
    conversion, _ = standardize_federation(
        {name: preset.resource for name, preset in sites.items()}
    )
    satellites = []
    for name, preset in sorted(sites.items()):
        instance = XdmodInstance(f"site_{name}", conversion=conversion)
        records = simulate_resource(
            preset.resource,
            WorkloadGenerator(preset.workload).generate(START, END),
        )
        instance.pipeline.ingest_sacct(
            to_sacct_log(records), default_resource=name
        )
        satellites.append(instance)
    return satellites, conversion


def test_fig2_fanin_join_and_sync(benchmark, capsys):
    satellites, conversion = _build_satellites()
    counter = {"n": 0}

    def fan_in():
        counter["n"] += 1
        hub = FederationHub(f"hub{counter['n']}", conversion=conversion)
        for satellite in satellites:
            # each hub needs fresh members; joining replays history
            try:
                hub.join(satellite, mode="tight")
            except Exception:
                pass
        return hub

    hub = benchmark(fan_in)

    lines = ["Figure 2: fan-in topology (satellite -> hub rows replicated)",
             "=" * 60]
    total_events = 0
    for member in hub.members:
        schema = hub.database.schema(member.fed_schema)
        fact_rows = len(schema.table("fact_job"))
        stats = member.channel.stats
        total_events += stats.events_applied
        lines.append(
            f"  {member.name:<16} -> {member.fed_schema:<22} "
            f"{fact_rows:>6} jobs, {stats.events_applied:>6} events applied, "
            f"lag {member.channel.lag}"
        )
    lines.append(f"  hub schemas: {hub.database.schema_names()}")
    lines.append(f"  total events fanned in per build: {total_events}")
    emit("fig2_fanin_topology", "\n".join(lines))
    emit_metrics("fig2_fanin_topology", {
        "fanin_build_time": (benchmark.stats.stats.mean, "s"),
        "events_fanned_in": (float(total_events), "events"),
    })

    assert len(hub.members) == 3
    assert all(m.channel.lag == 0 for m in hub.members)
