"""Figure 6: storage realm — file count and physical usage by month, 2017.

Paper artifact: CCR's file count (blue circles) and physical storage usage
(red diamonds), aggregated monthly across 2017, both growing through the
year.  The bench regenerates both monthly series from the federated hub
and measures the storage-realm query path.
"""

from __future__ import annotations

from repro.realms import storage_realm
from repro.ui import ChartBuilder, render_table

from conftest import emit, emit_metrics


def test_fig6_storage_metrics_by_month(benchmark, heterogeneous_hub):
    hub = heterogeneous_hub["hub"]
    start, end = heterogeneous_hub["range"]
    builder = ChartBuilder(storage_realm(), hub.federated_schemas())

    def run_queries():
        files = builder.timeseries(
            "file_count", start=start, end=end,
            title="Figure 6a: file count by month, 2017",
        )
        usage = builder.timeseries(
            "physical_usage_tb", start=start, end=end,
            title="Figure 6b: physical storage usage [TB] by month, 2017",
        )
        return files, usage

    files, usage = benchmark(run_queries)

    lines = [render_table(files), "",
             render_table(usage, value_format="{:,.2f}")]
    file_series = [v or 0 for _, v in files.series[0].points]
    usage_series = [v or 0 for _, v in usage.series[0].points]
    lines.append("")
    lines.append(
        f"paper shape: both series grow through 2017; measured growth "
        f"file count x{file_series[-1] / file_series[0]:.2f}, "
        f"physical usage x{usage_series[-1] / usage_series[0]:.2f}"
    )
    emit("fig6_storage_realm", "\n".join(lines))
    emit_metrics("fig6_storage_realm", {
        "storage_query_time": (benchmark.stats.stats.mean, "s"),
        "file_count_growth": (file_series[-1] / file_series[0], "x"),
    })

    assert len(file_series) == 12
    # growth shape (persistent storage dominates the totals)
    assert file_series[-1] > file_series[0]
    assert usage_series[-1] > usage_series[0]
