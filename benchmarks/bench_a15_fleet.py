"""Ablation A15: cost of the federated telemetry plane at fleet scale.

The federated telemetry plane makes every healthy sync cycle ship the
satellite's metrics registry into the hub's fleet TSDB.  This ablation prices that plane on
an N-satellite federation (N up to 32) where every satellite runs a
fully *enabled* observability bundle: the baseline arm disables the
fleet TSDB before joining (so no shippers attach and no shipments are
built), the measured arm is the configuration this PR ships.  Budget:
within 5% (plus a small absolute slack for sub-millisecond cycles).

Two supporting measurements price the plane's parts in isolation:
the wire size of one registry shipment, and the hub-side merge cost of
``FleetTSDB.ingest`` per shipment.

Also renders the fleet dashboard from the fault-injected demo
federation and saves it under ``out/`` — CI uploads that report as a
workflow artifact.  The render must be byte-identical across two
independent builds (FakeClock + seeded workloads make the whole
scenario deterministic).
"""

from __future__ import annotations

import random
import time

import pytest

from repro.cli import _demo_fleet_federation
from repro.core import FederationHub, XdmodInstance
from repro.obs import FakeClock, FleetTSDB, Observability, build_shipment
from repro.obs.fleet import shipment_size
from repro.timeutil import SECONDS_PER_HOUR, ts

from conftest import emit, emit_metrics

T0 = ts(2017, 1, 1)

BUDGET_REL = 1.05  # fleet-enabled within 5% of the bare sync cycle ...
BUDGET_ABS = 0.05  # ... plus 50 ms slack so tiny timings cannot flake
REPEATS = 5
EVENTS_PER_SAT = 300


def _min_time(fn, repeats: int = REPEATS) -> float:
    """Best-of-N wall time; min is the standard noise-robust estimator."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _satellite(idx: int, n: int) -> XdmodInstance:
    """An instance with ``n`` binlogged fact rows ready to replicate.

    Unlike A12, satellite telemetry is *enabled*: the shipments under
    test carry each satellite's real registry, so both arms must pay the
    identical satellite-side instrumentation cost.
    """
    from repro.etl.star import create_jobs_star

    sat = XdmodInstance(
        f"sat{idx:02d}",
        obs=Observability(clock=FakeClock(auto_advance=0.001), name=f"sat{idx:02d}"),
    )
    create_jobs_star(sat.schema)
    fact = sat.schema.table("fact_job")
    rng = random.Random(100 + idx)
    for i in range(n):
        start = T0 + rng.randrange(0, 300 * 86400)
        wall = rng.randrange(1, 86400)
        cores = (1, 4, 16)[i % 3]
        fact.insert({
            "job_id": i + 1, "resource_id": 1 + i % 3,
            "person_id": 1 + i % 12, "pi_id": 1 + i % 4,
            "app_id": 1 + i % 6, "queue_id": 1,
            "submit_ts": start - 600, "start_ts": start,
            "end_ts": start + wall, "walltime_s": wall,
            "wait_s": 600, "req_walltime_s": wall + 60,
            "nodes": max(1, cores // 16), "cores": cores,
            "cpu_hours": cores * wall / SECONDS_PER_HOUR,
            "node_hours": max(1, cores // 16) * wall / SECONDS_PER_HOUR,
            "xdsu": 1.2 * cores * wall / SECONDS_PER_HOUR,
            "state": "completed", "exit_code": 0,
        })
    # flesh out the registry so shipments carry a representative payload
    # (labelled counters + histogram buckets, like a real ETL satellite)
    ingested = sat.obs.registry.counter(
        "bench_ingest_rows", "Synthetic per-satellite ingest volume",
        ("source",),
    )
    ingested.labels(source="sacct").inc(n)
    latency = sat.obs.registry.histogram(
        "bench_phase_seconds", "Synthetic per-satellite phase latency",
        ("phase",),
    )
    for phase in ("shred", "ingest", "aggregate"):
        for _ in range(20):
            latency.labels(phase=phase).observe(rng.random())
    return sat


def _run_sync_cycles(sats: list[XdmodInstance], *, fleet: bool) -> FederationHub:
    """Replicate every satellite's backlog with default sync cycles.

    Each ``hub.sync()`` is one full catch-up cycle — the shape every
    caller in this repo uses — so the plane is priced as it runs in
    production: one telemetry shipment per member per healthy cycle.
    ``fleet=True`` is the configuration this PR ships; ``fleet=False``
    disables the fleet TSDB *before* joining, so no shippers attach and
    the cycle is the bare pre-fleet sync.
    """
    hub = FederationHub("hub")
    hub.fleet.enabled = fleet
    for sat in sats:
        hub.join(sat, mode="tight", initial_sync=False)
    while sum(hub.lag().values()):
        hub.sync()
    return hub


@pytest.mark.parametrize("n_sats", [8, 32])
def test_a15_fleet_overhead(n_sats):
    sats = [_satellite(i, EVENTS_PER_SAT) for i in range(n_sats)]
    _run_sync_cycles(sats, fleet=True)  # warm-up

    t_bare = _min_time(lambda: _run_sync_cycles(sats, fleet=False))
    t_fleet = _min_time(lambda: _run_sync_cycles(sats, fleet=True))

    hub = _run_sync_cycles(sats, fleet=True)
    assert hub.fleet.member_names() == sorted(s.name for s in sats)
    # a satellite-local ETL/replication series is visible under its label
    assert hub.fleet.history.last(
        "fleet_shipment_seq_rows", member=sats[0].name
    ) is not None
    ship_bytes = [
        m.telemetry.last_bytes for m in hub.members if m.telemetry is not None
    ]
    overhead = (t_fleet / t_bare - 1.0) * 100 if t_bare > 0 else 0.0
    emit(f"a15_fleet_{n_sats}", "\n".join([
        f"A15 federated telemetry plane, {n_sats} satellites x "
        f"{EVENTS_PER_SAT} events per full-catch-up sync cycle:",
        f"  bare sync cycles (fleet disabled): {t_bare * 1e3:.2f} ms",
        f"  shipments + fleet TSDB merge:      {t_fleet * 1e3:.2f} ms",
        f"  overhead: {overhead:+.1f}% (budget {(BUDGET_REL - 1) * 100:.0f}%"
        f" + {BUDGET_ABS * 1e3:.0f} ms slack)",
        f"  shipment size: {max(ship_bytes)} bytes max, "
        f"{sum(ship_bytes) / len(ship_bytes):.0f} mean",
        f"  fleet series stored: {hub.fleet.series_count()}",
    ]))
    emit_metrics(f"a15_fleet_{n_sats}", {
        "bare_time": (t_bare, "s"),
        "fleet_time": (t_fleet, "s"),
        "shipment_bytes_max": (float(max(ship_bytes)), "bytes"),
        "fleet_series": (float(hub.fleet.series_count()), "series"),
    })
    assert t_fleet <= t_bare * BUDGET_REL + BUDGET_ABS, (
        f"fleet telemetry plane {t_fleet * 1e3:.2f} ms exceeds budget over "
        f"bare sync {t_bare * 1e3:.2f} ms"
    )


def test_a15_ingest_merge_cost():
    """Hub-side merge cost of one shipment, isolated from sync."""
    sat = _satellite(0, EVENTS_PER_SAT)
    hub = _run_sync_cycles([sat], fleet=True)
    registry = sat.obs.registry
    n_ship = 200
    shipments = [
        build_shipment(registry, member="sat00", seq=i + 1, scraped_at=float(i))
        for i in range(n_ship)
    ]
    size = shipment_size(shipments[0])

    def ingest_all():
        tsdb = FleetTSDB(FakeClock(auto_advance=0.001))
        for doc in shipments:
            tsdb.ingest(doc)

    t = _min_time(ingest_all)
    per_ship_us = t / n_ship * 1e6
    emit("a15_ingest_merge", "\n".join([
        f"A15 fleet ingest merge cost ({n_ship} shipments of "
        f"{len(shipments[0]['samples'])} samples):",
        f"  {per_ship_us:.0f} us per shipment, {size} bytes on the wire",
    ]))
    emit_metrics("a15_ingest_merge", {
        "ingest_time_per_shipment": (per_ship_us / 1e6, "s"),
        "shipment_bytes": (float(size), "bytes"),
    })
    assert hub.fleet.series_count("sat00") > 0


def test_a15_fleet_dashboard_artifact():
    """Render the fleet dashboard the fault-injected demo produces.

    The scenario is fully deterministic (FakeClock everywhere, seeded
    workloads), so two independent builds must render byte-identical
    dashboards — the acceptance bar for the fleet view.
    """
    _, _, monitor = _demo_fleet_federation(inject_faults=True)
    board = monitor.render_fleet()
    _, _, monitor2 = _demo_fleet_federation(inject_faults=True)
    assert monitor2.render_fleet() == board

    hub = monitor.hub
    firing = {s.rule.id for s in monitor.alerts.firing()}
    assert "fleet_telemetry_stale" in firing
    stale = hub.fleet.stale_members(900.0)
    assert stale == ["site2"]
    emit("a15_fleet_dashboard", board)
    emit_metrics("a15_fleet_dashboard", {
        "stale_members": (float(len(stale)), "members"),
        "fleet_alerts_firing": (
            float(sum(
                1 for s in monitor.alerts.firing() if s.rule.scope == "fleet"
            )),
            "alerts",
        ),
    })
