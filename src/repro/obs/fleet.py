"""Federated telemetry: satellite registry shipments into a fleet TSDB.

The paper's premise is that a hub monitors affiliated resources it does
not operate — yet the observability plane of PRs 4-5 is strictly
per-process: each satellite's :class:`~repro.obs.metrics.MetricsRegistry`
is invisible to the hub.  This module closes that gap with a
remote-write shaped flow, the same model the Open Science Data
Federation runs in production (per-site collectors shipping into one
central monitoring stack):

``TelemetryShipper``
    Lives on the satellite side of a federation member.  Each call to
    :meth:`TelemetryShipper.snapshot` walks the satellite registry's
    exposition samples (pinned byte-compatible with a strict
    render/parse round trip, so the shipment carries exactly what a
    scrape would see, histogram buckets included) and wraps them in a
    compact, checksum-verified, sequence-numbered JSON document.

``FleetTSDB``
    Lives on the hub.  :meth:`FleetTSDB.ingest` verifies the checksum
    and merges the samples into an internal
    :class:`~repro.obs.history.MetricsHistory` under an added ``member``
    label, so the history's PromQL-flavoured vocabulary (``last``,
    ``increase``, ``rate``, ``quantile_over_time``) works unchanged over
    the merged fleet.  Dedup is last-write-wins keyed by the satellite
    scrape sequence: a redelivered shipment (same ``seq`` — retries and
    degraded-mode sync make those routine) is re-observed at the
    original ingest timestamp, which collapses in place instead of
    appending; an out-of-order older ``seq`` is dropped outright.
    Counter resets *inside* shipped values (a satellite restarting)
    are handled downstream by the history's reset-aware ``increase()``.

Staleness: every *new* shipment also appends the synthetic
:data:`SEQ_SERIES` sample (value = ``seq``), which changes on every
fresh delivery and only then — ``age_s`` over it is therefore "seconds
since the member last shipped fresh telemetry", the signal behind the
``fleet_telemetry_stale`` alert rule and ``fleet_stale_members`` in
``GET /health``.  Redeliveries deliberately do not refresh it.

The ``member`` label is reserved: a shipped sample that already carries
one (a regional hub re-shipping its own fleet, say) is re-labelled with
the shipping member's name.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Mapping

from ..analysis.sanitizer import create_lock
from .clock import Clock
from .history import MetricsHistory
from .metrics import MetricsRegistry, _fmt, _render_labels

__all__ = [
    "SEQ_SERIES",
    "SHIPMENT_VERSION",
    "FleetTSDB",
    "MemberTelemetry",
    "ShipmentError",
    "TelemetryShipper",
    "build_shipment",
    "shipment_checksum",
    "shipment_size",
]

#: Shipment document format version; bumped on incompatible changes.
SHIPMENT_VERSION = 1

#: Synthetic per-member series appended on every *new* shipment (value =
#: scrape sequence).  Its ``age_s`` is the fleet staleness signal.
SEQ_SERIES = "fleet_shipment_seq_rows"


class ShipmentError(ValueError):
    """Malformed, version-incompatible, or checksum-failing shipment."""


def _canonical(doc: Mapping) -> str:
    """Canonical JSON encoding: the checksum and size basis."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def shipment_checksum(doc: Mapping) -> str:
    """sha256 over the canonical JSON of everything but ``checksum``."""
    body = {k: v for k, v in doc.items() if k != "checksum"}
    return hashlib.sha256(_canonical(body).encode("utf-8")).hexdigest()


def shipment_size(doc: Mapping) -> int:
    """Wire size of a shipment in bytes (canonical JSON encoding)."""
    return len(_canonical(doc).encode("utf-8"))


def _decode_value(text: str) -> float:
    """Inverse of the Prometheus value spelling used in shipments.

    Python's ``float()`` already accepts the ``+Inf``/``-Inf``/``NaN``
    spellings :func:`repro.obs.metrics._fmt` emits, so the inverse is
    the constructor itself — kept named so the wire contract has an
    explicit decode point.
    """
    return float(text)


def build_shipment(
    registry: MetricsRegistry, *, member: str, seq: int, scraped_at: float
) -> dict:
    """Snapshot ``registry`` into one checksum-verified shipment document.

    The shipment carries exactly the samples a scrape would see —
    histogram ``_bucket``/``_sum``/``_count`` series included — via the
    registry's direct exposition walk
    (:meth:`MetricsRegistry.iter_exposition_samples`, pinned
    byte-compatible with the render/parse round trip by the round-trip
    tests), plus the ``# TYPE`` map.  Values travel as Prometheus value
    spellings (strings), which keeps ``±Inf``/``NaN`` samples alive
    across strict-JSON transports.
    """
    # the walk's own ordering (family name, then label values) is already
    # deterministic, which is all the checksum needs — no global re-sort
    samples = [
        [name, [[k, v] for k, v in labels], _fmt(value)]
        for name, labels, value in registry.iter_exposition_samples()
    ]
    doc: dict = {
        "version": SHIPMENT_VERSION,
        "member": str(member),
        "seq": int(seq),
        "scraped_at": float(scraped_at),
        "types": registry.type_names(),
        "samples": samples,
    }
    doc["checksum"] = shipment_checksum(doc)
    return doc


class TelemetryShipper:
    """Snapshots one satellite's registry into sequenced shipments.

    The hub attaches one shipper per federation member at join time and
    calls :meth:`snapshot` after every healthy sync/loose cycle, so
    telemetry rides the existing replication machinery and inherits its
    retry, circuit-breaker, and degraded-mode behaviour for free.
    """

    def __init__(
        self, registry: MetricsRegistry, *, member: str, clock: Clock
    ) -> None:
        self.registry = registry
        self.member = member
        self.clock = clock
        self.seq = 0
        self.last_shipment: dict | None = None
        self.last_bytes = 0

    def snapshot(self) -> dict:
        """A fresh shipment of the registry's current state (seq + 1)."""
        self.seq += 1
        doc = build_shipment(
            self.registry,
            member=self.member,
            seq=self.seq,
            scraped_at=self.clock.now(),
        )
        self.last_shipment = doc
        self.last_bytes = shipment_size(doc)
        return doc

    def reship(self) -> dict:
        """Redeliver the previous shipment unchanged (same ``seq``)."""
        if self.last_shipment is None:
            return self.snapshot()
        return self.last_shipment


@dataclass
class MemberTelemetry:
    """Hub-side ingest bookkeeping for one member's shipment stream.

    ``series`` accumulates the distinct sample keys the member ever
    shipped (plus the synthetic sequence series), so per-member series
    counts and staleness stay O(1) — the hub records both as gauges on
    every sync cycle, and a scan of the whole fleet history there would
    make the cycle quadratic in fleet size.
    """

    name: str
    last_seq: int = 0
    last_ingest_t: float = 0.0
    last_scraped_at: float = 0.0
    applied: int = 0
    redelivered: int = 0
    duplicates: int = 0
    series: set = field(default_factory=set, repr=False)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "last_seq": self.last_seq,
            "last_scraped_at": self.last_scraped_at,
            "applied": self.applied,
            "redelivered": self.redelivered,
            "duplicates": self.duplicates,
            "series": len(self.series),
        }


class FleetTSDB:
    """Hub-side TSDB over every member's shipped telemetry.

    Samples live in an internal :class:`MetricsHistory` (exposed as
    ``.history``) keyed by the shipped series plus a ``member`` label, so
    the full history query vocabulary works over the merged fleet; the
    fleet-scoped alert rules and the fleet dashboard query it directly.

    Dedup semantics (see module docstring): per member, ``seq`` below
    the last applied sequence is dropped as a duplicate; ``seq`` equal
    to it is a redelivery and is re-observed at the *original* ingest
    timestamp — same-timestamp samples collapse last-write-wins in
    ``MetricsHistory``, so redelivered counters neither double-count in
    ``increase()`` nor look like counter resets.
    """

    def __init__(
        self, clock: Clock, *, max_samples: int = 1024, enabled: bool = True
    ) -> None:
        self._clock = clock
        self.enabled = enabled
        self.history = MetricsHistory(
            MetricsRegistry(enabled=False), clock, max_samples=max_samples
        )
        self._members: dict[str, MemberTelemetry] = {}
        self._types: dict[str, str] = {SEQ_SERIES: "gauge"}
        self._lock = create_lock("FleetTSDB")  # guards: _members, _types

    # -- ingest ------------------------------------------------------------

    def _validate(self, shipment: Mapping) -> None:
        required = (
            "version", "member", "seq", "scraped_at",
            "types", "samples", "checksum",
        )
        missing = [k for k in required if k not in shipment]
        if missing:
            raise ShipmentError(f"shipment missing fields {missing}")
        if int(shipment["version"]) != SHIPMENT_VERSION:
            raise ShipmentError(
                f"shipment version {shipment['version']!r} unsupported "
                f"(expected {SHIPMENT_VERSION})"
            )
        if shipment["checksum"] != shipment_checksum(shipment):
            raise ShipmentError("shipment checksum mismatch (corrupt payload)")

    def ingest(self, shipment: Mapping) -> str:
        """Merge one shipment; returns the ingest outcome.

        ``"applied"`` (fresh sequence), ``"redelivered"`` (same sequence
        re-observed in place), ``"duplicate"`` (older sequence, dropped)
        or ``"disabled"``.  Raises :class:`ShipmentError` on a malformed
        or checksum-failing document — the caller counts those as
        ``corrupt`` without touching stored series.
        """
        if not self.enabled:
            return "disabled"
        self._validate(shipment)
        member = str(shipment["member"])
        seq = int(shipment["seq"])
        with self._lock:
            state = self._members.get(member)
            if state is None:
                state = self._members.setdefault(member, MemberTelemetry(member))
            if seq < state.last_seq:
                state.duplicates += 1
                return "duplicate"
            redelivery = state.applied > 0 and seq == state.last_seq
            t = state.last_ingest_t if redelivery else float(self._clock.now())
            for name, type_name in shipment["types"].items():
                self._types.setdefault(str(name), str(type_name))
            observe_key = self.history.observe_key
            for name, labels, value_text in shipment["samples"]:
                # the member label is reserved: drop any shipped one,
                # then insert ours keeping the label items sorted
                items = [
                    (str(k), str(v)) for k, v in labels if str(k) != "member"
                ]
                items.append(("member", member))
                items.sort()
                key = (str(name), tuple(items))
                observe_key(key, _decode_value(value_text), now=t)
                state.series.add(key)
            seq_key = (SEQ_SERIES, (("member", member),))
            observe_key(seq_key, float(seq), now=t)
            state.series.add(seq_key)
            if redelivery:
                state.redelivered += 1
                return "redelivered"
            state.applied += 1
            state.last_seq = seq
            state.last_ingest_t = t
            state.last_scraped_at = float(shipment["scraped_at"])
            return "applied"

    # -- queries -----------------------------------------------------------

    def _now(self, at: float | None) -> float:
        return float(self._clock.now() if at is None else at)

    def member_names(self) -> list[str]:
        return sorted(self._members)

    def member_state(self, name: str) -> MemberTelemetry | None:
        return self._members.get(name)

    def last_seq(self, name: str) -> int | None:
        state = self._members.get(name)
        return state.last_seq if state is not None else None

    def staleness(self, name: str, *, at: float | None = None) -> float | None:
        """Seconds since the member last shipped *fresh* telemetry.

        O(1) from ingest bookkeeping (``last_ingest_t`` only moves on an
        applied shipment, never a redelivery) — equal by construction to
        ``history.age_s`` over :data:`SEQ_SERIES`, which the fleet alert
        rules still evaluate, but cheap enough to record as a per-member
        gauge on every sync cycle.
        """
        state = self._members.get(name)
        if state is None or state.applied == 0:
            return None
        return self._now(at) - state.last_ingest_t

    def stale_members(
        self, max_age_s: float, *, at: float | None = None
    ) -> list[str]:
        """Members whose last fresh shipment is older than ``max_age_s``."""
        now = float(self._clock.now() if at is None else at)
        out = []
        for name in self.member_names():
            age = self.staleness(name, at=now)
            if age is not None and age > max_age_s:
                out.append(name)
        return out

    def series_count(self, name: str | None = None) -> int:
        """Stored series, fleet-wide or for one member (O(1) per member)."""
        if name is None:
            return len(self.history.series_keys())
        state = self._members.get(name)
        return len(state.series) if state is not None else 0

    def purge_member(self, name: str) -> int:
        """Forget a departed member: ingest state and every stored series."""
        with self._lock:
            self._members.pop(name, None)
        return self.history.purge_labels(member=name)

    # -- exposition --------------------------------------------------------

    def _family_of(self, sample_name: str) -> str:
        if sample_name in self._types:
            return sample_name
        for suffix in ("_bucket", "_count", "_sum"):
            if sample_name.endswith(suffix):
                base = sample_name[: -len(suffix)]
                if self._types.get(base) == "histogram":
                    return base
        return sample_name

    def render_prometheus(self) -> str:
        """Merged fleet exposition: newest value of every member series.

        Served by ``GET /fleet/metrics``.  Types come from the shipped
        ``# TYPE`` maps (first shipment wins); output order is
        deterministic (family name, then sample name and labels).
        """
        families: dict[str, list[tuple[str, tuple, float]]] = {}
        for key in self.history.series_keys():
            latest = self.history.last_sample(key)
            if latest is None:
                continue
            sample_name, labels = key
            families.setdefault(self._family_of(sample_name), []).append(
                (sample_name, labels, latest[1])
            )
        lines: list[str] = []
        for family in sorted(families):
            type_name = self._types.get(family, "untyped")
            lines.append(f"# TYPE {family} {type_name}")
            for sample_name, labels, value in sorted(
                families[family], key=lambda s: (s[0], s[1])
            ):
                lines.append(
                    f"{sample_name}{_render_labels(dict(labels))} {_fmt(value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "series": self.series_count(),
            "members": {
                name: self._members[name].to_dict()
                for name in self.member_names()
            },
        }
