"""In-process metrics registry with Prometheus text exposition.

Counters, gauges, and fixed-bucket histograms, all labelled.  The design
follows the pull model of the MPCDF/DCDB monitoring stacks: instrumented
code updates cheap in-memory children; an exporter (``GET /metrics``)
renders the whole registry on demand.

Conventions enforced at registration time (and statically by repolint's
``unregistered-metric-name`` rule): metric names are ``snake_case`` and
carry a unit suffix — ``_total`` (counters), ``_seconds``, ``_bytes``,
``_rows``.

Hot-path cost model: instrumented call sites resolve their labelled child
once (``registry.counter(...).labels(...)``) and keep the child; updates
are then a single attribute bump.  A registry constructed with
``enabled=False`` hands out shared no-op children, so the "bare" baseline
in ``bench_a11_obs_overhead`` runs the very same instrumented code.

Family/child creation is lock-protected; value updates rely on the GIL
(a lost increment under a racing live-replicator thread is acceptable
telemetry error, corruption is not possible).
"""

from __future__ import annotations

import re
from typing import Callable, Iterable, Mapping

from ..analysis.sanitizer import create_lock

__all__ = [
    "DEFAULT_BUCKETS",
    "METRIC_NAME_PATTERN",
    "METRIC_NAME_RE",
    "PROMETHEUS_CONTENT_TYPE",
    "MetricError",
    "MetricsRegistry",
    "ParsedExposition",
    "parse_prometheus_text",
]

#: Naming convention: snake_case plus a unit suffix.  Single source of
#: truth — the repolint rule checks literals against the same pattern.
METRIC_NAME_PATTERN = r"^[a-z][a-z0-9_]*_(total|seconds|bytes|rows|ratio)$"
METRIC_NAME_RE = re.compile(METRIC_NAME_PATTERN)

#: Latency buckets (seconds) sized for in-process pipeline stages.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

#: Exposition content type, per the Prometheus text-format spec.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricError(ValueError):
    """Invalid metric name, label set, or conflicting re-registration."""


def _fmt(value: float) -> str:
    # Prometheus spells special values +Inf/-Inf/NaN (int() would raise).
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


class _NoopChild:
    """Shared do-nothing child handed out by a disabled registry."""

    def labels(self, **labelvalues: str) -> "_NoopChild":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def remove(self, **labelvalues: str) -> bool:
        return False


_NOOP = _NoopChild()


class _Counter:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counters only go up; use a gauge")
        self.value += amount


class _Gauge:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class _Histogram:
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1


class _Family:
    """One metric name: type, help, label names, and labelled children."""

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: tuple[str, ...],
        type_name: str,
        child_factory: Callable[[], object],
    ) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = labelnames
        self.type_name = type_name
        self._child_factory = child_factory
        self._children: dict[tuple[str, ...], object] = {}
        self._lock = create_lock(f"Family:{name}")  # guards: _children

    def labels(self, **labelvalues: str):
        if set(labelvalues) != set(self.labelnames):
            raise MetricError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._child_factory())
        return child

    def remove(self, **labelvalues: str) -> bool:
        """Drop one labelled child; returns True when it existed.

        Partial label sets drop every child whose labels match the given
        subset — ``remove(member="siteA")`` on a ``(member, status)``
        family clears all of that member's children.
        """
        unknown = set(labelvalues) - set(self.labelnames)
        if unknown:
            raise MetricError(
                f"metric {self.name!r} has labels {self.labelnames}, "
                f"got unknown {tuple(sorted(unknown))}"
            )
        positions = [
            (i, str(labelvalues[n]))
            for i, n in enumerate(self.labelnames)
            if n in labelvalues
        ]
        with self._lock:
            doomed = [
                key for key in self._children
                if all(key[i] == v for i, v in positions)
            ]
            for key in doomed:
                del self._children[key]
        return bool(doomed)

    def _default_child(self):
        if self.labelnames:
            raise MetricError(
                f"metric {self.name!r} is labelled {self.labelnames}; "
                "call .labels(...) first"
            )
        return self.labels()

    # unlabelled convenience: family acts as its own child
    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    def items(self) -> list[tuple[dict[str, str], object]]:
        with self._lock:
            pairs = sorted(self._children.items())
        return [
            (dict(zip(self.labelnames, key)), child) for key, child in pairs
        ]


class MetricsRegistry:
    """Get-or-create registry of metric families.

    Re-registering a name is idempotent when type and labels match and an
    error when they conflict, so call sites may resolve their family
    inline without central declarations.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._families: dict[str, _Family] = {}
        self._lock = create_lock("MetricsRegistry")  # guards: _families

    # -- registration ----------------------------------------------------------

    def _family(
        self,
        name: str,
        help_text: str,
        labelnames: Iterable[str],
        type_name: str,
        child_factory: Callable[[], object],
    ):
        if not METRIC_NAME_RE.match(name):
            raise MetricError(
                f"metric name {name!r} violates the naming convention "
                f"{METRIC_NAME_PATTERN!r} (snake_case + unit suffix)"
            )
        if not self.enabled:
            return _NOOP
        names = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, help_text, names, type_name, child_factory)
                self._families[name] = family
                return family
        if family.type_name != type_name or family.labelnames != names:
            raise MetricError(
                f"metric {name!r} already registered as {family.type_name} "
                f"with labels {family.labelnames}"
            )
        return family

    def counter(self, name: str, help_text: str = "", labelnames: Iterable[str] = ()):
        return self._family(name, help_text, labelnames, "counter", _Counter)

    def gauge(self, name: str, help_text: str = "", labelnames: Iterable[str] = ()):
        return self._family(name, help_text, labelnames, "gauge", _Gauge)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Iterable[str] = (),
        *,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        bounds = tuple(sorted(float(b) for b in buckets))
        return self._family(
            name, help_text, labelnames, "histogram", lambda: _Histogram(bounds)
        )

    def remove_labels(self, name: str, **labels: str) -> bool:
        """Drop the labelled children of ``name`` matching ``labels``.

        The reverse of ``.labels(...)``: a label set that stops being
        meaningful — a federation member that left, a serving cache that
        was torn down — would otherwise be reported forever by
        ``/metrics`` at its last value.  Partial label sets clear every
        matching child.  Returns True when at least one child was
        removed; unknown metric names are a no-op (False).
        """
        with self._lock:
            family = self._families.get(name)
        if family is None:
            return False
        return family.remove(**labels)

    # -- queries ---------------------------------------------------------------

    def _find_child(self, name: str, labels: Mapping[str, str]):
        family = self._families.get(name)
        if family is None:
            return None
        for child_labels, child in family.items():
            if child_labels == {k: str(v) for k, v in labels.items()}:
                return child
        return None

    def value(self, name: str, **labels: str) -> float:
        """Current value of a counter/gauge child (0.0 when absent)."""
        child = self._find_child(name, labels)
        if child is None or not isinstance(child, (_Counter, _Gauge)):
            return 0.0
        return child.value

    def histogram_stats(self, name: str, **labels: str) -> tuple[int, float]:
        """``(count, sum)`` of a histogram child ((0, 0.0) when absent)."""
        child = self._find_child(name, labels)
        if child is None or not isinstance(child, _Histogram):
            return (0, 0.0)
        return (child.count, child.sum)

    def iter_scalar_samples(self):
        """Yield ``(sample_name, sorted label items, value)`` per child.

        Counters and gauges yield their value; a histogram yields
        synthetic ``<name>_count`` and ``<name>_sum`` series.  Iteration
        order is deterministic (family name, then label values) — this is
        the walk :class:`~repro.obs.history.MetricsHistory` snapshots.
        """
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        for family in families:
            for labels, child in family.items():
                key = tuple(sorted(labels.items()))
                if isinstance(child, _Histogram):
                    yield family.name + "_count", key, float(child.count)
                    yield family.name + "_sum", key, child.sum
                else:
                    yield family.name, key, float(child.value)  # type: ignore[attr-defined]

    def iter_exposition_samples(self):
        """Yield ``(sample_name, sorted label items, value)`` per sample.

        The full exposition walk — histogram ``_bucket`` (cumulative,
        ``le``-labelled, ``+Inf`` included), ``_sum`` and ``_count``
        series and all — producing exactly the samples
        :func:`parse_prometheus_text` recovers from
        :meth:`render_prometheus`, without the text round-trip.  The
        telemetry shipment builder walks this on every sync cycle, so it
        must stay cheap and byte-compatible with the rendered form.
        """
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        for family in families:
            for labels, child in family.items():
                base = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
                if isinstance(child, _Histogram):
                    cumulative = 0
                    for bound, n in zip(child.buckets, child.counts):
                        cumulative += n
                        key = tuple(sorted(base + (("le", _fmt(bound)),)))
                        yield family.name + "_bucket", key, float(cumulative)
                    cumulative += child.counts[-1]
                    key = tuple(sorted(base + (("le", "+Inf"),)))
                    yield family.name + "_bucket", key, float(cumulative)
                    yield family.name + "_sum", base, float(child.sum)
                    yield family.name + "_count", base, float(child.count)
                else:
                    yield family.name, base, float(child.value)  # type: ignore[attr-defined]

    def type_names(self) -> dict[str, str]:
        """Family name -> exposition type, in family-name order."""
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        return {family.name: family.type_name for family in families}

    # -- exposition ------------------------------------------------------------

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4."""
        lines: list[str] = []
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        for family in families:
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.type_name}")
            for labels, child in family.items():
                if isinstance(child, _Histogram):
                    cumulative = 0
                    for bound, n in zip(child.buckets, child.counts):
                        cumulative += n
                        le = _render_labels(labels, f'le="{_fmt(bound)}"')
                        lines.append(f"{family.name}_bucket{le} {cumulative}")
                    cumulative += child.counts[-1]
                    le = _render_labels(labels, 'le="+Inf"')
                    lines.append(f"{family.name}_bucket{le} {cumulative}")
                    label_str = _render_labels(labels)
                    lines.append(f"{family.name}_sum{label_str} {_fmt(child.sum)}")
                    lines.append(f"{family.name}_count{label_str} {child.count}")
                else:
                    label_str = _render_labels(labels)
                    lines.append(
                        f"{family.name}{label_str} {_fmt(child.value)}"  # type: ignore[attr-defined]
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict:
        """JSON-friendly dump of every family and child."""
        out: dict = {}
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        for family in families:
            values = []
            for labels, child in family.items():
                if isinstance(child, _Histogram):
                    values.append({
                        "labels": labels,
                        "count": child.count,
                        "sum": child.sum,
                        "buckets": {
                            _fmt(b): n
                            for b, n in zip(child.buckets, child.counts)
                        },
                    })
                else:
                    values.append({"labels": labels, "value": child.value})  # type: ignore[attr-defined]
            out[family.name] = {
                "type": family.type_name,
                "help": family.help,
                "values": values,
            }
        return out


class ParsedExposition:
    """Result of :func:`parse_prometheus_text` with convenience lookups."""

    def __init__(
        self,
        types: dict[str, str],
        helps: dict[str, str],
        samples: dict[tuple[str, tuple[tuple[str, str], ...]], float],
    ) -> None:
        self.types = types
        self.helps = helps
        self.samples = samples

    def value(self, sample_name: str, **labels: str) -> float | None:
        key = (sample_name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        return self.samples.get(key)

    def sample_names(self) -> set[str]:
        return {name for name, _ in self.samples}


def _parse_labels(text: str) -> tuple[tuple[str, str], ...]:
    labels: list[tuple[str, str]] = []
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        name = text[i:eq].strip().lstrip(",").strip()
        if text[eq + 1] != '"':
            raise MetricError(f"unquoted label value in {text!r}")
        j = eq + 2
        value: list[str] = []
        while text[j] != '"':
            ch = text[j]
            if ch == "\\":
                j += 1
                esc = text[j]
                value.append({"\\": "\\", '"': '"', "n": "\n"}.get(esc, esc))
            else:
                value.append(ch)
            j += 1
        labels.append((name, "".join(value)))
        i = j + 1
    return tuple(sorted(labels))


def parse_prometheus_text(text: str) -> ParsedExposition:
    """Strict-enough parser of the text format, for round-trip tests."""
    types: dict[str, str] = {}
    helps: dict[str, str] = {}
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, type_name = rest.partition(" ")
            types[name] = type_name.strip()
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            helps[name] = help_text
            continue
        if line.startswith("#"):
            continue
        if "{" in line:
            name = line[: line.index("{")]
            label_text = line[line.index("{") + 1 : line.rindex("}")]
            labels = _parse_labels(label_text)
            value_text = line[line.rindex("}") + 1 :].strip()
        else:
            name, _, value_text = line.partition(" ")
            labels = ()
        if value_text == "+Inf":
            value = float("inf")
        elif value_text == "-Inf":
            value = float("-inf")
        elif value_text == "NaN":
            value = float("nan")
        else:
            value = float(value_text)
        key = (name, labels)
        if key in samples:
            raise MetricError(f"duplicate sample {key!r}")
        samples[key] = value
    return ParsedExposition(types, helps, samples)
