"""Metrics history: a ring-buffer mini-TSDB over the metrics registry.

``GET /metrics`` exposes the registry's *current* values; alerting on
replication-lag growth or sync-failure burn rates needs the values *over
time*.  :class:`MetricsHistory` snapshots every counter/gauge (and each
histogram's ``_count``/``_sum``) whenever the federation hub completes a
sync cycle or the REST exporter is scraped, and answers the small query
vocabulary the SLO engine and the monitor sparklines need: ``last()``,
``age_s()``, ``delta()``, ``increase()``, ``rate()`` and
``quantile_over_time()``, all with partial label matching (querying
``federation_member_syncs_total`` with only ``member=...`` sums over the
``status`` children).

Retention reuses the aggregation-level machinery from
:mod:`repro.aggregation.levels`: a retention ladder is an
:class:`~repro.aggregation.levels.AggregationLevelSet` over *sample age*
in seconds.  The first tier (``lo == 0``) keeps raw samples; each older
tier keeps one sample per ``lo`` seconds of history; samples older than
the ladder's span are dropped.  Downsampling keeps the *newest* sample in
each bucket, so the compaction is deterministic under a
:class:`~repro.obs.clock.FakeClock` and history-backed renders stay
byte-identical across runs.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..aggregation.levels import AggregationLevel, AggregationLevelSet
from .clock import Clock
from .metrics import MetricsRegistry

__all__ = ["DEFAULT_RETENTION", "MetricsHistory", "SeriesKey"]

#: ``(sample_name, sorted ((label, value), ...))`` — one stored series.
SeriesKey = tuple[str, tuple[tuple[str, str], ...]]

#: Default retention ladder: 5 minutes raw, one sample per minute out to
#: an hour, one per 10 minutes out to a day.  Ages are in seconds.
DEFAULT_RETENTION = AggregationLevelSet(
    name="history_retention",
    field="age_s",
    unit="seconds",
    levels=(
        AggregationLevel("raw", 0.0, 300.0),
        AggregationLevel("per-minute", 300.0, 3600.0),
        AggregationLevel("per-10-minute", 3600.0, 86400.0),
    ),
)


class _Series:
    """Samples for one ``(name, labels)`` child, oldest first."""

    __slots__ = ("samples", "last_changed")

    def __init__(self) -> None:
        self.samples: list[tuple[float, float]] = []
        self.last_changed: float = 0.0

    def append(self, t: float, value: float) -> None:
        if self.samples:
            last_t, last_v = self.samples[-1]
            if value != last_v:
                self.last_changed = t
            if t == last_t:
                self.samples[-1] = (t, value)
                return
        else:
            self.last_changed = t
        self.samples.append((t, value))

    def last(self) -> tuple[float, float] | None:
        return self.samples[-1] if self.samples else None


def _tier_width(level: AggregationLevel) -> float:
    """Bucket width of a retention tier: its ``lo`` (0 == keep raw)."""
    return level.lo


class MetricsHistory:
    """Ring-buffer history of registry samples with downsampling tiers.

    Parameters
    ----------
    registry:
        The registry to snapshot; :meth:`record` walks every child.
    clock:
        Time source for sample timestamps and query anchors — the same
        injectable clock the tracer uses, so histories built under
        :class:`~repro.obs.clock.FakeClock` are fully deterministic.
    retention:
        Age-tier ladder (see module docstring).  The first tier must
        start at age 0.
    max_samples:
        Hard per-series cap; a series pushed past it is compacted and,
        if still over, trimmed oldest-first.  A backstop against clocks
        that never move (every FakeClock read may return the same time).
    enabled:
        When False, :meth:`record` is a no-op.  The a12 benchmark's
        baseline arm disables history on an otherwise identical hub.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        clock: Clock,
        *,
        retention: AggregationLevelSet = DEFAULT_RETENTION,
        max_samples: int = 1024,
        enabled: bool = True,
    ) -> None:
        lo, _ = retention.span()
        if lo != 0.0:
            raise ValueError("retention ladder must start at age 0 (raw tier)")
        self._registry = registry
        self._clock = clock
        self.retention = retention
        self.max_samples = max_samples
        self.enabled = enabled
        self._series: dict[SeriesKey, _Series] = {}
        self._records = 0

    @property
    def clock(self) -> Clock:
        return self._clock

    # -- recording ---------------------------------------------------------

    def record(self, *, now: float | None = None) -> int:
        """Snapshot every registry child; returns series touched.

        Called by :meth:`FederationHub.sync`, :meth:`FederationHub.ship_loose`
        and the ``/metrics`` scrape handler; safe to call from anywhere
        else (an extra sample is just an extra sample).
        """
        if not self.enabled:
            return 0
        t = float(self._clock.now() if now is None else now)
        n = 0
        for name, labels, value in self._registry.iter_scalar_samples():
            series = self._series.get((name, labels))
            if series is None:
                series = self._series.setdefault((name, labels), _Series())
            series.append(t, value)
            if len(series.samples) > self.max_samples:
                self._compact_series(series, t)
                del series.samples[: max(0, len(series.samples) - self.max_samples)]
            n += 1
        self._records += 1
        if self._records % 16 == 0:
            self.compact(now=t)
        return n

    def observe(self, name: str, value: float, *, now: float | None = None, **labels: str) -> None:
        """Append one sample to an explicit series (no registry child).

        For event-shaped data — one sample per job, per request, per
        document — that has no natural counter/gauge in the registry but
        should still be queryable with the history's window vocabulary
        (the analytics stage records one efficiency score per job this
        way).  Two observations at the same clock reading collapse to the
        newer value, matching :meth:`record`; pair with an auto-advancing
        :class:`~repro.obs.clock.FakeClock` when sample identity matters.
        """
        if not self.enabled:
            return
        key: SeriesKey = (
            name, tuple(sorted((k, str(v)) for k, v in labels.items()))
        )
        self.observe_key(key, value, now=now)

    def observe_key(
        self, key: SeriesKey, value: float, *, now: float | None = None
    ) -> None:
        """:meth:`observe` with a prebuilt series key.

        The fleet TSDB merge path calls this once per shipped sample on
        every sync cycle; the caller guarantees the key's label items
        are already ``(name, value)`` string pairs in sorted order.
        """
        if not self.enabled:
            return
        t = float(self._clock.now() if now is None else now)
        series = self._series.get(key)
        if series is None:
            series = self._series.setdefault(key, _Series())
        series.append(t, float(value))
        if len(series.samples) > self.max_samples:
            self._compact_series(series, t)
            del series.samples[: max(0, len(series.samples) - self.max_samples)]

    def compact(self, *, now: float | None = None) -> None:
        """Apply the retention ladder to every series."""
        t = float(self._clock.now() if now is None else now)
        for series in self._series.values():
            self._compact_series(series, t)

    def _compact_series(self, series: _Series, now: float) -> None:
        _, horizon = self.retention.span()
        tiers = {l.label: _tier_width(l) for l in self.retention.levels}
        kept: list[tuple[float, float]] = []
        seen: set[tuple[str, int]] = set()
        for t, v in reversed(series.samples):  # newest first: keep newest per bucket
            age = now - t
            if age >= horizon:
                break
            label = self.retention.level_of(age)
            if label == self.retention.OUTSIDE:
                continue
            width = tiers[label]
            if width <= 0:
                kept.append((t, v))
                continue
            bucket = (label, int(t // width))
            if bucket in seen:
                continue
            seen.add(bucket)
            kept.append((t, v))
        kept.reverse()
        series.samples = kept

    # -- lookup ------------------------------------------------------------

    def _now(self, at: float | None) -> float:
        return float(self._clock.now() if at is None else at)

    def _matches(self, name: str, labels: Mapping[str, str]) -> list[_Series]:
        """Series for ``name`` whose labels are a superset of ``labels``."""
        want = {(k, str(v)) for k, v in labels.items()}
        return [
            series
            for (sname, skey), series in sorted(self._series.items())
            if sname == name and want <= set(skey)
        ]

    def series_keys(self, name: str | None = None) -> list[SeriesKey]:
        keys = sorted(self._series)
        if name is None:
            return keys
        return [k for k in keys if k[0] == name]

    def last_sample(self, key: SeriesKey) -> tuple[float, float] | None:
        """Newest ``(t, value)`` of one exact series (None when absent).

        Unlike :meth:`last`, no partial-label pooling: the key must match
        a stored series exactly (as returned by :meth:`series_keys`).
        """
        series = self._series.get(key)
        return series.last() if series is not None else None

    def purge_labels(self, **labels: str) -> int:
        """Drop every series whose labels are a superset of ``labels``.

        The history-side counterpart of registry ``remove_labels``: when
        a federation member leaves, its stored series would otherwise
        keep matching partial-label queries forever — a phantom member
        inflating ``quantile_over_time`` pools and ``last()`` sums.
        Returns the number of series dropped; at least one label is
        required (an empty filter would silently drop everything).
        """
        if not labels:
            raise ValueError("purge_labels() requires at least one label")
        want = {(k, str(v)) for k, v in labels.items()}
        doomed = [key for key in self._series if want <= set(key[1])]
        for key in doomed:
            del self._series[key]
        return len(doomed)

    def samples(self, name: str, **labels: str) -> list[tuple[float, float]]:
        """All stored ``(t, value)`` samples of the matching series.

        With partial labels, samples from every matching child are pooled
        and sorted by time (sparklines over an exact child pass the full
        label set and get that one series back untouched).
        """
        out: list[tuple[float, float]] = []
        for series in self._matches(name, labels):
            out.extend(series.samples)
        out.sort()
        return out

    def last(self, name: str, **labels: str) -> float | None:
        """Sum of the latest values across matching series; None if none."""
        found = False
        total = 0.0
        for series in self._matches(name, labels):
            latest = series.last()
            if latest is not None:
                found = True
                total += latest[1]
        return total if found else None

    def age_s(self, name: str, *, at: float | None = None, **labels: str) -> float | None:
        """Seconds since any matching series last *changed* value.

        The absence/staleness signal: a member whose lag gauge keeps
        getting re-set to the same value is still being synced; one whose
        series never changes (or never appears) has gone quiet.
        """
        changed = [
            s.last_changed for s in self._matches(name, labels) if s.samples
        ]
        if not changed:
            return None
        return self._now(at) - max(changed)

    # -- range queries -----------------------------------------------------

    def _window(
        self, series: _Series, window_s: float, at: float | None
    ) -> tuple[list[tuple[float, float]], tuple[float, float] | None]:
        """``(samples inside the window, newest sample at/before it)``."""
        t0 = self._now(at) - window_s
        inside: list[tuple[float, float]] = []
        before: tuple[float, float] | None = None
        for t, v in series.samples:
            if t < t0:
                before = (t, v)
            else:
                inside.append((t, v))
        return inside, before

    def delta(
        self, name: str, window_s: float, *, at: float | None = None, **labels: str
    ) -> float:
        """Signed change over the window, summed across matching series.

        Gauge semantics: last value minus the value at the window start
        (the newest sample at or before it, falling back to the first
        in-window sample).
        """
        total = 0.0
        for series in self._matches(name, labels):
            inside, before = self._window(series, window_s, at)
            if not inside:
                continue
            baseline = before[1] if before is not None else inside[0][1]
            total += inside[-1][1] - baseline
        return total

    def increase(
        self, name: str, window_s: float, *, at: float | None = None, **labels: str
    ) -> float | None:
        """Counter-reset-aware increase over the window, summed across
        matching series: negative steps are treated as the counter having
        restarted from zero, matching PromQL ``increase()``.

        Returns None when no matching series holds a computable step —
        no samples, or only a single sample with nothing before the
        window to difference against.  "No data" and "no growth" are
        different answers, and the alert engine treats them differently.
        """
        total = 0.0
        computed = False
        for series in self._matches(name, labels):
            inside, before = self._window(series, window_s, at)
            prev = before[1] if before is not None else None
            for _, v in inside:
                if prev is not None:
                    step = v - prev
                    total += step if step >= 0 else v
                    computed = True
                prev = v
        return total if computed else None

    def rate(
        self, name: str, window_s: float, *, at: float | None = None, **labels: str
    ) -> float | None:
        """Per-second :meth:`increase` over the window (None = no data)."""
        if window_s <= 0:
            raise ValueError("rate() needs a positive window")
        increase = self.increase(name, window_s, at=at, **labels)
        return None if increase is None else increase / window_s

    def quantile_over_time(
        self,
        q: float,
        name: str,
        window_s: float,
        *,
        at: float | None = None,
        **labels: str,
    ) -> float | None:
        """Quantile of all in-window values pooled across matching series
        (linear interpolation); None when the window holds no samples."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        values: list[float] = []
        for series in self._matches(name, labels):
            inside, _ = self._window(series, window_s, at)
            values.extend(v for _, v in inside)
        if not values:
            return None
        values.sort()
        pos = q * (len(values) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(values) - 1)
        return values[lo] + (values[hi] - values[lo]) * (pos - lo)
