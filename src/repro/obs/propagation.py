"""Cross-member trace propagation and federated trace assembly.

A federation splits one logical operation — ingest a job record, binlog
it, pump it over a replication channel, apply it on the hub, aggregate —
across two independent instances, each with its own
:class:`~repro.obs.trace.Tracer`.  This module carries the trace across
that boundary:

- :class:`TraceContext` is the wire format: the satellite's tracer
  exports its innermost live span (``tracer.current_context()``), the
  binlog records it per event at append time, and replication (tight
  deltas, dead letters, loose dumps) ships it to the hub.
- Hub-side spans opened with ``tracer.span(..., remote=ctx)`` *re-parent*
  under the shipped context: they join the satellite's trace id and
  point at the satellite span through its qualified id
  (``<instance>#<span id>``).
- :class:`FederatedTraceAssembler` stitches the spans of any number of
  tracers (or merged/parsed exports) back into whole per-trace trees and
  renders them deterministically — under a
  :class:`~repro.obs.clock.FakeClock` two identical runs render
  byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from .trace import SpanRecord, Tracer, qualified_id

__all__ = ["TraceContext", "FederatedTraceAssembler"]


@dataclass(frozen=True)
class TraceContext:
    """Propagation context for one live span.

    ``trace_id`` names the whole federated trace; ``span_id`` /
    ``instance`` name the span that was live when the context was
    captured (the future remote parent of any re-parented span).
    """

    trace_id: str
    span_id: int
    instance: str

    @property
    def qualified_span(self) -> str:
        return qualified_id(self.instance, self.span_id)

    def to_payload(self) -> dict[str, Any]:
        """JSON-safe dict shipped inside loose dumps and dead letters."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "instance": self.instance,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any] | None) -> "TraceContext | None":
        if not payload:
            return None
        try:
            return cls(
                trace_id=str(payload["trace_id"]),
                span_id=int(payload["span_id"]),
                instance=str(payload["instance"]),
            )
        except (KeyError, TypeError, ValueError):
            return None


class FederatedTraceAssembler:
    """Stitch spans from several tracers into per-trace trees.

    Feed it tracers and/or iterables of :class:`SpanRecord` (e.g. a
    parsed JSONL export); every span is grouped by ``trace_id`` and
    linked to its parent — the local ``parent_id`` within the same
    instance, or the cross-instance ``remote_parent`` edge recorded by
    re-parented spans.
    """

    def __init__(self, *sources: "Tracer | Iterable[SpanRecord]") -> None:
        self._spans: list[SpanRecord] = []
        for source in sources:
            self.add(source)

    def add(self, source: "Tracer | Iterable[SpanRecord]") -> None:
        records = source.finished if isinstance(source, Tracer) else source
        self._spans.extend(records)

    # -- queries ---------------------------------------------------------------

    def trace_ids(self) -> list[str]:
        """Distinct trace ids, in first-seen order."""
        seen: dict[str, None] = {}
        for span in self._spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def spans_of(self, trace_id: str) -> list[SpanRecord]:
        """All spans of one trace, ordered deterministically."""
        spans = [s for s in self._spans if s.trace_id == trace_id]
        spans.sort(key=lambda s: (s.start_s, s.instance, s.span_id))
        return spans

    def reparented_spans(self, trace_id: str) -> list[SpanRecord]:
        """Spans of the trace that joined it through a remote context."""
        return [
            s for s in self.spans_of(trace_id) if s.remote_parent is not None
        ]

    def instances_of(self, trace_id: str) -> list[str]:
        return sorted({s.instance for s in self.spans_of(trace_id)})

    def assemble(self, trace_id: str) -> list[tuple[SpanRecord, int]]:
        """The trace as a depth-first list of ``(span, depth)``.

        Roots are spans whose parent (local or remote) is absent from the
        collected set — a trace whose satellite export was not merged
        still assembles, with the hub spans as roots.
        """
        spans = self.spans_of(trace_id)
        by_qid = {s.qualified_id: s for s in spans}
        children: dict[str | None, list[SpanRecord]] = {}
        for span in spans:
            parent_qid = None
            if span.remote_parent is not None:
                if span.remote_parent in by_qid:
                    parent_qid = span.remote_parent
            elif span.parent_id is not None:
                local = qualified_id(span.instance, span.parent_id)
                if local in by_qid:
                    parent_qid = local
            children.setdefault(parent_qid, []).append(span)

        out: list[tuple[SpanRecord, int]] = []

        def walk(parent_qid: str | None, depth: int) -> None:
            for span in children.get(parent_qid, ()):
                out.append((span, depth))
                walk(span.qualified_id, depth + 1)

        walk(None, 0)
        return out

    # -- rendering -------------------------------------------------------------

    def render(self, trace_id: str) -> str:
        """One trace as an indented tree (deterministic under FakeClock)."""
        rows = self.assemble(trace_id)
        lines = [
            f"trace {trace_id} "
            f"({len(rows)} spans across {len(self.instances_of(trace_id))} "
            f"instances)"
        ]
        for span, depth in rows:
            marker = "<=" if span.remote_parent is not None else "--"
            attrs = ""
            if span.attrs:
                attrs = " " + ",".join(
                    f"{k}={span.attrs[k]}" for k in sorted(span.attrs)
                )
            lines.append(
                f"  {'  ' * depth}{marker} {span.name} "
                f"[{span.qualified_id}] {span.duration_s * 1000:.3f} ms"
                + (f" (from {span.remote_parent})" if span.remote_parent else "")
                + attrs
            )
        return "\n".join(lines)

    def render_all(self) -> str:
        """Every collected trace, cross-instance traces first."""
        ids = sorted(
            self.trace_ids(),
            key=lambda tid: (-len(self.instances_of(tid)), tid),
        )
        if not ids:
            return "(no traces collected)"
        return "\n".join(self.render(tid) for tid in ids)
