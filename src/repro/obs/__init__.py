"""Federation-wide telemetry: metrics registry, span tracing, clocks.

One :class:`Observability` bundle travels with each
:class:`~repro.core.federation.XdmodInstance` — the registry collects
labelled counters/gauges/histograms, the tracer collects nested spans,
and the shared injectable clock keeps ``repro/core/`` free of wall-clock
reads (see :mod:`repro.obs.clock`).  ``GET /metrics`` on the REST server
renders the registry in Prometheus text format; ``xdmod-repro obs``
dumps the same data from the CLI.
"""

from __future__ import annotations

from .alerts import (
    DEFAULT_ALERT_RULES,
    GLOBAL_SCOPE,
    AlertEngine,
    AlertRule,
    AlertState,
    alert_rule,
)
from .anomaly import Anomaly, AnomalyDetector, JobScore
from .clock import Clock, FakeClock, MonotonicClock
from .fleet import (
    SHIPMENT_VERSION,
    FleetTSDB,
    MemberTelemetry,
    ShipmentError,
    TelemetryShipper,
    build_shipment,
    shipment_checksum,
    shipment_size,
)
from .history import DEFAULT_RETENTION, MetricsHistory
from .metrics import (
    DEFAULT_BUCKETS,
    METRIC_NAME_PATTERN,
    METRIC_NAME_RE,
    PROMETHEUS_CONTENT_TYPE,
    MetricError,
    MetricsRegistry,
    ParsedExposition,
    parse_prometheus_text,
)
from .propagation import FederatedTraceAssembler, TraceContext
from .trace import SpanRecord, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_RETENTION",
    "METRIC_NAME_PATTERN",
    "METRIC_NAME_RE",
    "PROMETHEUS_CONTENT_TYPE",
    "SHIPMENT_VERSION",
    "AlertEngine",
    "AlertRule",
    "AlertState",
    "Anomaly",
    "AnomalyDetector",
    "Clock",
    "DEFAULT_ALERT_RULES",
    "FakeClock",
    "FederatedTraceAssembler",
    "FleetTSDB",
    "GLOBAL_SCOPE",
    "JobScore",
    "MemberTelemetry",
    "MetricError",
    "MetricsHistory",
    "MetricsRegistry",
    "MonotonicClock",
    "Observability",
    "ParsedExposition",
    "ShipmentError",
    "SpanRecord",
    "TelemetryShipper",
    "TraceContext",
    "Tracer",
    "alert_rule",
    "build_shipment",
    "parse_prometheus_text",
    "shipment_checksum",
    "shipment_size",
]


class Observability:
    """Registry + tracer + clock, wired together.

    Pass ``Observability(clock=FakeClock(...))`` in tests for
    deterministic timings; ``Observability.disabled()`` keeps every
    instrumented call site live but makes each update a no-op (the
    baseline configuration in ``bench_a11_obs_overhead``).
    """

    def __init__(
        self,
        *,
        clock: Clock | None = None,
        enabled: bool = True,
        max_spans: int = 10000,
        name: str = "",
    ) -> None:
        self.clock = clock if clock is not None else MonotonicClock()
        self.registry = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(
            self.clock, enabled=enabled, max_spans=max_spans, name=name
        )
        self.history = MetricsHistory(
            self.registry, self.clock, enabled=enabled
        )
        self.tracer.bind_metrics(self.registry)

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    @classmethod
    def default(cls) -> "Observability":
        """Enabled, monotonic wall clock — production wiring."""
        return cls()

    @classmethod
    def disabled(cls) -> "Observability":
        """Instrumentation resolves to no-ops; the baseline bundle."""
        return cls(enabled=False)
