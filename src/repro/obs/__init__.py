"""Federation-wide telemetry: metrics registry, span tracing, clocks.

One :class:`Observability` bundle travels with each
:class:`~repro.core.federation.XdmodInstance` — the registry collects
labelled counters/gauges/histograms, the tracer collects nested spans,
and the shared injectable clock keeps ``repro/core/`` free of wall-clock
reads (see :mod:`repro.obs.clock`).  ``GET /metrics`` on the REST server
renders the registry in Prometheus text format; ``xdmod-repro obs``
dumps the same data from the CLI.
"""

from __future__ import annotations

from .clock import Clock, FakeClock, MonotonicClock
from .metrics import (
    DEFAULT_BUCKETS,
    METRIC_NAME_PATTERN,
    METRIC_NAME_RE,
    PROMETHEUS_CONTENT_TYPE,
    MetricError,
    MetricsRegistry,
    ParsedExposition,
    parse_prometheus_text,
)
from .trace import SpanRecord, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "METRIC_NAME_PATTERN",
    "METRIC_NAME_RE",
    "PROMETHEUS_CONTENT_TYPE",
    "Clock",
    "FakeClock",
    "MetricError",
    "MetricsRegistry",
    "MonotonicClock",
    "Observability",
    "ParsedExposition",
    "SpanRecord",
    "Tracer",
    "parse_prometheus_text",
]


class Observability:
    """Registry + tracer + clock, wired together.

    Pass ``Observability(clock=FakeClock(...))`` in tests for
    deterministic timings; ``Observability.disabled()`` keeps every
    instrumented call site live but makes each update a no-op (the
    baseline configuration in ``bench_a11_obs_overhead``).
    """

    def __init__(
        self,
        *,
        clock: Clock | None = None,
        enabled: bool = True,
        max_spans: int = 10000,
    ) -> None:
        self.clock = clock if clock is not None else MonotonicClock()
        self.registry = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(self.clock, enabled=enabled, max_spans=max_spans)

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    @classmethod
    def default(cls) -> "Observability":
        """Enabled, monotonic wall clock — production wiring."""
        return cls()

    @classmethod
    def disabled(cls) -> "Observability":
        """Instrumentation resolves to no-ops; the baseline bundle."""
        return cls(enabled=False)
