"""Injectable clocks for telemetry.

Instrumented code never reads ``time.monotonic`` directly — it asks the
:class:`Clock` handed to it.  Production wiring uses
:class:`MonotonicClock`; tests inject :class:`FakeClock` so spans and
histograms come out byte-identical across runs.  Keeping the only
wall-clock read in this module (outside ``repro/core/``) is what lets the
replication layer stay clean under repolint's
``nondeterminism-in-replication`` rule without suppressions.
"""

from __future__ import annotations

import time


class Clock:
    """Monotonic-seconds time source interface."""

    def now(self) -> float:
        raise NotImplementedError


class MonotonicClock(Clock):
    """The real thing: wraps :func:`time.monotonic`."""

    def now(self) -> float:
        return time.monotonic()


class FakeClock(Clock):
    """Deterministic clock for tests.

    ``advance`` moves time explicitly; ``auto_advance`` ticks the clock
    by a fixed step on every :meth:`now` read, so loops that poll the
    clock for a deadline (``LiveReplicator.wait_until_current``)
    terminate without wall-clock involvement.
    """

    def __init__(self, start: float = 0.0, *, auto_advance: float = 0.0) -> None:
        self._now = float(start)
        self.auto_advance = float(auto_advance)

    def now(self) -> float:
        value = self._now
        self._now += self.auto_advance
        return value

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("FakeClock cannot run backwards")
        self._now += dt
