"""Job-level anomaly detection over the metrics-history TSDB.

The summarization stage (:mod:`repro.analytics.summarize`) feeds one
efficiency-score sample per job into the
``analytics_job_efficiency_ratio`` history series, labelled by member and
application.  :class:`AnomalyDetector` builds *per-application baselines*
from those series — the median and a robust spread estimated from the
interquartile range, both answered by
:meth:`~repro.obs.history.MetricsHistory.quantile_over_time` — and flags
jobs whose score sits far below their application's baseline (a robust
z-score / MAD-style test: outliers cannot drag their own baseline, so a
couple of pathological jobs stand out against dozens of nominal peers).

Baselines pool samples across every member, which is the federation-wide
payoff: a job that looks plausible against its own site's three GROMACS
runs can still be an outlier against the federation's three hundred.

Everything is clocked by the history's injectable clock, so detection
under a :class:`~repro.obs.clock.FakeClock` is fully deterministic.
Detected anomalies feed ``analytics_anomalies_total{member,kind}``
(counted once per job) and the ``analytics_anomalies_open_rows`` gauge,
which the shipped ``analytics_anomaly_rate_high`` SLO rule and
``GET /health``'s ``anomalies_open`` field read back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .metrics import MetricsRegistry

__all__ = ["Anomaly", "AnomalyDetector", "JobScore", "SCORE_SERIES"]

#: The per-job efficiency-score series the summarizer records (one
#: sample per job, labels ``member`` and ``app``).
SCORE_SERIES = "analytics_job_efficiency_ratio"

#: Tags that name a recognizable pathology, in classification order.
_KIND_TAGS = ("memory-bound", "idle-tail", "io-heavy", "low-cpu")

#: IQR -> standard-deviation conversion for a normal distribution.
_IQR_TO_SIGMA = 1.349


@dataclass(frozen=True)
class JobScore:
    """One job's federated analytics row, as the detector consumes it.

    ``n_samples`` is the number of timeseries samples behind the score;
    0 means unknown (scores built by hand), which the detector judges
    normally.
    """

    member: str
    resource: str
    job_id: int
    application: str
    score: float
    tags: tuple[str, ...] = ()
    n_samples: int = 0


@dataclass(frozen=True)
class Anomaly:
    """One flagged job with the evidence behind the flag."""

    job: JobScore
    kind: str
    baseline: float
    sigma: float
    zscore: float

    def to_dict(self) -> dict:
        return {
            "member": self.job.member,
            "resource": self.job.resource,
            "job_id": self.job.job_id,
            "application": self.job.application,
            "score": self.job.score,
            "kind": self.kind,
            "baseline": self.baseline,
            "sigma": self.sigma,
            "zscore": self.zscore,
        }


def classify_kind(tags: Sequence[str]) -> str:
    """Anomaly kind from the summary tags (first recognized pathology)."""
    for tag in _KIND_TAGS:
        if tag in tags:
            return tag
    return "low-efficiency"


class AnomalyDetector:
    """Robust per-application outlier detection over job scores.

    Parameters
    ----------
    obs:
        Observability bundle whose history holds the score series and
        whose registry receives the anomaly metrics.
    threshold:
        Minimum robust z-score (baseline drop over sigma) to flag.
    min_drop:
        Minimum absolute score drop below the baseline to flag —
        guards against tiny-spread applications where the z-score alone
        would promote noise into anomalies.
    min_baseline:
        Minimum samples an application's series must hold before any of
        its jobs can be judged (no baseline, no verdict).
    sigma_floor:
        Lower bound on the robust spread estimate; a fleet of
        near-identical scores would otherwise make sigma collapse to 0.
    min_samples:
        Scores backed by fewer timeseries samples than this are never
        judged: a two-sample job's mean is a sampling artifact (its
        warm-up ramp), not evidence of inefficiency.  Scores with
        unknown sample counts (``n_samples == 0``) are judged normally.
    window_s:
        History window the baseline quantiles are computed over.
    """

    def __init__(
        self,
        obs,
        *,
        threshold: float = 3.5,
        min_drop: float = 0.15,
        min_baseline: int = 4,
        sigma_floor: float = 0.05,
        min_samples: int = 6,
        window_s: float = 86400.0,
    ) -> None:
        self.obs = obs
        self.threshold = threshold
        self.min_drop = min_drop
        self.min_baseline = min_baseline
        self.sigma_floor = sigma_floor
        self.min_samples = min_samples
        self.window_s = window_s
        self.open_anomalies: tuple[Anomaly, ...] = ()
        self._seen: set[tuple[str, str, int]] = set()
        self._flagged: set[tuple[str, str, int]] = set()
        self._members: set[str] = set()
        registry: MetricsRegistry = obs.registry
        self._c_anomalies = registry.counter(
            "analytics_anomalies_total",
            "Jobs flagged as deviating from their application baseline",
            ("member", "kind"),
        )
        self._g_open = registry.gauge(
            "analytics_anomalies_open_rows",
            "Anomalous jobs flagged by the most recent detection pass",
        )

    # -- baselines -----------------------------------------------------------

    def ingest(self, scores: Iterable[JobScore]) -> int:
        """Feed scores not yet seen into the history; returns new samples.

        Idempotent per ``(member, resource, job_id)``: repeated detection
        passes over the same federated rows do not double-weight the
        baselines.
        """
        history = self.obs.history
        n = 0
        for score in scores:
            key = (score.member, score.resource, score.job_id)
            if key in self._seen:
                continue
            self._seen.add(key)
            history.observe(
                SCORE_SERIES, score.score,
                member=score.member, app=score.application,
            )
            n += 1
        return n

    def baseline(self, application: str) -> tuple[float, float] | None:
        """``(median, sigma)`` for one application, or None if too thin.

        Both numbers come from the history's quantile queries: the median
        directly, sigma from the interquartile range (floored).
        """
        history = self.obs.history
        samples = history.samples(SCORE_SERIES, app=application)
        if len(samples) < self.min_baseline:
            return None
        median = history.quantile_over_time(
            0.5, SCORE_SERIES, self.window_s, app=application
        )
        q25 = history.quantile_over_time(
            0.25, SCORE_SERIES, self.window_s, app=application
        )
        q75 = history.quantile_over_time(
            0.75, SCORE_SERIES, self.window_s, app=application
        )
        if median is None or q25 is None or q75 is None:
            return None
        sigma = max((q75 - q25) / _IQR_TO_SIGMA, self.sigma_floor)
        return median, sigma

    # -- detection -----------------------------------------------------------

    def _ensure_counter_children(self, members: Iterable[str]) -> None:
        """Pre-register zero-valued counter children for new members.

        A counter child born by its own first ``inc()`` has no recorded
        zero baseline, so windowed ``increase()`` queries cannot see the
        0 -> 1 step that is the whole point of the
        ``analytics_anomaly_rate_high`` rule.  Creating the children at 0
        and snapshotting the history *before* any increment makes the
        first flag visible to the alert engine.
        """
        new = [m for m in members if m not in self._members]
        if not new:
            return
        for member in new:
            self._members.add(member)
            for kind in (*_KIND_TAGS, "low-efficiency"):
                self._c_anomalies.labels(member=member, kind=kind)
        self.obs.history.record()

    def detect(self, scores: Iterable[JobScore]) -> list[Anomaly]:
        """Flag jobs deviating from their application baseline.

        Ingests any unseen scores first, then judges every score against
        its application's robust baseline.  Returns the anomalies found
        this pass (also kept on :attr:`open_anomalies`); newly flagged
        jobs increment ``analytics_anomalies_total`` exactly once.
        """
        score_list = list(scores)
        self._ensure_counter_children({s.member for s in score_list})
        self.ingest(score_list)
        anomalies: list[Anomaly] = []
        for score in score_list:
            if 0 < score.n_samples < self.min_samples:
                continue
            base = self.baseline(score.application)
            if base is None:
                continue
            median, sigma = base
            drop = median - score.score
            if drop < self.min_drop:
                continue
            zscore = drop / sigma
            if zscore < self.threshold:
                continue
            kind = classify_kind(score.tags)
            anomalies.append(
                Anomaly(
                    job=score, kind=kind,
                    baseline=median, sigma=sigma, zscore=zscore,
                )
            )
            key = (score.member, score.resource, score.job_id)
            if key not in self._flagged:
                self._flagged.add(key)
                self._c_anomalies.labels(member=score.member, kind=kind).inc()
        anomalies.sort(key=lambda a: (a.job.score, a.job.member, a.job.job_id))
        self.open_anomalies = tuple(anomalies)
        self._g_open.set(len(anomalies))
        return anomalies
