"""Declarative SLO alerting over the metrics history.

The federation hub's operators care about a handful of conditions: a
member falling behind (lag), poison events piling up (dead letters), a
circuit breaker flapping, syncs failing faster than they succeed, and a
member going quiet entirely.  Each is an :class:`AlertRule` — a small
declarative record naming a metric in the
:class:`~repro.obs.history.MetricsHistory` and how to judge it — and the
:class:`AlertEngine` runs the classic inactive → pending → firing →
resolved state machine over every ``(rule, member)`` pair.

Rule kinds:

``threshold``
    Compare the latest value (``history.last``) against ``threshold``.
``absence``
    Fire when the metric has not *changed* for ``max_age_s`` seconds (or
    has never been seen) — the staleness signal for a member gone quiet.
``burn_rate``
    Compare a windowed aggregate against ``threshold``: counter
    ``increase`` by default, signed gauge ``delta`` with
    ``func="delta"``, and a failure *ratio* when ``denominator`` names a
    second metric (numerator and denominator both use counter-increase
    semantics; an empty window denominates to a ratio of 0).

Rule ids are the stable operator-facing contract: dashboards, runbooks
and call sites refer to rules via :func:`alert_rule`, and repolint's
``unknown-alert-rule-id`` rule statically rejects literals that name no
rule in :data:`DEFAULT_ALERT_RULES`.

Everything is clocked by the history's injectable clock, so a
fault-injected federation under a :class:`~repro.obs.clock.FakeClock`
fires alerts deterministically.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from .history import MetricsHistory

__all__ = [
    "AlertEngine",
    "AlertRule",
    "AlertState",
    "DEFAULT_ALERT_RULES",
    "GLOBAL_SCOPE",
    "alert_rule",
]

#: Pseudo-member that global-scope rules are evaluated under: conditions
#: like the API error ratio describe the hub as a whole, not one member.
GLOBAL_SCOPE = "_global"

_OPS: dict[str, Callable[[float, float], bool]] = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
}


@dataclass(frozen=True)
class AlertRule:
    """One declarative SLO condition, evaluated per federation member.

    ``labels`` narrows the history query (e.g. only the ``state="open"``
    child of the circuit-transition counter); with the default
    ``scope="member"`` the member name is always injected as the
    ``member`` label.  ``scope="global"`` rules judge a federation-wide
    series with no member label (the API error ratio) and are evaluated
    once per cycle under the :data:`GLOBAL_SCOPE` pseudo-member.
    ``scope="fleet"`` rules are evaluated per member like
    ``scope="member"``, but against the hub's merged
    :class:`~repro.obs.fleet.FleetTSDB` history — the series satellites
    *ship* rather than the series the hub records locally.  ``for_count``
    is how many consecutive breaching evaluations promote pending to
    firing.
    """

    id: str
    kind: str  # threshold | absence | burn_rate
    metric: str
    summary: str
    op: str = ">="
    threshold: float = 0.0
    window_s: float = 600.0
    max_age_s: float = 900.0
    for_count: int = 2
    severity: str = "warn"  # warn | page
    labels: tuple[tuple[str, str], ...] = ()
    denominator: str = ""
    func: str = "increase"  # burn_rate aggregate: increase | delta | rate
    scope: str = "member"  # member | global | fleet

    def __post_init__(self) -> None:
        if self.kind not in ("threshold", "absence", "burn_rate"):
            raise ValueError(f"unknown alert kind {self.kind!r}")
        if self.op not in _OPS:
            raise ValueError(f"unknown comparison {self.op!r}")
        if self.func not in ("increase", "delta", "rate"):
            raise ValueError(f"unknown burn-rate func {self.func!r}")
        if self.for_count < 1:
            raise ValueError("for_count must be >= 1")
        if self.scope not in ("member", "global", "fleet"):
            raise ValueError(f"unknown alert scope {self.scope!r}")

    def value_for(
        self, history: MetricsHistory, member: str, *, at: float | None = None
    ) -> float | None:
        """The number this rule judges, for one member (None = no data)."""
        labels = dict(self.labels)
        if self.scope in ("member", "fleet"):
            labels["member"] = member
        if self.kind == "threshold":
            return history.last(self.metric, **labels)
        if self.kind == "absence":
            return history.age_s(self.metric, at=at, **labels)
        agg = getattr(history, self.func)
        value = agg(self.metric, self.window_s, at=at, **labels)
        if self.denominator:
            den_labels = (
                {"member": member} if self.scope != "global" else {}
            )
            den = history.increase(
                self.denominator, self.window_s, at=at, **den_labels
            )
            if den is None or den <= 0:
                # no denominator activity in the window: ratio of 0
                return 0.0
            return (value or 0.0) / den
        return value

    def breaches(self, value: float | None) -> bool:
        if self.kind == "absence":
            # a series never recorded is "no data", not "stale": a fresh
            # hub that has not synced yet must come up healthy
            return value is not None and value > self.max_age_s
        if value is None:
            return False
        return _OPS[self.op](value, self.threshold)


#: The shipped rule catalog.  Ids are a stable interface — repolint R7
#: checks every literal passed to :func:`alert_rule` against this tuple.
DEFAULT_ALERT_RULES: tuple[AlertRule, ...] = (
    AlertRule(
        id="replication_lag_high",
        kind="threshold",
        metric="replication_lag_rows",
        op=">=",
        threshold=500.0,
        for_count=2,
        severity="warn",
        summary="member replication lag at or above 500 events",
    ),
    AlertRule(
        id="dead_letter_growth",
        kind="burn_rate",
        func="delta",
        metric="federation_dead_letters_rows",
        op=">",
        threshold=0.0,
        window_s=600.0,
        for_count=1,
        severity="warn",
        summary="dead-letter queue grew within the last window",
    ),
    AlertRule(
        id="circuit_breaker_flap",
        kind="burn_rate",
        metric="federation_circuit_transitions_total",
        labels=(("state", "open"),),
        op=">=",
        threshold=2.0,
        window_s=600.0,
        for_count=1,
        severity="page",
        summary="member circuit breaker opened repeatedly within the window",
    ),
    AlertRule(
        id="sync_failure_burn_rate",
        kind="burn_rate",
        metric="federation_member_syncs_total",
        labels=(("status", "failed"),),
        denominator="federation_member_syncs_total",
        op=">=",
        threshold=0.5,
        window_s=600.0,
        for_count=2,
        severity="page",
        summary="at least half of recent sync cycles failed for the member",
    ),
    AlertRule(
        id="member_stale",
        kind="absence",
        metric="federation_member_syncs_total",
        max_age_s=900.0,
        for_count=1,
        severity="page",
        summary="no sync outcome recorded for the member recently",
    ),
    AlertRule(
        id="analytics_anomaly_rate_high",
        kind="burn_rate",
        metric="analytics_anomalies_total",
        op=">=",
        threshold=1.0,
        window_s=3600.0,
        for_count=1,
        severity="warn",
        summary="job-level anomaly flagged for the member within the window",
    ),
    AlertRule(
        id="fleet_telemetry_stale",
        kind="absence",
        metric="fleet_shipment_seq_rows",
        max_age_s=900.0,
        for_count=1,
        severity="page",
        scope="fleet",
        summary="no fresh telemetry shipment ingested from the member recently",
    ),
    AlertRule(
        id="fleet_etl_ingest_stall",
        kind="absence",
        metric="etl_ingest_records_total",
        max_age_s=3600.0,
        for_count=1,
        severity="warn",
        scope="fleet",
        summary="member-local ETL ingest counters have stopped advancing",
    ),
    AlertRule(
        id="api_error_ratio_high",
        kind="burn_rate",
        metric="serving_requests_total",
        labels=(("class", "5xx"),),
        denominator="serving_requests_total",
        op=">=",
        threshold=0.05,
        window_s=600.0,
        for_count=2,
        severity="page",
        scope="global",
        summary="at least 5% of recent API requests returned server errors",
    ),
)

_RULES_BY_ID: dict[str, AlertRule] = {r.id: r for r in DEFAULT_ALERT_RULES}


def alert_rule(rule_id: str) -> AlertRule:
    """Look up a shipped rule by id (the R7-checked entry point)."""
    try:
        return _RULES_BY_ID[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown alert rule {rule_id!r}; shipped rules: "
            f"{sorted(_RULES_BY_ID)}"
        ) from None


@dataclass
class AlertState:
    """Current state of one ``(rule, member)`` pair."""

    rule: AlertRule
    member: str
    status: str = "inactive"  # inactive | pending | firing | resolved
    value: float | None = None
    since: float = 0.0
    breaches: int = 0

    @property
    def active(self) -> bool:
        return self.status in ("pending", "firing")

    def to_dict(self) -> dict:
        return {
            "rule": self.rule.id,
            "member": self.member,
            "status": self.status,
            "severity": self.rule.severity,
            "value": self.value,
            "since": self.since,
            "summary": self.rule.summary,
        }


class AlertEngine:
    """Evaluates a rule catalog against a metrics history, per member.

    One engine per hub; :meth:`evaluate` is called after sync cycles (or
    on demand by ``GET /alerts``) with the current member list.  States
    persist across evaluations; a member that leaves the federation keeps
    its last state but is no longer evaluated.
    """

    def __init__(
        self,
        history: MetricsHistory,
        rules: Iterable[AlertRule] = DEFAULT_ALERT_RULES,
        *,
        clock=None,
        fleet=None,
    ) -> None:
        self.history = history
        self.fleet = fleet
        self.rules = tuple(rules)
        ids = [r.id for r in self.rules]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate alert rule ids in {ids}")
        self._clock = clock if clock is not None else history.clock
        self._states: dict[tuple[str, str], AlertState] = {}
        self.evaluations = 0

    def evaluate(self, members: Iterable[str]) -> list[AlertState]:
        """Run every rule for every member; returns all known states.

        ``scope="global"`` rules ignore the member list and evaluate once
        under the :data:`GLOBAL_SCOPE` pseudo-member; ``scope="fleet"``
        rules evaluate over the fleet TSDB's merged history for every
        member it has ingested telemetry from (skipped entirely when the
        engine was built without a ``fleet``).
        """
        now = self._clock.now()
        self.evaluations += 1
        member_list = list(members)
        for rule in self.rules:
            source = self.history
            if rule.scope == "member":
                targets = member_list
            elif rule.scope == "fleet":
                if self.fleet is None:
                    continue
                targets = self.fleet.member_names()
                source = self.fleet.history
            else:
                targets = [GLOBAL_SCOPE]
            for member in targets:
                key = (rule.id, member)
                state = self._states.get(key)
                if state is None:
                    state = self._states.setdefault(key, AlertState(rule, member))
                value = rule.value_for(source, member, at=now)
                state.value = value
                if rule.breaches(value):
                    state.breaches += 1
                    if state.status in ("inactive", "resolved"):
                        state.status = "pending"
                        state.since = now
                        state.breaches = 1
                    if state.status == "pending" and state.breaches >= rule.for_count:
                        state.status = "firing"
                else:
                    if state.status == "firing":
                        state.status = "resolved"
                        state.since = now
                    elif state.status in ("pending", "resolved"):
                        state.status = "inactive"
                    state.breaches = 0
        return self.states()

    def states(self) -> list[AlertState]:
        return [self._states[k] for k in sorted(self._states)]

    def firing(self) -> list[AlertState]:
        return [s for s in self.states() if s.status == "firing"]

    def active(self) -> list[AlertState]:
        return [s for s in self.states() if s.active]

    def state_of(self, rule_id: str, member: str) -> AlertState | None:
        return self._states.get((rule_id, member))

    def to_dict(self) -> dict:
        firing = self.firing()
        return {
            "evaluations": self.evaluations,
            "firing": len(firing),
            "alerts": [s.to_dict() for s in self.states()],
        }

    def render(self) -> str:
        """Operator-facing alert table (the CLI / report artifact view)."""
        states = self.states()
        lines = ["Alerts", "======"]
        if not states:
            lines.append("(no evaluations yet)")
            return "\n".join(lines)
        order = {"firing": 0, "pending": 1, "resolved": 2, "inactive": 3}
        rows = sorted(
            states, key=lambda s: (order[s.status], s.rule.id, s.member)
        )
        id_w = max(len("rule"), max(len(s.rule.id) for s in rows)) + 2
        member_w = max(len("member"), max(len(s.member) for s in rows)) + 2
        lines.append(
            f"{'rule':<{id_w}}{'member':<{member_w}}{'status':<10}"
            f"{'severity':<10}value"
        )
        for s in rows:
            value = "-" if s.value is None else f"{s.value:g}"
            lines.append(
                f"{s.rule.id:<{id_w}}{s.member:<{member_w}}{s.status:<10}"
                f"{s.rule.severity:<10}{value}"
            )
        firing = [s for s in rows if s.status == "firing"]
        lines.append(
            f"{len(firing)} firing / {len(rows)} tracked"
        )
        for s in firing:
            lines.append(f"  FIRING {s.rule.id}[{s.member}]: {s.rule.summary}")
        return "\n".join(lines)
