"""Nested span tracing with a context-manager API.

Spans nest per thread (a thread-local stack supplies parent ids), carry
free-form attributes, and are finished in the order they close.  Ids are
sequential integers under a lock — no uuids, no randomness — and
timestamps come from the injected :class:`~repro.obs.clock.Clock`, so a
trace produced under a :class:`~repro.obs.clock.FakeClock` is
byte-identical across runs (``sort_keys`` JSONL export).

Federation extension: every span belongs to a *trace*.  A root span
mints a deterministic trace id (``<tracer name>:<span id>``); nested
spans inherit their parent's.  :meth:`Tracer.current_context` exports
the innermost live span as a :class:`~repro.obs.propagation.TraceContext`
that replication attaches to binlog events and loose dumps, and
``tracer.span(..., remote=ctx)`` *re-parents* a hub-side span under that
satellite context: the span adopts the remote trace id and records the
remote parent's qualified id (``<instance>#<span id>``) so the
federated-trace assembler can stitch the two tracers' spans into one
tree.  :meth:`Tracer.merge_remote` imports another tracer's finished
spans wholesale (ids stay unambiguous because every span carries its
instance name).
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..analysis.sanitizer import create_lock
from .clock import Clock, MonotonicClock

__all__ = ["SpanRecord", "Tracer"]


def qualified_id(instance: str, span_id: int) -> str:
    """Federation-unique span id: ``<instance>#<span id>``."""
    return f"{instance}#{span_id}"


@dataclass
class SpanRecord:
    """One finished span."""

    span_id: int
    parent_id: int | None
    name: str
    start_s: float
    end_s: float
    attrs: dict = field(default_factory=dict)
    trace_id: str = ""
    instance: str = ""
    remote_parent: str | None = None

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def qualified_id(self) -> str:
        return qualified_id(self.instance, self.span_id)

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "attrs": self.attrs,
            "trace_id": self.trace_id,
            "instance": self.instance,
            "remote_parent": self.remote_parent,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanRecord":
        return cls(
            span_id=int(payload["span_id"]),
            parent_id=payload.get("parent_id"),
            name=payload["name"],
            start_s=float(payload["start_s"]),
            end_s=float(payload["end_s"]),
            attrs=dict(payload.get("attrs", {})),
            trace_id=payload.get("trace_id", ""),
            instance=payload.get("instance", ""),
            remote_parent=payload.get("remote_parent"),
        )


class _Span:
    """Live span; records itself on the tracer when the block exits."""

    __slots__ = (
        "tracer", "name", "attrs", "remote",
        "span_id", "parent_id", "trace_id", "remote_parent", "start_s",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict, remote=None) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.remote = remote

    def annotate(self, **attrs) -> None:
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        tracer = self.tracer
        self.span_id = tracer._next_id()
        stack = tracer._stack()
        self.parent_id = stack[-1][0] if stack else None
        remote = self.remote
        if remote is not None:
            # re-parented under a context shipped from another instance:
            # join the remote trace and remember the cross-instance edge
            self.trace_id = remote.trace_id
            self.remote_parent = qualified_id(remote.instance, remote.span_id)
        elif stack:
            self.trace_id = stack[-1][1]
            self.remote_parent = None
        else:
            self.trace_id = tracer._mint_trace_id(self.span_id)
            self.remote_parent = None
        stack.append((self.span_id, self.trace_id))
        self.start_s = tracer.clock.now()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_s = self.tracer.clock.now()
        stack = self.tracer._stack()
        if stack and stack[-1][0] == self.span_id:
            stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self.tracer._record(
            SpanRecord(
                self.span_id, self.parent_id, self.name,
                self.start_s, end_s, self.attrs,
                trace_id=self.trace_id,
                instance=self.tracer.name,
                remote_parent=self.remote_parent,
            )
        )
        return False


class _NoopSpan:
    __slots__ = ()

    def annotate(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects finished spans in a bounded ring buffer.

    ``max_spans`` caps the in-memory buffer: overflow evicts the
    *oldest* finished span (long-running ``serve`` sessions keep the
    most recent traces, not the boot-time ones) and counts the eviction
    in ``spans_dropped`` — and, once :meth:`bind_metrics` has been
    called, in the ``obs_spans_dropped_total`` counter.

    ``name`` identifies the owning instance inside a federation; it tags
    every finished span and prefixes minted trace ids, which keeps span
    references unambiguous when several tracers' exports are merged.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        *,
        enabled: bool = True,
        max_spans: int = 10000,
        name: str = "",
    ) -> None:
        self.clock = clock if clock is not None else MonotonicClock()
        self.enabled = enabled
        self.max_spans = max_spans
        self.name = name
        self.spans_dropped = 0
        self._spans: deque[SpanRecord] = deque()
        self._id_lock = create_lock("Tracer.id")  # guards: _id, _spans, spans_dropped
        self._id = 0
        self._local = threading.local()
        self._c_dropped = None  # bound by bind_metrics()

    def bind_metrics(self, registry) -> None:
        """Expose ring-buffer evictions as ``obs_spans_dropped_total``.

        Called by :class:`~repro.obs.Observability` at construction; safe
        to call again (registration is idempotent).
        """
        self._c_dropped = registry.counter(
            "obs_spans_dropped_total",
            "Finished spans evicted from the tracer ring buffer",
        )

    def _next_id(self) -> int:
        with self._id_lock:
            self._id += 1
            return self._id

    def _mint_trace_id(self, root_span_id: int) -> str:
        return f"{self.name or 'trace'}:{root_span_id:06d}"

    def _stack(self) -> list[tuple[int, str]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, record: SpanRecord) -> None:
        dropped = False
        with self._id_lock:
            if self.max_spans <= 0:
                self.spans_dropped += 1
                dropped = True
            else:
                if len(self._spans) >= self.max_spans:
                    self._spans.popleft()
                    self.spans_dropped += 1
                    dropped = True
                self._spans.append(record)
        # counter bump outside the id lock: first resolution may take the
        # metric family's child lock, and Tracer.id must stay a leaf
        if dropped and self._c_dropped is not None:
            self._c_dropped.inc()

    def span(self, name: str, *, remote=None, **attrs):
        """``with tracer.span("stage", key=value): ...``

        ``remote`` (a :class:`~repro.obs.propagation.TraceContext`)
        re-parents the span under a context propagated from another
        instance: the span joins the remote trace instead of minting or
        inheriting a local one.
        """
        if not self.enabled:
            return _NOOP_SPAN
        return _Span(self, name, attrs, remote)

    def current_context(self):
        """The innermost live span as a propagation context (or None).

        Returned contexts are attached to binlog events at append time
        (see :class:`~repro.warehouse.binlog.Binlog`) and travel with
        replication deltas and loose dumps.
        """
        stack = getattr(self._local, "stack", None)
        if not stack:
            return None
        from .propagation import TraceContext

        span_id, trace_id = stack[-1]
        return TraceContext(
            trace_id=trace_id, span_id=span_id, instance=self.name
        )

    def merge_remote(self, spans: Iterable[SpanRecord | dict]) -> int:
        """Import finished spans from another tracer (or a parsed JSONL
        export).  Returns the number of spans merged.

        Imported records keep their own span ids and instance tags —
        federation-wide references use the qualified ``instance#id`` form,
        so no renumbering is needed.  The buffer cap applies as usual.
        """
        merged = 0
        for record in spans:
            if isinstance(record, dict):
                record = SpanRecord.from_dict(record)
            self._record(record)
            merged += 1
        return merged

    @property
    def finished(self) -> tuple[SpanRecord, ...]:
        with self._id_lock:
            return tuple(self._spans)

    def clear(self) -> None:
        with self._id_lock:
            self._spans.clear()
            self.spans_dropped = 0

    # -- export ----------------------------------------------------------------

    def iter_jsonl(self) -> Iterator[str]:
        for record in self.finished:
            yield json.dumps(record.to_dict(), sort_keys=True)

    def to_jsonl(self) -> str:
        lines = list(self.iter_jsonl())
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path) -> int:
        """Append-free JSONL dump; returns the number of spans written."""
        text = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        return len(self.finished)

    # -- slow-span report ------------------------------------------------------

    def slow_spans(self, top: int = 10) -> list[dict]:
        """Per-name aggregates sorted by total time, worst first."""
        groups: dict[str, dict] = {}
        for record in self.finished:
            g = groups.setdefault(
                record.name,
                {"name": record.name, "count": 0, "total_s": 0.0, "max_s": 0.0},
            )
            g["count"] += 1
            g["total_s"] += record.duration_s
            g["max_s"] = max(g["max_s"], record.duration_s)
        for g in groups.values():
            g["mean_s"] = g["total_s"] / g["count"]
        ordered = sorted(
            groups.values(), key=lambda g: (-g["total_s"], g["name"])
        )
        return ordered[:top]

    def render_slow_report(self, top: int = 10) -> str:
        rows = self.slow_spans(top)
        lines = [
            f"slow spans (top {top} by total time; "
            f"{len(self.finished)} recorded, {self.spans_dropped} dropped)",
            f"{'span':<28} {'count':>7} {'total_s':>10} {'mean_s':>10} {'max_s':>10}",
        ]
        for g in rows:
            lines.append(
                f"{g['name']:<28} {g['count']:>7} {g['total_s']:>10.4f} "
                f"{g['mean_s']:>10.6f} {g['max_s']:>10.6f}"
            )
        if not rows:
            lines.append("(no spans recorded)")
        return "\n".join(lines)
