"""Schema dump/load: the transport for loose federation and backups.

The paper's "loose" federation ships *database dumps or log files*
periodically to the hub instead of live binlog replication.  A dump here is
a JSON-serializable document: schema catalog + all row data + the binlog
head position at dump time (so a hub can later switch a loose channel to
tight replication without gaps — the dump records where the binlog cursor
should start).
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Any

from .engine import Database, Schema
from .errors import DumpError
from .schema import TableSchema

DUMP_FORMAT_VERSION = 1


def dump_schema(schema: Schema) -> dict[str, Any]:
    """Serialize one schema to a plain dict (tables, rows, binlog head)."""
    tables = []
    for name in schema.table_names():
        table = schema.table(name)
        tables.append(
            {
                "schema": table.schema.to_dict(),
                "rows": [list(row) for row in table.raw_rows()],
            }
        )
    return {
        "format_version": DUMP_FORMAT_VERSION,
        "schema_name": schema.name,
        "binlog_head": schema.binlog.head_lsn,
        "checksum": schema.checksum(),
        "tables": tables,
    }


def load_schema(
    database: Database,
    dump: dict[str, Any],
    *,
    rename_to: str | None = None,
    replace: bool = False,
    verify_checksum: bool = True,
) -> Schema:
    """Materialize a dump into ``database``.

    ``rename_to`` applies the federation hub's schema-renaming convention
    (e.g. satellite ``modw`` becomes ``fed_siteA`` on the hub).  With
    ``replace=True`` an existing schema of the target name is dropped first
    (periodic loose-federation refresh).
    """
    version = dump.get("format_version")
    if version != DUMP_FORMAT_VERSION:
        raise DumpError(f"unsupported dump format version {version!r}")
    target = rename_to or dump["schema_name"]
    if database.has_schema(target):
        if not replace:
            raise DumpError(f"schema {target!r} already exists (use replace=True)")
        database.drop_schema(target)
    schema = database.create_schema(target)
    for entry in dump["tables"]:
        table_schema = TableSchema.from_dict(entry["schema"])
        table = schema.create_table(table_schema)
        names = table_schema.column_names
        for row in entry["rows"]:
            table.insert(dict(zip(names, row)))
    if verify_checksum and schema.checksum() != dump.get("checksum"):
        raise DumpError(
            f"dump of {dump['schema_name']!r} failed checksum verification"
        )
    return schema


def write_dump_file(schema: Schema, path: str | Path, *, compress: bool = True) -> Path:
    """Write a schema dump to disk (gzip JSON by default)."""
    path = Path(path)
    payload = json.dumps(dump_schema(schema), default=str).encode()
    if compress:
        path.write_bytes(gzip.compress(payload))
    else:
        path.write_bytes(payload)
    return path


def read_dump_file(path: str | Path) -> dict[str, Any]:
    """Read a dump written by :func:`write_dump_file` (auto-detects gzip)."""
    raw = Path(path).read_bytes()
    if raw[:2] == b"\x1f\x8b":
        raw = gzip.decompress(raw)
    try:
        dump = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise DumpError(f"corrupt dump file {path}: {exc}") from exc
    # JSON round-trip turns row tuples into lists and may stringify nothing
    # else; normalize_row on load re-validates types.
    return dump
