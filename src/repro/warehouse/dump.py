"""Schema dump/load: the transport for loose federation and backups.

The paper's "loose" federation ships *database dumps or log files*
periodically to the hub instead of live binlog replication.  A dump here is
a JSON-serializable document: schema catalog + all row data + the binlog
head position at dump time (so a hub can later switch a loose channel to
tight replication without gaps — the dump records where the binlog cursor
should start).

Integrity: every dump carries a content checksum (:func:`dump_checksum`)
computed purely from the document, matching what
:meth:`~repro.warehouse.engine.Schema.checksum` would report for the
materialized schema.  :func:`load_schema` verifies it *before* touching
the target database, so a corrupted or truncated shipment is rejected
outright — never half-loaded over the previous good copy.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import zlib
from pathlib import Path
from typing import Any

from .engine import Database, Schema
from .errors import DumpError
from .schema import TableSchema

DUMP_FORMAT_VERSION = 1


def table_rows_checksum(rows: list[Any]) -> str:
    """Order-independent digest of one table's row data.

    Mirrors :meth:`~repro.warehouse.engine.Table.checksum` exactly
    (``json.dumps`` renders tuples and lists identically, so a dump that
    round-tripped through JSON digests the same as the live table).
    """
    digests = sorted(
        hashlib.sha256(
            json.dumps(row, sort_keys=False, default=str).encode()
        ).hexdigest()
        for row in rows
    )
    h = hashlib.sha256()
    for d in digests:
        h.update(d.encode())
    return h.hexdigest()


def dump_checksum(dump: dict[str, Any]) -> str:
    """Content checksum of a dump document.

    Equals :meth:`Schema.checksum` of the schema the dump describes —
    whether computed satellite-side before shipping or hub-side after —
    so the two sides can agree on integrity without materializing
    anything.  Filtered dumps (loose federation's resource routing)
    recompute this over the *filtered* content.
    """
    h = hashlib.sha256()
    entries = sorted(dump["tables"], key=lambda e: e["schema"]["name"])
    for entry in entries:
        h.update(entry["schema"]["name"].encode())
        h.update(table_rows_checksum(entry["rows"]).encode())
    return h.hexdigest()


def dump_schema(schema: Schema) -> dict[str, Any]:
    """Serialize one schema to a plain dict (tables, rows, binlog head)."""
    tables = []
    for name in schema.table_names():
        table = schema.table(name)
        tables.append(
            {
                "schema": table.schema.to_dict(),
                "rows": [list(row) for row in table.raw_rows()],
            }
        )
    return {
        "format_version": DUMP_FORMAT_VERSION,
        "schema_name": schema.name,
        "binlog_head": schema.binlog.head_lsn,
        "checksum": schema.checksum(),
        "tables": tables,
    }


def load_schema(
    database: Database,
    dump: dict[str, Any],
    *,
    rename_to: str | None = None,
    replace: bool = False,
    verify_checksum: bool = True,
) -> Schema:
    """Materialize a dump into ``database``.

    ``rename_to`` applies the federation hub's schema-renaming convention
    (e.g. satellite ``modw`` becomes ``fed_siteA`` on the hub).  With
    ``replace=True`` an existing schema of the target name is dropped first
    (periodic loose-federation refresh).

    With ``verify_checksum`` (the default) the dump's content checksum is
    verified *before* any existing schema is dropped or any row inserted:
    a corrupt dump raises :class:`DumpError` and leaves the database —
    including the previous shipment — untouched.
    """
    version = dump.get("format_version")
    if version != DUMP_FORMAT_VERSION:
        raise DumpError(f"unsupported dump format version {version!r}")
    if verify_checksum and dump_checksum(dump) != dump.get("checksum"):
        raise DumpError(
            f"dump of {dump.get('schema_name')!r} failed checksum verification"
        )
    target = rename_to or dump["schema_name"]
    if database.has_schema(target):
        if not replace:
            raise DumpError(f"schema {target!r} already exists (use replace=True)")
        database.drop_schema(target)
    schema = database.create_schema(target)
    try:
        for entry in dump["tables"]:
            table_schema = TableSchema.from_dict(entry["schema"])
            table = schema.create_table(table_schema)
            names = table_schema.column_names
            for row in entry["rows"]:
                table.insert(dict(zip(names, row)))
    except Exception as exc:
        # malformed row data mid-load: never leave a partial schema behind
        database.drop_schema(target)
        raise DumpError(
            f"dump of {dump.get('schema_name')!r} failed to load: {exc}"
        ) from exc
    return schema


def write_dump_file(
    dump_or_schema: Schema | dict[str, Any],
    path: str | Path,
    *,
    compress: bool = True,
) -> Path:
    """Write a schema (or an already-built dump document) to disk.

    Accepting the document form lets loose federation ship *filtered*
    dumps through the same code path as whole-schema backups.
    """
    path = Path(path)
    dump = (
        dump_or_schema
        if isinstance(dump_or_schema, dict)
        else dump_schema(dump_or_schema)
    )
    payload = json.dumps(dump, default=str).encode()
    if compress:
        path.write_bytes(gzip.compress(payload))
    else:
        path.write_bytes(payload)
    return path


def read_dump_file(path: str | Path) -> dict[str, Any]:
    """Read a dump written by :func:`write_dump_file` (auto-detects gzip).

    Any form of file damage — broken gzip framing, truncation, invalid
    JSON, a non-object payload — surfaces as :class:`DumpError`.
    """
    raw = Path(path).read_bytes()
    if raw[:2] == b"\x1f\x8b":
        try:
            raw = gzip.decompress(raw)
        except (OSError, EOFError, zlib.error) as exc:
            raise DumpError(f"corrupt dump file {path}: {exc}") from exc
    try:
        dump = json.loads(raw)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise DumpError(f"corrupt dump file {path}: {exc}") from exc
    if not isinstance(dump, dict):
        raise DumpError(f"corrupt dump file {path}: not a dump document")
    # JSON round-trip turns row tuples into lists and may stringify nothing
    # else; normalize_row on load re-validates types.
    return dump
