"""Typed schema definitions for the embedded data warehouse.

The warehouse models the subset of a relational catalog that Open XDMoD
actually relies on: named schemas (databases), tables with typed, possibly
nullable columns, a single- or multi-column primary key, and secondary hash
indexes.  Types are deliberately few — the XDMoD data warehouse stores
integers, floats, strings, booleans, epoch timestamps, and JSON blobs.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from .errors import SchemaError, TypeMismatchError


class ColumnType(enum.Enum):
    """Column storage types supported by the warehouse."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    BOOL = "bool"
    TIMESTAMP = "timestamp"  # stored as int epoch seconds
    JSON = "json"  # stored as an arbitrary JSON-serializable value

    def validate(self, value: Any, *, column: str = "?") -> Any:
        """Coerce/validate ``value`` for this type, returning the stored form.

        Raises :class:`TypeMismatchError` when the value cannot be stored.
        """
        if value is None:
            return None
        if self in (ColumnType.INT, ColumnType.TIMESTAMP):
            if isinstance(value, bool):
                raise TypeMismatchError(
                    f"column {column!r}: bool is not a valid {self.value}"
                )
            if isinstance(value, int):
                return value
            if isinstance(value, float) and value.is_integer():
                return int(value)
            raise TypeMismatchError(
                f"column {column!r}: {value!r} is not a valid {self.value}"
            )
        if self is ColumnType.FLOAT:
            if isinstance(value, bool):
                raise TypeMismatchError(f"column {column!r}: bool is not a float")
            if isinstance(value, (int, float)):
                return float(value)
            raise TypeMismatchError(f"column {column!r}: {value!r} is not a float")
        if self is ColumnType.STR:
            if isinstance(value, str):
                return value
            raise TypeMismatchError(f"column {column!r}: {value!r} is not a str")
        if self is ColumnType.BOOL:
            if isinstance(value, bool):
                return value
            raise TypeMismatchError(f"column {column!r}: {value!r} is not a bool")
        if self is ColumnType.JSON:
            try:
                json.dumps(value)
            except (TypeError, ValueError) as exc:
                raise TypeMismatchError(
                    f"column {column!r}: value is not JSON-serializable: {exc}"
                ) from exc
            return value
        raise AssertionError(f"unhandled column type {self}")  # pragma: no cover


@dataclass(frozen=True)
class Column:
    """A single typed column.

    Parameters
    ----------
    name:
        Column name; must be a valid identifier-ish string.
    ctype:
        One of :class:`ColumnType`.
    nullable:
        Whether NULL (``None``) is allowed.  Primary-key columns are always
        implicitly non-nullable.
    default:
        Value used when an insert omits the column.  ``None`` with
        ``nullable=False`` means the column is required.
    """

    name: str
    ctype: ColumnType
    nullable: bool = True
    default: Any = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "a").isalnum():
            raise SchemaError(f"invalid column name {self.name!r}")
        if self.default is not None:
            object.__setattr__(
                self, "default", self.ctype.validate(self.default, column=self.name)
            )


@dataclass(frozen=True)
class TableSchema:
    """Definition of one table: ordered columns, primary key, indexes.

    ``primary_key`` is a tuple of column names forming the (composite) key;
    empty means the table has no primary key and duplicate rows are allowed
    (fact tables in XDMoD use surrogate keys; aggregate tables often have
    composite keys).  ``indexes`` is a tuple of single-column names that get
    secondary hash indexes.
    """

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...] = ()
    indexes: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "a").isalnum():
            raise SchemaError(f"invalid table name {self.name!r}")
        if not self.columns:
            raise SchemaError(f"table {self.name!r} must have at least one column")
        seen: set[str] = set()
        for col in self.columns:
            if col.name in seen:
                raise SchemaError(
                    f"table {self.name!r}: duplicate column {col.name!r}"
                )
            seen.add(col.name)
        for key_col in self.primary_key:
            if key_col not in seen:
                raise SchemaError(
                    f"table {self.name!r}: primary key column {key_col!r} undefined"
                )
        for idx_col in self.indexes:
            if idx_col not in seen:
                raise SchemaError(
                    f"table {self.name!r}: index column {idx_col!r} undefined"
                )

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(col.name for col in self.columns)

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def position(self, name: str) -> int:
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def normalize_row(self, values: Mapping[str, Any]) -> tuple[Any, ...]:
        """Validate a mapping of column values and return the stored tuple.

        Missing columns take their default; unknown keys are an error; NULL
        constraints (including implicit PK non-nullability) are enforced.
        """
        unknown = set(values) - set(self.column_names)
        if unknown:
            raise SchemaError(
                f"table {self.name!r}: unknown columns {sorted(unknown)!r}"
            )
        row: list[Any] = []
        for col in self.columns:
            if col.name in values:
                stored = col.ctype.validate(values[col.name], column=col.name)
            else:
                stored = col.default
            if stored is None and (not col.nullable or col.name in self.primary_key):
                raise TypeMismatchError(
                    f"table {self.name!r}: column {col.name!r} may not be NULL"
                )
            row.append(stored)
        return tuple(row)

    def key_of(self, row: Sequence[Any]) -> tuple[Any, ...] | None:
        """Return the primary-key tuple for a stored row, or None if keyless."""
        if not self.primary_key:
            return None
        return tuple(row[self.position(c)] for c in self.primary_key)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable description (used by dumps and replication)."""
        return {
            "name": self.name,
            "columns": [
                {
                    "name": c.name,
                    "type": c.ctype.value,
                    "nullable": c.nullable,
                    "default": c.default,
                }
                for c in self.columns
            ],
            "primary_key": list(self.primary_key),
            "indexes": list(self.indexes),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TableSchema":
        columns = tuple(
            Column(
                name=c["name"],
                ctype=ColumnType(c["type"]),
                nullable=c.get("nullable", True),
                default=c.get("default"),
            )
            for c in data["columns"]
        )
        return cls(
            name=data["name"],
            columns=columns,
            primary_key=tuple(data.get("primary_key", ())),
            indexes=tuple(data.get("indexes", ())),
        )


def make_columns(spec: Iterable[tuple[str, ColumnType] | tuple[str, ColumnType, bool]]) -> tuple[Column, ...]:
    """Small helper: build columns from ``(name, type[, nullable])`` tuples."""
    cols: list[Column] = []
    for entry in spec:
        if len(entry) == 2:
            name, ctype = entry  # type: ignore[misc]
            cols.append(Column(name, ctype))
        else:
            name, ctype, nullable = entry  # type: ignore[misc]
            cols.append(Column(name, ctype, nullable=nullable))
    return tuple(cols)
