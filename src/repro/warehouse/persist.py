"""Whole-database persistence: save/load an instance to a directory.

An Open XDMoD installation survives restarts because MySQL is durable; the
embedded warehouse gets the same property through directory snapshots —
one (gzip) dump file per schema plus a manifest.  Used by the CLI and by
operators who want a satellite's state on disk between runs.  The binlog
position at save time is recorded in the manifest for audit; a reloaded
schema carries a *fresh* binlog (its load history), so replication after a
reload should re-ship loosely and convert to tight
(:meth:`repro.core.LooseChannel.to_tight`) rather than resume an old LSN.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .dump import load_schema, read_dump_file, write_dump_file
from .engine import Database
from .errors import DumpError

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1


def save_database(database: Database, directory: str | Path) -> Path:
    """Snapshot every schema of ``database`` into ``directory``.

    Overwrites any previous snapshot there.  Returns the directory path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest: dict[str, Any] = {
        "manifest_version": MANIFEST_VERSION,
        "database": database.name,
        "schemas": [],
    }
    for name in database.schema_names():
        schema = database.schema(name)
        filename = f"{name}.dump.gz"
        write_dump_file(schema, directory / filename)
        manifest["schemas"].append(
            {
                "name": name,
                "file": filename,
                "binlog_head": schema.binlog.head_lsn,
                "checksum": schema.checksum(),
            }
        )
    (directory / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
    return directory


def load_database(directory: str | Path, *, verify: bool = True) -> Database:
    """Rebuild a database from a :func:`save_database` snapshot."""
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise DumpError(f"no {MANIFEST_NAME} in {directory}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise DumpError(f"corrupt manifest in {directory}: {exc}") from exc
    if manifest.get("manifest_version") != MANIFEST_VERSION:
        raise DumpError(
            f"unsupported manifest version {manifest.get('manifest_version')!r}"
        )
    database = Database(manifest.get("database", "xdmod"))
    for entry in manifest["schemas"]:
        dump = read_dump_file(directory / entry["file"])
        schema = load_schema(database, dump, verify_checksum=False)
        if verify and schema.checksum() != entry["checksum"]:
            raise DumpError(
                f"schema {entry['name']!r} failed checksum verification on load"
            )
    return database


def snapshot_info(directory: str | Path) -> dict[str, Any]:
    """Read a snapshot's manifest without loading any data."""
    manifest_path = Path(directory) / MANIFEST_NAME
    if not manifest_path.exists():
        raise DumpError(f"no {MANIFEST_NAME} in {directory}")
    return json.loads(manifest_path.read_text())
