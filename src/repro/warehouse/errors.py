"""Exception hierarchy for the embedded data warehouse.

Every error raised by :mod:`repro.warehouse` derives from
:class:`WarehouseError`, so callers can catch one type to shield against any
storage-layer failure.
"""

from __future__ import annotations


class WarehouseError(Exception):
    """Base class for all warehouse errors."""


class SchemaError(WarehouseError):
    """A schema, table, or column definition is invalid or missing."""


class DuplicateObjectError(SchemaError):
    """Attempted to create a schema/table/index that already exists."""


class UnknownObjectError(SchemaError):
    """Referenced a schema/table/column/index that does not exist."""


class IntegrityError(WarehouseError):
    """A constraint was violated (type, nullability, primary key)."""


class TypeMismatchError(IntegrityError):
    """A value does not conform to its column's declared type."""


class PrimaryKeyError(IntegrityError):
    """Duplicate or missing primary key."""


class QueryError(WarehouseError):
    """A query is malformed (bad column, bad aggregate, bad join)."""


class BinlogError(WarehouseError):
    """Binary-log corruption, bad LSN range, or replay failure."""


class DumpError(WarehouseError):
    """Dump/load (serialization) failure."""
