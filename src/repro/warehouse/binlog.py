"""Binary log: the replication substrate for federation.

Open XDMoD federation uses Continuent's Tungsten Replicator, which tails the
MySQL binary log of each satellite instance and applies row events to the
federation hub.  This module provides the equivalent primitive: every
committed change to a warehouse schema is appended to that schema's
:class:`Binlog` as a :class:`BinlogEvent` with a monotonically increasing log
sequence number (LSN).  Replicators (see :mod:`repro.core.replicator`) hold a
:class:`BinlogCursor` per source schema and poll for events past their last
applied LSN — exactly the fan-in, resume-from-position semantics Tungsten
gives the paper's "tight" federation.

Events carry enough information to be applied to an empty schema:
``create_table`` events embed the full table schema, and row events embed the
full row image (before-image for deletes/updates keyed by primary key).
Replaying a binlog from LSN 0 onto an empty schema therefore reproduces the
source tables exactly — an invariant the test suite checks property-based.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from ..analysis.sanitizer import create_lock
from .errors import BinlogError


class EventType(enum.Enum):
    """Kinds of change events recorded in the binary log."""

    CREATE_TABLE = "create_table"
    DROP_TABLE = "drop_table"
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"
    TRUNCATE = "truncate"


@dataclass(frozen=True)
class BinlogEvent:
    """One change event.

    Attributes
    ----------
    lsn:
        Log sequence number, unique and strictly increasing per binlog.
    etype:
        The :class:`EventType`.
    table:
        Table name the event applies to.
    data:
        Event payload.  For ``CREATE_TABLE``: the table schema dict.  For
        ``INSERT``: ``{"row": {...}}``.  For ``UPDATE``: ``{"key": [...],
        "row": {...}}`` (full after-image).  For ``DELETE``: ``{"key":
        [...]}`` or ``{"row": {...}}`` for keyless tables.  ``TRUNCATE`` and
        ``DROP_TABLE`` carry an empty payload.
    """

    lsn: int
    etype: EventType
    table: str
    data: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "lsn": self.lsn,
            "etype": self.etype.value,
            "table": self.table,
            "data": self.data,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "BinlogEvent":
        return cls(
            lsn=int(payload["lsn"]),
            etype=EventType(payload["etype"]),
            table=payload["table"],
            data=payload.get("data", {}),
        )


class Binlog:
    """Append-only, in-memory change log for one schema.

    Thread-safe: ingest (the ETL pipeline) and replication (the federation
    replicator thread) may run concurrently, as they do in a live XDMoD
    deployment where nightly ingest overlaps Tungsten's tailing.
    """

    def __init__(
        self,
        *,
        on_append: Callable[[], None] | None = None,
        trace_provider: Callable[[], Any] | None = None,
    ) -> None:
        self._events: list[BinlogEvent] = []
        self._lock = create_lock("Binlog")  # guards: _events
        #: telemetry hook — must be cheap and non-raising; invoked outside
        #: the log lock so a slow observer cannot stall replication tails
        self._on_append = on_append
        #: trace propagation: called per append (outside the lock) for the
        #: live trace context, kept in a sidecar keyed by LSN so event
        #: payloads — and therefore binlog/dump checksums — never change
        self._trace_provider = trace_provider
        self._trace: dict[int, Any] = {}

    def append(self, etype: EventType, table: str, data: dict[str, Any] | None = None) -> BinlogEvent:
        """Record one event; returns it with its assigned LSN."""
        with self._lock:
            event = BinlogEvent(
                lsn=len(self._events), etype=etype, table=table, data=data or {}
            )
            self._events.append(event)
        if self._on_append is not None:
            self._on_append()
        if self._trace_provider is not None:
            context = self._trace_provider()
            if context is not None:
                self._trace[event.lsn] = context
        return event

    def trace_context(self, lsn: int):
        """Trace context captured when event ``lsn`` was appended (or None)."""
        return self._trace.get(lsn)

    @property
    def head_lsn(self) -> int:
        """LSN that the *next* appended event will receive."""
        with self._lock:
            return len(self._events)

    def read_from(self, lsn: int, limit: int | None = None) -> list[BinlogEvent]:
        """Return events with LSN >= ``lsn``, up to ``limit`` of them.

        Requesting a position beyond the head is allowed (empty result); a
        negative position is a :class:`BinlogError`.
        """
        if lsn < 0:
            raise BinlogError(f"negative LSN {lsn}")
        with self._lock:
            chunk = self._events[lsn : (lsn + limit) if limit is not None else None]
            return list(chunk)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterator[BinlogEvent]:
        return iter(self.read_from(0))

    def checksum(self) -> str:
        """Stable digest over the whole log (used in consistency checks)."""
        h = hashlib.sha256()
        for event in self.read_from(0):
            h.update(
                json.dumps(event.to_dict(), sort_keys=True, default=str).encode()
            )
        return h.hexdigest()


class BinlogCursor:
    """A consumer position in a binlog.

    Each replication channel (satellite schema -> hub schema) owns one
    cursor; committing advances the position so replication is resumable and
    idempotent at the event level.
    """

    def __init__(self, binlog: Binlog, start_lsn: int = 0) -> None:
        if start_lsn < 0:
            raise BinlogError(f"negative start LSN {start_lsn}")
        self._binlog = binlog
        self._position = start_lsn

    @property
    def position(self) -> int:
        return self._position

    @property
    def lag(self) -> int:
        """Number of events not yet consumed."""
        return max(0, self._binlog.head_lsn - self._position)

    def poll(self, max_events: int | None = None) -> list[BinlogEvent]:
        """Fetch unconsumed events without advancing the cursor."""
        return self._binlog.read_from(self._position, max_events)

    def commit(self, lsn: int) -> None:
        """Advance the cursor past event ``lsn``.

        Committing backwards is refused — replication never un-applies.
        """
        if lsn + 1 < self._position:
            raise BinlogError(
                f"cursor at {self._position} cannot commit earlier LSN {lsn}"
            )
        self._position = max(self._position, lsn + 1)

    def seek(self, lsn: int) -> None:
        """Reposition the cursor (used when re-provisioning a channel)."""
        if lsn < 0:
            raise BinlogError(f"negative LSN {lsn}")
        self._position = lsn


def row_event_filter(
    predicate: Callable[[BinlogEvent], bool],
    events: Sequence[BinlogEvent],
) -> list[BinlogEvent]:
    """Filter row events, always keeping DDL (create/drop/truncate).

    Selective replication (the paper's resource routing, Section II-C4) must
    drop *rows* for excluded resources while still creating the tables, so
    the hub schema stays structurally complete.
    """
    kept: list[BinlogEvent] = []
    for event in events:
        if event.etype in (EventType.CREATE_TABLE, EventType.DROP_TABLE, EventType.TRUNCATE):
            kept.append(event)
        elif predicate(event):
            kept.append(event)
    return kept
