"""Storage engine: databases, schemas, tables, CRUD, indexes.

This is the MySQL-equivalent substrate under every XDMoD instance.  A
:class:`Database` holds named :class:`Schema` objects (one per logical
database — XDMoD uses ``modw``, ``mod_shredder``, etc.; the federation hub
additionally holds one renamed schema per satellite).  Every schema owns a
:class:`~repro.warehouse.binlog.Binlog` and all committed changes are
recorded there, which is what makes tight federation possible.

Rows are stored as tuples in insertion order with tombstoned deletes, so row
ids remain stable; primary keys and declared secondary indexes are hash maps
from value to row ids.  The design favours clarity first (per the
optimization guide: make it work, make it right), with the hot aggregation
paths vectorized separately in :mod:`repro.aggregation`.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..analysis.sanitizer import create_lock
from .binlog import Binlog, BinlogEvent, EventType
from .errors import (
    DuplicateObjectError,
    PrimaryKeyError,
    SchemaError,
    UnknownObjectError,
)
from .schema import ColumnType, TableSchema


class Table:
    """One table: schema + rows + indexes.

    Not constructed directly — use :meth:`Schema.create_table`.
    """

    def __init__(self, schema: "Schema", table_schema: TableSchema) -> None:
        self._owner = schema
        self.schema = table_schema
        self._rows: list[tuple[Any, ...] | None] = []  # None == tombstone
        self._live_count = 0
        self._pk_index: dict[tuple[Any, ...], int] = {}
        self._indexes: dict[str, dict[Any, set[int]]] = {
            name: {} for name in table_schema.indexes
        }
        self._data_version = 0
        self._columnar_cache: dict[str, np.ndarray] = {}

    # -- introspection ----------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return self._live_count

    def rows(self) -> Iterator[dict[str, Any]]:
        """Iterate live rows as dicts (insertion order)."""
        names = self.schema.column_names
        for row in self._rows:
            if row is not None:
                yield dict(zip(names, row))

    def raw_rows(self) -> Iterator[tuple[Any, ...]]:
        """Iterate live rows as stored tuples (no dict overhead)."""
        for row in self._rows:
            if row is not None:
                yield row

    def row_ids(self) -> Iterator[int]:
        for rid, row in enumerate(self._rows):
            if row is not None:
                yield rid

    def row_at(self, rid: int) -> tuple[Any, ...]:
        row = self._rows[rid]
        if row is None:
            raise UnknownObjectError(f"row id {rid} is deleted")
        return row

    def checksum(self) -> str:
        """Order-independent digest of live row contents.

        Used by :mod:`repro.core.consistency` to verify that replicated data
        on the hub is byte-identical to the satellite's (invariant 1 in
        DESIGN.md).
        """
        digests = sorted(
            hashlib.sha256(
                json.dumps(row, sort_keys=False, default=str).encode()
            ).hexdigest()
            for row in self.raw_rows()
        )
        h = hashlib.sha256()
        for d in digests:
            h.update(d.encode())
        return h.hexdigest()

    # -- mutation ----------------------------------------------------------

    def insert(self, values: Mapping[str, Any], *, _log: bool = True) -> int:
        """Insert one row; returns its row id.

        Raises :class:`PrimaryKeyError` on duplicate key.
        """
        row = self.schema.normalize_row(values)
        key = self.schema.key_of(row)
        if key is not None and key in self._pk_index:
            raise PrimaryKeyError(
                f"table {self.name!r}: duplicate primary key {key!r}"
            )
        rid = len(self._rows)
        self._rows.append(row)
        self._live_count += 1
        self._mutated()
        if key is not None:
            self._pk_index[key] = rid
        self._index_add(rid, row)
        if _log:
            self._owner._log(
                EventType.INSERT,
                self.name,
                {"row": dict(zip(self.schema.column_names, row))},
            )
        return rid

    def insert_many(self, rows: Iterable[Mapping[str, Any]]) -> int:
        """Bulk insert; returns the number of rows inserted."""
        n = 0
        for values in rows:
            self.insert(values)
            n += 1
        return n

    def upsert(self, values: Mapping[str, Any]) -> int:
        """Insert, or update in place when the primary key already exists."""
        row = self.schema.normalize_row(values)
        key = self.schema.key_of(row)
        if key is not None and key in self._pk_index:
            rid = self._pk_index[key]
            self._replace(rid, row)
            self._owner._log(
                EventType.UPDATE,
                self.name,
                {
                    "key": list(key),
                    "row": dict(zip(self.schema.column_names, row)),
                },
            )
            return rid
        return self.insert(values)

    def get(self, key: Sequence[Any]) -> dict[str, Any] | None:
        """Primary-key point lookup; returns the row dict or None."""
        if not self.schema.primary_key:
            raise SchemaError(f"table {self.name!r} has no primary key")
        rid = self._pk_index.get(tuple(key))
        if rid is None:
            return None
        return dict(zip(self.schema.column_names, self._rows[rid]))  # type: ignore[arg-type]

    def update_where(
        self,
        predicate: Callable[[dict[str, Any]], bool],
        changes: Mapping[str, Any],
    ) -> int:
        """Update all rows matching ``predicate``; returns count updated."""
        names = self.schema.column_names
        updated = 0
        for rid, row in enumerate(self._rows):
            if row is None:
                continue
            asdict = dict(zip(names, row))
            if not predicate(asdict):
                continue
            asdict.update(changes)
            new_row = self.schema.normalize_row(asdict)
            new_key = self.schema.key_of(new_row)
            old_key = self.schema.key_of(row)
            if new_key != old_key and new_key in self._pk_index:
                raise PrimaryKeyError(
                    f"table {self.name!r}: update collides on key {new_key!r}"
                )
            if old_key is not None:
                del self._pk_index[old_key]
            if new_key is not None:
                self._pk_index[new_key] = rid
            self._replace(rid, new_row)
            self._owner._log(
                EventType.UPDATE,
                self.name,
                {
                    "key": list(new_key) if new_key is not None else None,
                    "old_row": dict(zip(names, row)),
                    "row": dict(zip(names, new_row)),
                },
            )
            updated += 1
        return updated

    def delete_where(self, predicate: Callable[[dict[str, Any]], bool]) -> int:
        """Delete all rows matching ``predicate``; returns count deleted."""
        names = self.schema.column_names
        deleted = 0
        for rid, row in enumerate(self._rows):
            if row is None:
                continue
            asdict = dict(zip(names, row))
            if not predicate(asdict):
                continue
            key = self.schema.key_of(row)
            if key is not None:
                del self._pk_index[key]
            self._index_remove(rid, row)
            self._rows[rid] = None
            self._live_count -= 1
            self._mutated()
            self._owner._log(
                EventType.DELETE,
                self.name,
                {"key": list(key) if key is not None else None, "row": asdict},
            )
            deleted += 1
        return deleted

    def truncate(self) -> None:
        """Remove all rows (logged as one TRUNCATE event)."""
        self._rows.clear()
        self._live_count = 0
        self._pk_index.clear()
        for idx in self._indexes.values():
            idx.clear()
        self._mutated()
        self._owner._log(EventType.TRUNCATE, self.name, {})

    # -- index plumbing -----------------------------------------------------

    def lookup_index(self, column: str, value: Any) -> list[dict[str, Any]]:
        """Equality lookup through a declared secondary index."""
        if column not in self._indexes:
            raise UnknownObjectError(
                f"table {self.name!r} has no index on {column!r}"
            )
        names = self.schema.column_names
        rids = sorted(self._indexes[column].get(value, ()))
        return [dict(zip(names, self._rows[rid])) for rid in rids]  # type: ignore[arg-type]

    def index_row_ids(self, column: str, value: Any) -> set[int]:
        if column not in self._indexes:
            raise UnknownObjectError(
                f"table {self.name!r} has no index on {column!r}"
            )
        return set(self._indexes[column].get(value, ()))

    def _index_add(self, rid: int, row: tuple[Any, ...]) -> None:
        for col, idx in self._indexes.items():
            value = row[self.schema.position(col)]
            idx.setdefault(value, set()).add(rid)

    def _index_remove(self, rid: int, row: tuple[Any, ...]) -> None:
        for col, idx in self._indexes.items():
            value = row[self.schema.position(col)]
            bucket = idx.get(value)
            if bucket is not None:
                bucket.discard(rid)
                if not bucket:
                    del idx[value]

    def _replace(self, rid: int, new_row: tuple[Any, ...]) -> None:
        old_row = self._rows[rid]
        if old_row is not None:
            self._index_remove(rid, old_row)
        self._rows[rid] = new_row
        self._index_add(rid, new_row)
        self._mutated()

    # -- column access for vectorized aggregation ---------------------------

    def _mutated(self) -> None:
        """Invalidate the columnar cache; called from every mutation point
        (the same points that record a binlog event)."""
        self._data_version += 1
        self._owner._bump_data_version()
        if self._columnar_cache:
            self._columnar_cache.clear()

    @property
    def data_version(self) -> int:
        """Monotonic counter bumped on every row mutation.

        Lets callers (and tests) detect staleness of anything derived from
        the table's contents — the columnar cache keys off it internally.
        """
        return self._data_version

    def column_array(self, column: str) -> np.ndarray:
        """Cached NumPy array of one column's live values, in row order.

        This is the columnar view feeding the vectorized aggregation paths
        (:mod:`repro.aggregation.columnar`).  Arrays are built lazily per
        column and cached until the next mutation — insert, update, delete,
        or truncate, i.e. the same hook points that write the binlog —
        invalidates the whole cache.

        dtype mapping: INT/TIMESTAMP columns become ``int64`` (``float64``
        with NaN standing in for NULL when the column holds NULLs);
        FLOAT becomes ``float64`` (NULL becomes NaN); everything else
        (STR/BOOL/JSON) becomes an ``object`` array with NULLs kept as
        ``None``.  The returned array is shared cache state — callers must
        treat it as read-only.
        """
        cached = self._columnar_cache.get(column)
        if cached is not None:
            return cached
        pos = self.schema.position(column)
        ctype = self.schema.column(column).ctype
        values = [row[pos] for row in self._rows if row is not None]
        if ctype in (ColumnType.INT, ColumnType.TIMESTAMP, ColumnType.FLOAT):
            has_null = any(v is None for v in values)
            if has_null:
                arr = np.array(
                    [np.nan if v is None else v for v in values],
                    dtype=np.float64,
                )
            elif ctype is ColumnType.FLOAT:
                arr = np.array(values, dtype=np.float64)
            else:
                arr = np.array(values, dtype=np.int64)
        else:
            arr = np.empty(len(values), dtype=object)
            arr[:] = values
        self._columnar_cache[column] = arr
        return arr

    def column_arrays(self, columns: Sequence[str]) -> dict[str, np.ndarray]:
        """Cached columnar views of several columns (see :meth:`column_array`)."""
        return {c: self.column_array(c) for c in columns}

    def column_values(self, column: str) -> list[Any]:
        """All live values of one column, in row order (aggregation feed)."""
        pos = self.schema.position(column)
        return [row[pos] for row in self._rows if row is not None]

    def columns_values(self, columns: Sequence[str]) -> list[tuple[Any, ...]]:
        """Live values of several columns, in row order."""
        positions = [self.schema.position(c) for c in columns]
        return [
            tuple(row[p] for p in positions)
            for row in self._rows
            if row is not None
        ]


class Schema:
    """A named schema (logical database) with its own binlog.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) is optional; when
    wired, the schema publishes ``warehouse_binlog_events_total`` and
    ``warehouse_apply_events_total`` labelled by schema name.  The cost
    when absent is one ``None`` check per apply.  ``trace_provider``
    (typically ``Tracer.current_context``) stamps every binlog append
    with the live trace context for cross-member propagation.
    """

    def __init__(self, name: str, *, metrics=None, trace_provider=None) -> None:
        if not name or not name.replace("_", "a").isalnum():
            raise SchemaError(f"invalid schema name {name!r}")
        self.name = name
        self._tables: dict[str, Table] = {}
        self._data_version = 0
        on_append = None
        self._apply_counter = None
        if metrics is not None:
            on_append = metrics.counter(
                "warehouse_binlog_events_total",
                "Events appended to each schema's binlog",
                ("schema",),
            ).labels(schema=name).inc
            self._apply_counter = metrics.counter(
                "warehouse_apply_events_total",
                "Replicated events applied into each schema",
                ("schema",),
            ).labels(schema=name)
        self.binlog = Binlog(on_append=on_append, trace_provider=trace_provider)
        self._lock = create_lock(f"Schema:{name}", rlock=True)  # guards: _tables, _data_version

    def _log(self, etype: EventType, table: str, data: dict[str, Any]) -> BinlogEvent:
        return self.binlog.append(etype, table, data)

    def _bump_data_version(self) -> None:
        # += on an int is read-modify-write: concurrent table mutators
        # (nightly ingest overlapping a replication tail) could lose
        # bumps and leave the serving cache thinking it is fresh.  The
        # RLock keeps the re-entrant call from create_table/drop_table
        # (which already hold it) cheap and safe.
        with self._lock:
            self._data_version += 1

    @property
    def data_version(self) -> int:
        """Monotonic counter bumped on any mutation anywhere in the schema.

        Covers row mutations in every table (via :meth:`Table._mutated`)
        plus table creation/removal, so anything derived from the schema's
        contents — most importantly the serving layer's query-result cache
        (:mod:`repro.ui.serving`) — can detect staleness with one integer
        comparison instead of walking tables.
        """
        return self._data_version

    def create_table(self, table_schema: TableSchema) -> Table:
        with self._lock:
            if table_schema.name in self._tables:
                raise DuplicateObjectError(
                    f"schema {self.name!r}: table {table_schema.name!r} exists"
                )
            table = Table(self, table_schema)
            self._tables[table_schema.name] = table
            self._bump_data_version()
            self._log(
                EventType.CREATE_TABLE, table_schema.name, table_schema.to_dict()
            )
            return table

    def drop_table(self, name: str) -> None:
        with self._lock:
            if name not in self._tables:
                raise UnknownObjectError(
                    f"schema {self.name!r}: no table {name!r}"
                )
            del self._tables[name]
            self._bump_data_version()
            self._log(EventType.DROP_TABLE, name, {})

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownObjectError(
                f"schema {self.name!r}: no table {name!r}"
            ) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def apply_event(self, event: BinlogEvent) -> None:
        """Apply a binlog event from another schema to this one.

        This is the replication "applier" side: the federation hub calls
        this for each event shipped from a satellite.  Row application goes
        through the normal table methods so the hub's own binlog also
        records the change (supporting hub-of-hubs topologies), but inserts
        use upsert semantics so replay is idempotent.
        """
        if self._apply_counter is not None:
            self._apply_counter.inc()
        if event.etype is EventType.CREATE_TABLE:
            schema = TableSchema.from_dict(event.data)
            if schema.name in self._tables:
                return  # idempotent re-provision
            self.create_table(schema)
            return
        if event.etype is EventType.DROP_TABLE:
            if event.table in self._tables:
                self.drop_table(event.table)
            return
        table = self.table(event.table)
        if event.etype is EventType.TRUNCATE:
            table.truncate()
        elif event.etype is EventType.INSERT:
            row = event.data["row"]
            if table.schema.primary_key:
                table.upsert(row)
            else:
                table.insert(row)
        elif event.etype is EventType.UPDATE:
            table.upsert(event.data["row"])
        elif event.etype is EventType.DELETE:
            if event.data.get("key") is not None and table.schema.primary_key:
                key = tuple(event.data["key"])
                pk = table.schema.primary_key
                table.delete_where(
                    lambda r, key=key, pk=pk: tuple(r[c] for c in pk) == key
                )
            else:
                target = event.data.get("row", {})
                table.delete_where(
                    lambda r, target=target: all(
                        r.get(k) == v for k, v in target.items()
                    )
                )
        else:  # pragma: no cover - exhaustive
            raise AssertionError(f"unhandled event type {event.etype}")

    def checksum(self) -> str:
        """Digest over all tables' contents (schema-name independent)."""
        h = hashlib.sha256()
        for name in self.table_names():
            h.update(name.encode())
            h.update(self._tables[name].checksum().encode())
        return h.hexdigest()


class Database:
    """Top-level container: a set of named schemas.

    One :class:`Database` per XDMoD instance.  The federation hub's database
    accumulates one extra schema per satellite (``fed_<instance>``) alongside
    its own.
    """

    def __init__(
        self, name: str = "xdmod", *, metrics=None, trace_provider=None
    ) -> None:
        self.name = name
        self.metrics = metrics
        self.trace_provider = trace_provider
        self._schemas: dict[str, Schema] = {}

    def create_schema(self, name: str) -> Schema:
        if name in self._schemas:
            raise DuplicateObjectError(f"schema {name!r} already exists")
        schema = Schema(
            name, metrics=self.metrics, trace_provider=self.trace_provider
        )
        self._schemas[name] = schema
        return schema

    def ensure_schema(self, name: str) -> Schema:
        if name in self._schemas:
            return self._schemas[name]
        return self.create_schema(name)

    def drop_schema(self, name: str) -> None:
        if name not in self._schemas:
            raise UnknownObjectError(f"no schema {name!r}")
        del self._schemas[name]

    def schema(self, name: str) -> Schema:
        try:
            return self._schemas[name]
        except KeyError:
            raise UnknownObjectError(f"no schema {name!r}") from None

    def has_schema(self, name: str) -> bool:
        return name in self._schemas

    def schema_names(self) -> list[str]:
        return sorted(self._schemas)

    def __contains__(self, name: str) -> bool:
        return name in self._schemas
