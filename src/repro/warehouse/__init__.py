"""Embedded data warehouse: the MySQL-equivalent substrate under XDMoD.

Public surface:

- :class:`Database`, :class:`Schema`, :class:`Table` — storage engine
- :class:`TableSchema`, :class:`Column`, :class:`ColumnType` — catalog types
- :class:`Query`, :class:`P`, :class:`Agg`, :func:`hash_join` — query engine
- :class:`Binlog`, :class:`BinlogCursor`, :class:`BinlogEvent`,
  :class:`EventType` — change-data-capture used by federation
- :func:`dump_schema` / :func:`load_schema` and the dump-file helpers —
  loose federation and backup transport
"""

from .binlog import Binlog, BinlogCursor, BinlogEvent, EventType, row_event_filter
from .dump import (
    dump_schema,
    load_schema,
    read_dump_file,
    write_dump_file,
)
from .engine import Database, Schema, Table
from .persist import load_database, save_database, snapshot_info
from .errors import (
    BinlogError,
    DumpError,
    DuplicateObjectError,
    IntegrityError,
    PrimaryKeyError,
    QueryError,
    SchemaError,
    TypeMismatchError,
    UnknownObjectError,
    WarehouseError,
)
from .query import Agg, AggSpec, P, Predicate, Query, hash_join, vector_group_sum
from .schema import Column, ColumnType, TableSchema, make_columns

__all__ = [
    "Agg",
    "AggSpec",
    "Binlog",
    "BinlogCursor",
    "BinlogEvent",
    "BinlogError",
    "Column",
    "ColumnType",
    "Database",
    "DumpError",
    "DuplicateObjectError",
    "EventType",
    "IntegrityError",
    "P",
    "Predicate",
    "PrimaryKeyError",
    "Query",
    "QueryError",
    "Schema",
    "SchemaError",
    "Table",
    "TableSchema",
    "TypeMismatchError",
    "UnknownObjectError",
    "WarehouseError",
    "dump_schema",
    "hash_join",
    "load_database",
    "load_schema",
    "make_columns",
    "read_dump_file",
    "row_event_filter",
    "save_database",
    "snapshot_info",
    "vector_group_sum",
    "write_dump_file",
]
