"""Query engine: predicates, projection, group-by aggregation, joins.

XDMoD's UI issues a narrow family of queries against the data warehouse:
filter facts by dimension values and a time range, group by one dimension
(and/or a time period), and aggregate a statistic.  This module implements
that family over :class:`~repro.warehouse.engine.Table` with a small
composable predicate algebra and a fluent :class:`Query` builder::

    rows = (
        Query(fact_job)
        .where(P.eq("resource", "comet") & P.between("end_ts", t0, t1))
        .group_by("month")
        .aggregate(total_cpu_hours=Agg.sum("cpu_hours"), jobs=Agg.count())
        .order_by("month")
        .run()
    )

Aggregation over large groups is vectorized with NumPy when the column is
numeric, per the HPC optimization guide (group indices are built once, then
``np.add.reduceat``-style reductions run on contiguous arrays).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from .engine import Table
from .errors import QueryError

Row = dict[str, Any]
PredicateFn = Callable[[Row], bool]


class Predicate:
    """A composable row predicate: ``&``, ``|`` and ``~`` combine them."""

    def __init__(self, fn: PredicateFn, description: str = "<pred>") -> None:
        self._fn = fn
        self.description = description

    def __call__(self, row: Row) -> bool:
        return self._fn(row)

    def __and__(self, other: "Predicate") -> "Predicate":
        return Predicate(
            lambda r: self._fn(r) and other._fn(r),
            f"({self.description} AND {other.description})",
        )

    def __or__(self, other: "Predicate") -> "Predicate":
        return Predicate(
            lambda r: self._fn(r) or other._fn(r),
            f"({self.description} OR {other.description})",
        )

    def __invert__(self) -> "Predicate":
        return Predicate(lambda r: not self._fn(r), f"(NOT {self.description})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Predicate({self.description})"


class P:
    """Factory namespace for common predicates."""

    @staticmethod
    def true() -> Predicate:
        return Predicate(lambda r: True, "TRUE")

    @staticmethod
    def eq(column: str, value: Any) -> Predicate:
        return Predicate(lambda r: r.get(column) == value, f"{column} = {value!r}")

    @staticmethod
    def ne(column: str, value: Any) -> Predicate:
        return Predicate(lambda r: r.get(column) != value, f"{column} != {value!r}")

    @staticmethod
    def _cmp(column: str, value: Any, op: Callable[[Any, Any], bool], sym: str) -> Predicate:
        def fn(r: Row) -> bool:
            v = r.get(column)
            return v is not None and op(v, value)

        return Predicate(fn, f"{column} {sym} {value!r}")

    @staticmethod
    def lt(column: str, value: Any) -> Predicate:
        return P._cmp(column, value, operator.lt, "<")

    @staticmethod
    def le(column: str, value: Any) -> Predicate:
        return P._cmp(column, value, operator.le, "<=")

    @staticmethod
    def gt(column: str, value: Any) -> Predicate:
        return P._cmp(column, value, operator.gt, ">")

    @staticmethod
    def ge(column: str, value: Any) -> Predicate:
        return P._cmp(column, value, operator.ge, ">=")

    @staticmethod
    def between(column: str, lo: Any, hi: Any) -> Predicate:
        """Inclusive-exclusive range: ``lo <= value < hi`` (time ranges)."""

        def fn(r: Row) -> bool:
            v = r.get(column)
            return v is not None and lo <= v < hi

        return Predicate(fn, f"{lo!r} <= {column} < {hi!r}")

    @staticmethod
    def isin(column: str, values: Iterable[Any]) -> Predicate:
        vset = set(values)
        return Predicate(lambda r: r.get(column) in vset, f"{column} IN {sorted(map(repr, vset))}")

    @staticmethod
    def isnull(column: str) -> Predicate:
        return Predicate(lambda r: r.get(column) is None, f"{column} IS NULL")

    @staticmethod
    def notnull(column: str) -> Predicate:
        return Predicate(lambda r: r.get(column) is not None, f"{column} IS NOT NULL")


@dataclass(frozen=True)
class AggSpec:
    """One aggregate: a function name and the column it reduces.

    ``column`` is None for ``count``.
    """

    func: str
    column: str | None = None

    _NUMERIC = {"sum", "avg", "min", "max", "weighted_avg"}

    def validate(self) -> None:
        known = {"count", "count_distinct", "sum", "avg", "min", "max", "weighted_avg"}
        if self.func not in known:
            raise QueryError(f"unknown aggregate {self.func!r}")
        if self.func != "count" and self.column is None:
            raise QueryError(f"aggregate {self.func!r} requires a column")


class Agg:
    """Factory namespace for aggregate specs."""

    @staticmethod
    def count() -> AggSpec:
        return AggSpec("count")

    @staticmethod
    def count_distinct(column: str) -> AggSpec:
        return AggSpec("count_distinct", column)

    @staticmethod
    def sum(column: str) -> AggSpec:
        return AggSpec("sum", column)

    @staticmethod
    def avg(column: str) -> AggSpec:
        return AggSpec("avg", column)

    @staticmethod
    def min(column: str) -> AggSpec:
        return AggSpec("min", column)

    @staticmethod
    def max(column: str) -> AggSpec:
        return AggSpec("max", column)

    @staticmethod
    def weighted_avg(column: str, weight: str) -> AggSpec:
        """Average of ``column`` weighted by ``weight`` (cloud realm uses
        wall-hours-weighted reservation averages)."""
        spec = AggSpec("weighted_avg", column)
        object.__setattr__(spec, "weight", weight)  # type: ignore[attr-defined]
        return spec


def _reduce_group(spec: AggSpec, rows: list[Row]) -> Any:
    """Reduce one group of rows under one aggregate spec."""
    if spec.func == "count":
        return len(rows)
    column = spec.column
    assert column is not None
    values = [r[column] for r in rows if r.get(column) is not None]
    if spec.func == "count_distinct":
        return len(set(values))
    if not values:
        return None
    if spec.func == "sum":
        return sum(values)
    if spec.func == "min":
        return min(values)
    if spec.func == "max":
        return max(values)
    if spec.func == "avg":
        return sum(values) / len(values)
    if spec.func == "weighted_avg":
        weight_col = getattr(spec, "weight")
        num = 0.0
        den = 0.0
        for r in rows:
            v = r.get(column)
            w = r.get(weight_col)
            if v is None or w is None:
                continue
            num += v * w
            den += w
        return num / den if den else None
    raise QueryError(f"unknown aggregate {spec.func!r}")  # pragma: no cover


class Query:
    """Fluent query over one table (or a pre-materialized row list)."""

    def __init__(self, source: Table | Sequence[Row]) -> None:
        self._source = source
        self._predicate: Predicate | None = None
        self._group_cols: tuple[str, ...] = ()
        self._aggregates: dict[str, AggSpec] = {}
        self._select_cols: tuple[str, ...] | None = None
        self._derived: dict[str, Callable[[Row], Any]] = {}
        self._order: tuple[tuple[str, bool], ...] = ()
        self._limit: int | None = None

    # -- builder -----------------------------------------------------------

    def where(self, predicate: Predicate) -> "Query":
        self._predicate = (
            predicate if self._predicate is None else self._predicate & predicate
        )
        return self

    def select(self, *columns: str) -> "Query":
        self._select_cols = columns
        return self

    def derive(self, **derivations: Callable[[Row], Any]) -> "Query":
        """Add computed columns evaluated per input row before grouping."""
        self._derived.update(derivations)
        return self

    def group_by(self, *columns: str) -> "Query":
        self._group_cols = columns
        return self

    def aggregate(self, **aggregates: AggSpec) -> "Query":
        for name, spec in aggregates.items():
            spec.validate()
            self._aggregates[name] = spec
        return self

    def order_by(self, *columns: str, descending: bool = False) -> "Query":
        self._order = self._order + tuple((c, descending) for c in columns)
        return self

    def limit(self, n: int) -> "Query":
        if n < 0:
            raise QueryError(f"negative limit {n}")
        self._limit = n
        return self

    # -- execution -----------------------------------------------------------

    def _input_rows(self) -> Iterable[Row]:
        if isinstance(self._source, Table):
            return self._source.rows()
        return iter(self._source)

    def run(self) -> list[Row]:
        """Execute and return result rows as dicts."""
        rows: Iterable[Row] = self._input_rows()
        if self._derived:
            derived = self._derived

            def with_derived(r: Row) -> Row:
                out = dict(r)
                for name, fn in derived.items():
                    out[name] = fn(r)
                return out

            rows = (with_derived(r) for r in rows)
        if self._predicate is not None:
            pred = self._predicate
            rows = (r for r in rows if pred(r))

        if self._aggregates:
            result = self._run_grouped(rows)
        else:
            result = [dict(r) for r in rows]
            if self._select_cols is not None:
                cols = self._select_cols
                result = [{c: r.get(c) for c in cols} for r in result]

        for column, descending in reversed(self._order):
            # stable per-column sort with NULLs always last
            nulls = [r for r in result if r.get(column) is None]
            rest = [r for r in result if r.get(column) is not None]
            rest.sort(key=lambda r: r[column], reverse=descending)
            result = rest + nulls
        if self._limit is not None:
            result = result[: self._limit]
        return result

    def _run_grouped(self, rows: Iterable[Row]) -> list[Row]:
        groups: dict[tuple[Any, ...], list[Row]] = {}
        gcols = self._group_cols
        for r in rows:
            key = tuple(r.get(c) for c in gcols)
            groups.setdefault(key, []).append(r)
        out: list[Row] = []
        for key, grouped in groups.items():
            record: Row = dict(zip(gcols, key))
            for name, spec in self._aggregates.items():
                record[name] = _reduce_group(spec, grouped)
            out.append(record)
        return out

    def scalar(self, name: str | None = None) -> Any:
        """Run a no-group aggregate query and return a single value."""
        result = self.run()
        if len(result) != 1:
            raise QueryError(f"scalar() expected 1 row, got {len(result)}")
        row = result[0]
        if name is None:
            if len(row) != 1:
                raise QueryError(
                    f"scalar() expected 1 column, got {sorted(row)}"
                )
            return next(iter(row.values()))
        return row[name]


def hash_join(
    left: Iterable[Row],
    right: Iterable[Row],
    *,
    left_key: str,
    right_key: str,
    right_prefix: str = "",
    how: str = "inner",
) -> list[Row]:
    """Hash join two row streams on single-column equality.

    Star-schema queries (fact -> dimension) always join on a surrogate key;
    ``right_prefix`` namespaces the dimension's columns on collision.
    ``how`` is ``"inner"`` or ``"left"``.
    """
    if how not in ("inner", "left"):
        raise QueryError(f"unsupported join type {how!r}")
    index: dict[Any, list[Row]] = {}
    for r in right:
        index.setdefault(r.get(right_key), []).append(r)
    out: list[Row] = []
    for l in left:
        matches = index.get(l.get(left_key), [])
        if not matches:
            if how == "left":
                out.append(dict(l))
            continue
        for m in matches:
            merged = dict(l)
            for k, v in m.items():
                name = right_prefix + k if (right_prefix and k in merged) else k
                if name in merged and merged[name] != v and not right_prefix:
                    # silent collision would corrupt results; namespace it
                    name = "right_" + k
                merged[name] = v
            out.append(merged)
    return out


def vector_group_sum(
    keys: Sequence[Any], values: Sequence[float]
) -> dict[Any, float]:
    """Vectorized grouped sum: NumPy path for large numeric reductions.

    Builds a factorization of ``keys`` then reduces with ``np.bincount`` —
    the hot path for nightly aggregation over millions of job records.
    """
    if len(keys) != len(values):
        raise QueryError("keys and values must have equal length")
    if not keys:
        return {}
    uniques: dict[Any, int] = {}
    codes = np.empty(len(keys), dtype=np.int64)
    for i, k in enumerate(keys):
        code = uniques.get(k)
        if code is None:
            code = len(uniques)
            uniques[k] = code
        codes[i] = code
    sums = np.bincount(codes, weights=np.asarray(values, dtype=np.float64))
    return {k: float(sums[c]) for k, c in uniques.items()}
