"""Command-line interface: the ``xdmod-*`` operational commands.

Open XDMoD ships shell tools (``xdmod-shredder``, ``xdmod-ingestor``, …)
that site administrators wire into cron.  ``xdmod-repro`` bundles the
equivalents for this reproduction:

- ``demo``      — end-to-end single-instance demo on synthetic data
- ``shred``     — parse a sacct log file and report what it contains
- ``simulate``  — generate a synthetic sacct log for a preset resource
- ``federate``  — run the three-site Figure 1 federation and print the chart
- ``validate``  — validate a storage-snapshot JSON file against the schema
- ``report``    — generate a monthly utilization report (markdown)
- ``serve``     — run the HTTP JSON API on a demo instance
- ``snapshot``  — save/restore a demo instance database to a directory
- ``lint``      — schema-aware static analysis (repolint) over the tree
- ``obs``       — dump telemetry: Prometheus metrics, slow spans, traces
- ``analytics`` — SUPReMM-style job summarization and anomaly detection
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import Sequence


def _cmd_demo(args: argparse.Namespace) -> int:
    from .core import XdmodInstance
    from .realms import jobs_realm
    from .simulators import WorkloadGenerator, ccr_like_site, simulate_resource, to_sacct_log
    from .timeutil import ts
    from .ui import ChartBuilder, render_table

    site = ccr_like_site(scale=args.scale)
    start, end = ts(2017, 1, 1), ts(2017, 7, 1)
    records = simulate_resource(
        site.resource, WorkloadGenerator(site.workload).generate(start, end)
    )
    instance = XdmodInstance("demo")
    instance.pipeline.ingest_sacct(
        to_sacct_log(records), default_resource=site.name
    )
    instance.aggregate(["month"])
    chart = ChartBuilder(jobs_realm(), instance.schema).timeseries(
        "cpu_hours", start=start, end=end, group_by="queue",
        title=f"CPU hours by queue on {site.name} ({len(records)} jobs)",
    )
    print(render_table(chart))
    return 0


def _cmd_shred(args: argparse.Namespace) -> int:
    from .etl import parse_sacct_log

    text = Path(args.logfile).read_text()
    jobs = list(parse_sacct_log(text, strict=not args.lenient))
    states: dict[str, int] = {}
    cpu_hours = 0.0
    for job in jobs:
        states[job.state] = states.get(job.state, 0) + 1
        cpu_hours += job.cores * job.walltime_s / 3600.0
    print(f"parsed {len(jobs)} jobs, {cpu_hours:,.1f} CPU hours")
    for state in sorted(states):
        print(f"  {state}: {states[state]}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .simulators import WorkloadGenerator, ccr_like_site, simulate_resource, to_sacct_log
    from .timeutil import ts

    site = ccr_like_site(scale=args.scale, seed=args.seed)
    start = ts(args.year, 1, 1)
    end = ts(args.year + 1, 1, 1) if args.months >= 12 else ts(
        args.year, args.months + 1, 1
    )
    records = simulate_resource(
        site.resource, WorkloadGenerator(site.workload).generate(start, end)
    )
    log = to_sacct_log(records)
    if args.output == "-":
        sys.stdout.write(log)
    else:
        Path(args.output).write_text(log)
        print(f"wrote {len(records)} jobs to {args.output}")
    return 0


def _cmd_federate(args: argparse.Namespace) -> int:
    from .core import FederationHub, XdmodInstance, check_federation, standardize_federation
    from .realms import jobs_realm
    from .simulators import WorkloadGenerator, figure1_sites, simulate_resource, to_sacct_log
    from .timeutil import ts
    from .ui import ChartBuilder, render_table

    sites = figure1_sites(scale=args.scale)
    conversion, _ = standardize_federation(
        {name: preset.resource for name, preset in sites.items()}
    )
    hub = FederationHub("hub", conversion=conversion)
    start, end = ts(2017, 1, 1), ts(2018, 1, 1)
    for name, preset in sites.items():
        instance = XdmodInstance(f"site_{name}", conversion=conversion)
        records = simulate_resource(
            preset.resource, WorkloadGenerator(preset.workload).generate(start, end)
        )
        instance.pipeline.ingest_sacct(
            to_sacct_log(records), default_resource=name
        )
        hub.join(instance, mode="tight")
        print(f"federated {name}: {len(records)} jobs", file=sys.stderr)
    hub.aggregate_federation(["month"])
    check = check_federation(hub, strict=True)
    print(f"consistency: {'OK' if check.ok else 'FAILED'}", file=sys.stderr)
    if args.monitor:
        from .core import FederationMonitor

        print(FederationMonitor(hub).render(), file=sys.stderr)
    chart = ChartBuilder(jobs_realm(), hub.federated_schemas()).timeseries(
        "xdsu", start=start, end=end, group_by="resource", top_n=3,
        title="Figure 1: top resources by XD SUs charged, 2017",
    )
    print(render_table(chart))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .etl import STORAGE_SNAPSHOT_SCHEMA, JsonSchemaError, validate

    documents = json.loads(Path(args.jsonfile).read_text())
    if isinstance(documents, dict):
        documents = [documents]
    errors = 0
    for i, doc in enumerate(documents):
        try:
            validate(doc, STORAGE_SNAPSHOT_SCHEMA)
        except JsonSchemaError as exc:
            errors += 1
            print(f"document {i}: {exc}")
    print(f"{len(documents) - errors}/{len(documents)} documents valid")
    return 1 if errors else 0


def _demo_instance(scale: float, months: int = 6):
    """Shared builder: a single-site instance with aggregated data."""
    from .core import XdmodInstance
    from .simulators import (
        ConversionTable,
        WorkloadGenerator,
        ccr_like_site,
        simulate_resource,
        to_sacct_log,
    )
    from .timeutil import ts

    site = ccr_like_site(scale=scale)
    start = ts(2017, 1, 1)
    end = ts(2017, months + 1, 1) if months < 12 else ts(2018, 1, 1)
    records = simulate_resource(
        site.resource, WorkloadGenerator(site.workload).generate(start, end)
    )
    conversion = ConversionTable.benchmark_resources({site.name: site.resource})
    instance = XdmodInstance("demo", conversion=conversion)
    instance.pipeline.ingest_sacct(
        to_sacct_log(records), default_resource=site.name
    )
    instance.aggregate(["month"])
    return instance, site, (start, end)


def _cmd_report(args: argparse.Namespace) -> int:
    from .realms import jobs_realm
    from .ui import ChartBuilder, ChartSpec, ReportDefinition, ReportGenerator

    instance, site, (start, end) = _demo_instance(args.scale)
    definition = ReportDefinition(
        name="monthly_utilization",
        title=f"Monthly Utilization Report: {site.name}",
        charts=(
            ChartSpec("CPU hours by queue", "cpu_hours", group_by="queue"),
            ChartSpec("Top applications by XD SUs", "xdsu",
                      group_by="application", top_n=5),
            ChartSpec("Jobs ended", "n_jobs_ended"),
            ChartSpec("Average wait hours", "avg_wait_hours"),
        ),
    )
    generator = ReportGenerator(
        ChartBuilder(jobs_realm(), instance.schema),
        instance_label=instance.name,
    )
    report = generator.generate(definition, start=start, end=end)
    if args.output == "-":
        sys.stdout.write(report.markdown)
    else:
        Path(args.output).write_text(report.markdown)
        print(f"wrote report to {args.output}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .obs import Observability
    from .realms import cloud_realm, jobs_realm, storage_realm
    from .ui import ApiServer, ViewSpec, XdmodApi

    instance, _, (start, end) = _demo_instance(args.scale)
    obs = Observability.default()
    api = XdmodApi(
        {"jobs": jobs_realm(), "storage": storage_realm(),
         "cloud": cloud_realm()},
        instance.schema,
        obs=obs,
        cache=not args.no_cache,
    )
    # the portal's standing charts, kept warm ahead of the first request
    api.serving.register_views([
        ViewSpec("jobs", "cpu_hours", start, end, group_by="queue"),
        ViewSpec("jobs", "xdsu", start, end, group_by="application",
                 chart=True, top_n=5, title="Top applications by XD SUs"),
        ViewSpec("jobs", "n_jobs_ended", start, end),
    ])
    warmed = api.serving.materialize()
    server = ApiServer(api, host=args.host, port=args.port).start()
    cache_note = (
        "cache off" if args.no_cache else f"{warmed} views pre-materialized"
    )
    print(f"XDMoD API listening on {server.url} "
          f"(try {server.url}/realms; {cache_note}); Ctrl-C to stop")
    if args.once:  # test hook: don't block
        server.stop()
        return 0
    try:
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover
        server.stop()
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from .warehouse import load_database, save_database, snapshot_info

    if args.action == "save":
        instance, _, _ = _demo_instance(args.scale)
        save_database(instance.database, args.directory)
        print(f"saved instance database to {args.directory}")
        return 0
    if args.action == "info":
        info = snapshot_info(args.directory)
        print(f"database: {info['database']}")
        for entry in info["schemas"]:
            print(f"  {entry['name']:<20} binlog head {entry['binlog_head']}")
        return 0
    database = load_database(args.directory)
    total_rows = 0
    for schema_name in database.schema_names():
        schema = database.schema(schema_name)
        rows = sum(len(schema.table(t)) for t in schema.table_names())
        total_rows += rows
        print(f"  {schema_name}: {len(schema.table_names())} tables, {rows} rows")
    print(f"restored {database.name!r}: {total_rows} rows total")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.runner import run_lint

    return run_lint(args)


def _demo_federation(*, inject_faults: bool = False, days: int = 3):
    """Two-site federation (tight + loose) under a deterministic clock.

    The shared builder behind ``obs trace --federated`` and ``obs
    alerts``: each satellite ingests a few days of synthetic jobs inside
    an ``ingest_batch`` span, so every replicated event carries trace
    context into the hub.  With ``inject_faults`` the tight member joins
    with a backlog and a target schema that always fails, so sync cycles
    record ``failed`` outcomes and the burn-rate alert fires.
    """
    from .core import FederationHub, FederationMonitor, XdmodInstance
    from .core.faults import FaultPlan, inject_apply_faults
    from .obs import FakeClock, Observability
    from .simulators import (
        WorkloadGenerator,
        ccr_like_site,
        simulate_resource,
        to_sacct_log,
    )
    from .timeutil import ts

    def bundle(name: str) -> Observability:
        return Observability(
            clock=FakeClock(auto_advance=0.001), name=name
        )

    hub = FederationHub("hub", obs=bundle("hub"))
    start, end = ts(2017, 1, 1), ts(2017, 1, 1 + days)
    satellites = []
    for i, mode in enumerate(("tight", "loose")):
        instance = XdmodInstance(f"site{i}", obs=bundle(f"site{i}"))
        site = ccr_like_site(scale=0.05, seed=20 + i)
        records = simulate_resource(
            site.resource, WorkloadGenerator(site.workload).generate(start, end)
        )
        with instance.obs.tracer.span("ingest_batch", site=instance.name):
            instance.pipeline.ingest_sacct(
                to_sacct_log(records), default_resource=site.name
            )
        hub.join(
            instance, mode=mode,
            initial_sync=not (inject_faults and mode == "tight"),
        )
        satellites.append(instance)
    if inject_faults:
        inject_apply_faults(
            hub.member("site0").channel,
            FaultPlan(transient_rate=1.0, transient_burst=10**9),
        )
    monitor = FederationMonitor(hub)
    for _ in range(4):
        hub.sync()
        hub.ship_loose()
        monitor.evaluate_alerts()
    return hub, satellites, monitor


def _demo_fleet_federation(*, inject_faults: bool = False, days: int = 2):
    """Three-site tight federation with telemetry shipping to the hub.

    The builder behind ``obs fleet`` and the A15 dashboard artifact:
    every satellite ingests a couple of days of synthetic jobs, joins
    tight, and ships its registry into the hub's fleet TSDB on each
    healthy sync cycle.  With ``inject_faults`` the third site gets a
    fresh replication backlog and a channel that always fails *after*
    two clean cycles, then the shared clock jumps past the staleness
    window — so its shipments stop, ``fleet_telemetry_stale`` fires
    deterministically, and the dashboard shows one STALE member.
    """
    from .core import FederationHub, FederationMonitor, XdmodInstance
    from .core.faults import FaultPlan, inject_apply_faults
    from .obs import FakeClock, Observability, alert_rule
    from .simulators import (
        WorkloadGenerator,
        ccr_like_site,
        simulate_resource,
        to_sacct_log,
    )
    from .timeutil import ts

    def bundle(name: str) -> Observability:
        return Observability(
            clock=FakeClock(auto_advance=0.001), name=name
        )

    hub = FederationHub("hub", obs=bundle("hub"))
    start, end = ts(2017, 1, 1), ts(2017, 1, 1 + days)
    satellites = []
    presets = []
    for i in range(3):
        instance = XdmodInstance(f"site{i}", obs=bundle(f"site{i}"))
        site = ccr_like_site(scale=0.04, seed=40 + i)
        records = simulate_resource(
            site.resource, WorkloadGenerator(site.workload).generate(start, end)
        )
        instance.pipeline.ingest_sacct(
            to_sacct_log(records), default_resource=site.name
        )
        hub.join(instance, mode="tight")
        satellites.append(instance)
        presets.append(site)
    monitor = FederationMonitor(hub)
    for _ in range(3):
        hub.sync()
        monitor.evaluate_alerts()
    if inject_faults:
        # fresh backlog + always-failing channel: site2's sync outcomes
        # turn failed, so its telemetry stops riding the sync machinery
        quiet, site = satellites[2], presets[2]
        extra = simulate_resource(
            site.resource,
            WorkloadGenerator(site.workload).generate(end, end + 86400),
        )
        # the generator restarts job ids per generate() call; offset them
        # so the warehouse dedup doesn't swallow the whole backlog
        extra = [
            dataclasses.replace(r, job_id=r.job_id + 100_000) for r in extra
        ]
        quiet.pipeline.ingest_sacct(
            to_sacct_log(extra), default_resource=site.name
        )
        inject_apply_faults(
            hub.member(quiet.name).channel,
            FaultPlan(transient_rate=1.0, transient_burst=10**9),
        )
        hub.obs.clock.advance(
            alert_rule("fleet_telemetry_stale").max_age_s + 300.0
        )
        for _ in range(2):
            hub.sync()
            monitor.evaluate_alerts()
    return hub, satellites, monitor


def _cmd_obs(args: argparse.Namespace) -> int:
    """Telemetry dumps from a demo workload (or a saved trace file).

    Exit status is meaningful for cron wiring: 0 clean, 1 when the data
    says something is wrong (firing alerts, an empty metrics registry),
    2 for operator errors (a trace file that does not exist).
    """
    if args.action == "trace" and args.trace_file:
        path = Path(args.trace_file)
        if not path.is_file():
            print(f"trace file {path} does not exist", file=sys.stderr)
            return 2
        lines = path.read_text().splitlines()
        for line in lines[-args.tail:]:
            print(line)
        return 0

    if args.action == "alerts":
        _, _, monitor = _demo_federation(inject_faults=args.inject_faults)
        print(monitor.alerts.render())
        firing = monitor.alerts.firing()
        if firing:
            print(f"{len(firing)} alert(s) firing", file=sys.stderr)
            return 1
        return 0

    if args.action == "fleet":
        from .obs import alert_rule

        hub, _, monitor = _demo_fleet_federation(
            inject_faults=args.inject_faults
        )
        print(monitor.render_fleet())
        stale = hub.fleet.stale_members(
            alert_rule("fleet_telemetry_stale").max_age_s
        )
        if stale:
            print(
                f"{len(stale)} member(s) stale: {', '.join(stale)}",
                file=sys.stderr,
            )
            return 1
        return 0

    if args.action == "trace" and args.federated:
        from .obs import FederatedTraceAssembler

        hub, satellites, _ = _demo_federation()
        assembler = FederatedTraceAssembler(
            hub.obs.tracer, *(s.obs.tracer for s in satellites)
        )
        federated = [
            tid for tid in assembler.trace_ids()
            if len(assembler.instances_of(tid)) > 1
        ]
        if not federated:
            print("no cross-instance traces assembled", file=sys.stderr)
            return 1
        for tid in federated:
            print(assembler.render(tid))
        return 0

    instance, _, _ = _demo_instance(args.scale)
    obs = instance.obs
    if args.action == "metrics":
        text = obs.registry.render_prometheus()
        if not text:
            print("metrics registry is empty", file=sys.stderr)
            return 1
        sys.stdout.write(text)
        return 0
    if args.action == "slow":
        print(obs.tracer.render_slow_report(args.top))
        return 0
    # trace without --trace-file: tail the demo run's own spans
    lines = obs.tracer.to_jsonl().splitlines()
    if not lines:
        print("no spans recorded", file=sys.stderr)
        return 1
    for line in lines[-args.tail:]:
        print(line)
    return 0


def _demo_analytics_federation(
    *, inject_pathological: bool = False, days: int = 14,
    max_jobs: int | None = 80,
):
    """Two-site federation with job performance data and analytics.

    Each satellite ingests accounting plus per-job performance
    timeseries, runs the summarization stage locally, and replicates its
    ``fact_job_analytics`` rows to the hub through the SUPReMM summary
    filter (raw series stay home).  With ``inject_pathological`` the
    first site's first two jobs are rewritten into an idle-tail job and
    a cache-thrashing job, so the hub-side detector has real outliers to
    flag.  Everything runs under auto-advancing fake clocks, so the
    whole build — scores, baselines, anomalies, rendered panel — is
    deterministic.
    """
    from .analytics import AnalyticsPlane, summarize_schema
    from .core import FederationHub, FederationMonitor, XdmodInstance
    from .core.replicator import supremm_summary_filter
    from .obs import FakeClock, Observability
    from .simulators import (
        WorkloadGenerator,
        ccr_like_site,
        generate_performance_batch,
        inject_cache_thrash,
        inject_idle_tail,
        simulate_resource,
        to_sacct_log,
    )
    from .timeutil import ts

    def bundle(name: str) -> Observability:
        return Observability(
            clock=FakeClock(auto_advance=0.001), name=name
        )

    hub = FederationHub("hub", obs=bundle("hub"))
    start, end = ts(2017, 1, 1), ts(2017, 1, 1 + days)
    satellites = []
    pathological: list[tuple[str, int]] = []
    for i in range(2):
        name = f"site{i}"
        instance = XdmodInstance(name, obs=bundle(name))
        site = ccr_like_site(scale=0.05, seed=30 + i)
        records = simulate_resource(
            site.resource, WorkloadGenerator(site.workload).generate(start, end)
        )
        instance.pipeline.ingest_sacct(
            to_sacct_log(records), default_resource=site.name
        )
        perfs = generate_performance_batch(
            records, site.resource, max_jobs=max_jobs
        )
        if inject_pathological and i == 0 and len(perfs) >= 2:
            perfs[0] = inject_idle_tail(perfs[0])
            perfs[1] = inject_cache_thrash(perfs[1])
            pathological = [(name, perfs[0].job_id), (name, perfs[1].job_id)]
        instance.pipeline.ingest_performance(perfs)
        summarize_schema(instance.schema, obs=instance.obs, member=name)
        hub.join(instance, mode="tight", filter=supremm_summary_filter())
        satellites.append(instance)
    plane = AnalyticsPlane(hub)
    hub.add_post_aggregation_hook(plane.refresh)
    monitor = FederationMonitor(hub, analytics=plane)
    hub.sync()
    hub.aggregate_federation(["month"])
    monitor.evaluate_alerts()
    return hub, satellites, plane, monitor, pathological


def _cmd_analytics(args: argparse.Namespace) -> int:
    """Job-level analytics over the demo federation.

    Exit status mirrors ``obs``: 0 clean, 1 when the data says something
    is wrong (no jobs summarized; anomalies flagged), 2 for operator
    errors.
    """
    if args.top < 1:
        print("--top must be >= 1", file=sys.stderr)
        return 2
    _, _, plane, monitor, _ = _demo_analytics_federation(
        inject_pathological=args.inject_pathological
    )
    if args.action == "summarize":
        if not plane.last_scores:
            print("no jobs summarized", file=sys.stderr)
            return 1
        print(f"{len(plane.last_scores)} jobs summarized "
              f"(least efficient first):")
        for job in plane.worst_jobs(args.top):
            tags = f" [{','.join(job.tags)}]" if job.tags else ""
            print(f"  {job.member}/{job.resource}#{job.job_id} "
                  f"{job.application:<16} {job.score:.3f}{tags}")
        return 0
    # anomalies
    print(monitor.render())
    if plane.anomalies:
        print(f"{len(plane.anomalies)} anomalous job(s):", file=sys.stderr)
        for anomaly in plane.anomalies:
            print(f"  {anomaly.job.member}#{anomaly.job.job_id} "
                  f"{anomaly.job.application} kind={anomaly.kind} "
                  f"score={anomaly.job.score:.3f} "
                  f"baseline={anomaly.baseline:.3f} z={anomaly.zscore:.1f}",
                  file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="xdmod-repro",
        description="Federated XDMoD reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("demo", help="single-instance demo on synthetic data")
    p.add_argument("--scale", type=float, default=0.25)
    p.set_defaults(func=_cmd_demo)

    p = sub.add_parser("shred", help="parse a sacct log file")
    p.add_argument("logfile")
    p.add_argument("--lenient", action="store_true")
    p.set_defaults(func=_cmd_shred)

    p = sub.add_parser("simulate", help="generate a synthetic sacct log")
    p.add_argument("--output", "-o", default="-")
    p.add_argument("--year", type=int, default=2017)
    p.add_argument("--months", type=int, default=3)
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--seed", type=int, default=42)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("federate", help="run the Figure 1 federation demo")
    p.add_argument("--scale", type=float, default=0.2)
    p.add_argument("--monitor", action="store_true",
                   help="print the federation ops status panel")
    p.set_defaults(func=_cmd_federate)

    p = sub.add_parser("validate", help="validate storage snapshot JSON")
    p.add_argument("jsonfile")
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("report", help="generate a monthly utilization report")
    p.add_argument("--output", "-o", default="-")
    p.add_argument("--scale", type=float, default=0.15)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("serve", help="run the HTTP JSON API on a demo instance")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080)
    p.add_argument("--scale", type=float, default=0.15)
    p.add_argument(
        "--no-cache", action="store_true",
        help="disable the query-result cache (every read recomputes)",
    )
    p.add_argument("--once", action="store_true", help=argparse.SUPPRESS)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("snapshot", help="save/load an instance database")
    p.add_argument("action", choices=["save", "load", "info"])
    p.add_argument("directory")
    p.add_argument("--scale", type=float, default=0.1)
    p.set_defaults(func=_cmd_snapshot)

    p = sub.add_parser(
        "lint", help="schema-aware static analysis (repolint)"
    )
    from .analysis.runner import add_lint_arguments

    add_lint_arguments(p)
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "obs", help="dump telemetry from a demo workload"
    )
    p.add_argument(
        "action", choices=["metrics", "slow", "trace", "alerts", "fleet"],
        help="metrics: Prometheus text; slow: slow-span report; "
             "trace: span JSONL (tail) or --federated trace trees; "
             "alerts: evaluate the SLO rule catalog on a demo federation; "
             "fleet: the fleet telemetry dashboard over shipped metrics",
    )
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--top", type=int, default=10,
                   help="rows in the slow-span report")
    p.add_argument("--tail", type=int, default=20,
                   help="trace lines to show")
    p.add_argument("--trace-file", default="",
                   help="tail an existing span JSONL instead of running "
                        "the demo workload")
    p.add_argument("--federated", action="store_true",
                   help="with trace: run a two-site federation and print "
                        "the assembled cross-instance trace trees")
    p.add_argument("--inject-faults", action="store_true",
                   help="with alerts: make the tight member fail so the "
                        "burn-rate rules fire; with fleet: silence one "
                        "member so the staleness rule fires (demo/CI "
                        "artifact)")
    p.set_defaults(func=_cmd_obs)

    p = sub.add_parser(
        "analytics",
        help="job-level analytics on a demo federation",
    )
    p.add_argument(
        "action", choices=["summarize", "anomalies"],
        help="summarize: rank jobs by efficiency score; "
             "anomalies: run the hub-side detector and print the panel",
    )
    p.add_argument("--top", type=int, default=10,
                   help="rows in the worst-jobs listing")
    p.add_argument("--inject-pathological", action="store_true",
                   help="rewrite two site0 jobs into idle-tail and "
                        "cache-thrash pathologies (demo/CI artifact)")
    p.set_defaults(func=_cmd_analytics)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
