"""Application Kernels: proactive QoS probes.

"The Application Kernel module enables quality-of-service monitoring for
HPC resources" — small, fixed benchmark jobs run on a schedule at several
core counts; their performance history establishes a baseline, and
deviations flag resource degradation (Simakov et al., CPE 2015).

The runner here synthesizes those periodic executions against a
:class:`~repro.simulators.cluster.ResourceSpec`, with injectable
degradation windows so the QoS detector (:mod:`repro.appkernels.qos`) has
real anomalies to find.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..simulators.cluster import ResourceSpec
from ..timeutil import SECONDS_PER_DAY
from ..warehouse import ColumnType, Schema, TableSchema, make_columns

C = ColumnType


@dataclass(frozen=True)
class AppKernelSpec:
    """One QoS benchmark application."""

    name: str
    core_counts: tuple[int, ...]
    #: nominal runtime seconds on the reference core count
    nominal_runtime_s: float
    #: parallel efficiency exponent: runtime ~ nominal * (ref/cores)^alpha
    scaling_alpha: float = 0.9
    #: run-to-run noise (relative std dev)
    noise: float = 0.03


DEFAULT_KERNELS: tuple[AppKernelSpec, ...] = (
    AppKernelSpec("nwchem", (8, 16, 32), 1800.0),
    AppKernelSpec("namd", (16, 32, 64), 1200.0),
    AppKernelSpec("hpcc", (8, 16, 32, 64), 900.0),
    AppKernelSpec("ior", (8, 16), 600.0, scaling_alpha=0.3, noise=0.08),
    AppKernelSpec("graph500", (16, 32), 1500.0, scaling_alpha=0.6),
)


@dataclass(frozen=True)
class Degradation:
    """An injected performance problem on a resource."""

    start_ts: int
    end_ts: int
    #: multiplier on runtime while active (1.3 == 30% slowdown)
    slowdown: float
    #: which kernels notice it (I/O problems only hit I/O kernels); empty
    #: tuple means all kernels are affected
    kernels: tuple[str, ...] = ()

    def affects(self, kernel: str, ts: int) -> bool:
        if not (self.start_ts <= ts < self.end_ts):
            return False
        return not self.kernels or kernel in self.kernels


@dataclass(frozen=True)
class AppKernelResult:
    """One kernel execution record."""

    ts: int
    resource: str
    kernel: str
    cores: int
    runtime_s: float
    succeeded: bool


def appkernel_table_schema() -> TableSchema:
    return TableSchema(
        "fact_appkernel",
        make_columns([
            ("run_id", C.INT, False),
            ("ts", C.TIMESTAMP, False),
            ("resource", C.STR, False),
            ("kernel", C.STR, False),
            ("cores", C.INT, False),
            ("runtime_s", C.FLOAT, False),
            ("succeeded", C.BOOL, False),
        ]),
        primary_key=("run_id",),
        indexes=("kernel",),
    )


class AppKernelRunner:
    """Schedules and 'executes' app kernels over a time window."""

    def __init__(
        self,
        resource: ResourceSpec,
        *,
        kernels: Sequence[AppKernelSpec] = DEFAULT_KERNELS,
        interval_s: int = SECONDS_PER_DAY,
        seed: int = 0,
        failure_rate: float = 0.01,
    ) -> None:
        self.resource = resource
        self.kernels = tuple(kernels)
        self.interval_s = interval_s
        self.failure_rate = failure_rate
        self._rng = np.random.default_rng(seed)
        self.degradations: list[Degradation] = []

    def inject(self, degradation: Degradation) -> None:
        self.degradations.append(degradation)

    def _runtime(self, spec: AppKernelSpec, cores: int, ts: int) -> float:
        ref = spec.core_counts[0]
        runtime = spec.nominal_runtime_s * (ref / cores) ** spec.scaling_alpha
        # per-core speed of the resource scales the baseline
        runtime *= 16.0 / max(self.resource.gflops_per_core, 0.1)
        for degradation in self.degradations:
            if degradation.affects(spec.name, ts):
                runtime *= degradation.slowdown
        runtime *= float(self._rng.lognormal(0.0, spec.noise))
        return runtime

    def run(self, start_ts: int, end_ts: int) -> list[AppKernelResult]:
        """Execute every kernel at every core count on the cadence."""
        out: list[AppKernelResult] = []
        t = start_ts
        while t < end_ts:
            for spec in self.kernels:
                for cores in spec.core_counts:
                    succeeded = bool(self._rng.random() >= self.failure_rate)
                    out.append(
                        AppKernelResult(
                            ts=t,
                            resource=self.resource.name,
                            kernel=spec.name,
                            cores=cores,
                            runtime_s=(
                                self._runtime(spec, cores, t) if succeeded else 0.0
                            ),
                            succeeded=succeeded,
                        )
                    )
            t += self.interval_s
        return out


def ingest_appkernels(schema: Schema, results: Iterable[AppKernelResult]) -> int:
    """Store execution records in the warehouse."""
    if not schema.has_table("fact_appkernel"):
        schema.create_table(appkernel_table_schema())
    table = schema.table("fact_appkernel")
    next_id = len(table) + 1
    n = 0
    for result in results:
        table.insert(
            {
                "run_id": next_id,
                "ts": result.ts,
                "resource": result.resource,
                "kernel": result.kernel,
                "cores": result.cores,
                "runtime_s": result.runtime_s,
                "succeeded": result.succeeded,
            }
        )
        next_id += 1
        n += 1
    return n
