"""Optional Application Kernel (QoS) module."""

from .kernels import (
    DEFAULT_KERNELS,
    AppKernelResult,
    AppKernelRunner,
    AppKernelSpec,
    Degradation,
    appkernel_table_schema,
    ingest_appkernels,
)
from .qos import (
    QosFlag,
    QosIncident,
    availability,
    detect_flags,
    merge_incidents,
)

__all__ = [
    "AppKernelResult",
    "AppKernelRunner",
    "AppKernelSpec",
    "DEFAULT_KERNELS",
    "Degradation",
    "QosFlag",
    "QosIncident",
    "appkernel_table_schema",
    "availability",
    "detect_flags",
    "ingest_appkernels",
    "merge_incidents",
]
