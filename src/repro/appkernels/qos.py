"""Quality-of-service analysis over app-kernel histories.

Control-chart detection in the style of the XDMoD app-kernel module's
variance analysis: a rolling baseline (median + MAD, robust to the
anomalies being hunted) per (resource, kernel, core count) series, with
runs beyond ``k`` robust standard deviations flagged.  Consecutive flags
merge into :class:`QosIncident` windows, which operations staff would
triage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .kernels import AppKernelResult

#: MAD -> sigma conversion for normally distributed noise.
_MAD_SCALE = 1.4826


@dataclass(frozen=True)
class QosFlag:
    """One out-of-control kernel execution."""

    ts: int
    resource: str
    kernel: str
    cores: int
    runtime_s: float
    baseline_s: float
    sigma: float  # robust z-score


@dataclass(frozen=True)
class QosIncident:
    """A maximal run of consecutive flags on one series."""

    resource: str
    kernel: str
    cores: int
    start_ts: int
    end_ts: int
    n_runs: int
    worst_sigma: float


def _series_key(r: AppKernelResult) -> tuple[str, str, int]:
    return (r.resource, r.kernel, r.cores)


def detect_flags(
    results: Iterable[AppKernelResult],
    *,
    window: int = 20,
    threshold_sigma: float = 4.0,
    min_history: int = 8,
) -> list[QosFlag]:
    """Flag executions whose runtime departs from the rolling baseline.

    The baseline for each run is the median of up to ``window`` previous
    successful runs of the same series; scale is the MAD.  Failed runs are
    skipped (they carry no runtime), matching the module's treatment of
    crashed kernels as a separate availability signal.
    """
    by_series: dict[tuple[str, str, int], list[AppKernelResult]] = {}
    for result in results:
        if result.succeeded:
            by_series.setdefault(_series_key(result), []).append(result)
    flags: list[QosFlag] = []
    for key, series in by_series.items():
        series.sort(key=lambda r: r.ts)
        runtimes = np.array([r.runtime_s for r in series])
        for i, result in enumerate(series):
            if i < min_history:
                continue
            history = runtimes[max(0, i - window): i]
            baseline = float(np.median(history))
            mad = float(np.median(np.abs(history - baseline)))
            scale = mad * _MAD_SCALE
            if scale <= 0:
                scale = max(baseline * 0.01, 1e-9)
            sigma = (result.runtime_s - baseline) / scale
            if sigma >= threshold_sigma:
                flags.append(
                    QosFlag(
                        ts=result.ts,
                        resource=result.resource,
                        kernel=result.kernel,
                        cores=result.cores,
                        runtime_s=result.runtime_s,
                        baseline_s=baseline,
                        sigma=float(sigma),
                    )
                )
    flags.sort(key=lambda f: (f.resource, f.kernel, f.cores, f.ts))
    return flags


def merge_incidents(
    flags: Sequence[QosFlag], *, gap_s: int
) -> list[QosIncident]:
    """Merge flags on the same series within ``gap_s`` into incidents."""
    incidents: list[QosIncident] = []
    current: list[QosFlag] = []

    def close() -> None:
        if not current:
            return
        incidents.append(
            QosIncident(
                resource=current[0].resource,
                kernel=current[0].kernel,
                cores=current[0].cores,
                start_ts=current[0].ts,
                end_ts=current[-1].ts,
                n_runs=len(current),
                worst_sigma=max(f.sigma for f in current),
            )
        )
        current.clear()

    for flag in flags:
        if current and (
            (flag.resource, flag.kernel, flag.cores)
            != (current[0].resource, current[0].kernel, current[0].cores)
            or flag.ts - current[-1].ts > gap_s
        ):
            close()
        current.append(flag)
    close()
    return incidents


def availability(results: Iterable[AppKernelResult]) -> dict[str, float]:
    """Per-kernel success rate — the module's availability metric."""
    totals: dict[str, list[int]] = {}
    for result in results:
        entry = totals.setdefault(result.kernel, [0, 0])
        entry[0] += 1
        entry[1] += int(result.succeeded)
    return {
        kernel: ok / total for kernel, (total, ok) in totals.items() if total
    }
