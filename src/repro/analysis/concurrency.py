"""Lock-aware static analysis: the R8–R10 concurrency rules.

The pass reasons about locks the way the rest of repolint reasons about
schemas: build a model first, then let simple rules query it.

**Lock inference** (:func:`build_class_models`): for every class, find the
lock fields — ``self.X = threading.Lock()`` / ``RLock()`` /
``create_lock(...)`` / ``SanitizedLock(...)`` assignments — then map each
lock to the attributes it guards.  Guards come from two sources, union'd:

* the ``# guards: attr, attr`` annotation on the lock's assignment line
  (the declared contract), and
* inference: every ``self.Y`` attribute *mutated* lexically inside a
  ``with self.X:`` body is taken to be guarded by ``X``.

**R8 ``unguarded-shared-mutation``** — a mutation of a guarded attribute
outside any ``with <its lock>`` block (including under the *wrong* lock).
``__init__``/``__new__`` are exempt: no other thread can hold a reference
during construction.

**R9 ``lock-order-inversion``** — a :class:`ProjectRule`: each file
contributes its lock fields and nested-``with`` acquisition edges
(``A held while acquiring B``); the finalize phase resolves foreign lock
references across files, builds the global acquisition digraph over
``Class.attr`` nodes, and flags every cycle (the static ABBA shape the
runtime sanitizer in :mod:`repro.analysis.sanitizer` confirms
dynamically).

**R10 ``blocking-call-under-lock``** — ``sleep``/``join()``/file and
network I/O/subprocesses, or acquiring a *foreign* object's lock, inside
a ``with <lock>`` body on hot paths (``LintConfig.blocking_paths``).
Holding a lock across I/O serializes every other client on that lock for
the duration; holding it across a foreign lock acquisition creates the
nested-lock edges R9 exists to police.

Known, deliberate limits (documented in docs/static-analysis.md):

* Inference is lexical.  A mutation reached only via a helper called
  under the lock is invisible; annotate with ``# guards:`` to close the
  gap.
* R8 sees ``self``-attribute mutations only; writes to *foreign*
  objects' attributes (``entry.hits += 1``) are out of scope — give the
  foreign object its own lock and accessor methods instead.
* R9 resolves foreign locks by parameter/local type hints first, then by
  a project-unique lock-field name; an unresolvable reference drops the
  edge rather than guessing.
* A suppressed (``# repolint: ignore[lock-order-inversion]``)
  acquisition line drops its edges from the global graph.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from .model import Severity, SuppressionIndex, Violation, parse_suppressions
from .rules import Rule, RuleContext

__all__ = [
    "ALL_PROJECT_RULES",
    "BlockingCallUnderLockRule",
    "ClassLockModel",
    "FileLockSummary",
    "LockEdge",
    "LockOrderInversionRule",
    "LockRef",
    "ProjectRule",
    "UnguardedSharedMutationRule",
    "build_class_models",
]


# -- lock-field detection -----------------------------------------------------

#: constructor names (last dotted component) that create a lock
_LOCK_CTORS = frozenset({"Lock", "RLock", "SanitizedLock", "create_lock"})

#: ``# guards: a, b`` trailing the lock assignment line
_GUARDS_RE = re.compile(r"#\s*guards:\s*([A-Za-z0-9_,\s]+)")

#: method names that mutate their receiver in place
_MUTATORS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "move_to_end", "appendleft",
    "popleft", "sort", "reverse", "set",
})

#: module roots whose calls block on I/O (R10)
_BLOCKING_MODULES = frozenset({"subprocess", "socket", "requests", "urllib"})

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def _last_name(node: ast.AST | None) -> str | None:
    """Final dotted component of a name chain (``threading.RLock`` -> RLock)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _dotted_name(node: ast.AST) -> tuple[str, ...] | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _is_lock_ctor(value: ast.expr) -> bool:
    if isinstance(value, ast.IfExp):
        return _is_lock_ctor(value.body) and _is_lock_ctor(value.orelse)
    return (
        isinstance(value, ast.Call)
        and _last_name(value.func) in _LOCK_CTORS
    )


def _self_attr(node: ast.AST) -> str | None:
    """``self.X`` -> ``"X"``; anything else -> None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _body_nodes(stmts: Sequence[ast.stmt]) -> list[ast.AST]:
    """All nodes lexically inside ``stmts``, skipping nested scopes."""
    out: list[ast.AST] = []

    def descend(node: ast.AST) -> None:
        if isinstance(node, _SCOPE_NODES):
            return
        out.append(node)
        for child in ast.iter_child_nodes(node):
            descend(child)

    for stmt in stmts:
        descend(stmt)
    return out


def _own_exprs(stmt: ast.stmt) -> list[ast.expr]:
    """Expressions belonging directly to ``stmt``: its test/targets/value,
    but nothing from nested statement bodies or nested scopes."""
    out: list[ast.expr] = []

    def descend(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.stmt, ast.excepthandler)) or isinstance(
                child, ast.Lambda
            ):
                continue
            if isinstance(child, ast.expr):
                out.append(child)
            descend(child)

    descend(stmt)
    return out


def _child_blocks(stmt: ast.stmt) -> Iterator[Sequence[ast.stmt]]:
    """Nested statement blocks of ``stmt`` (if/else, try, loops, match)."""
    for name in ("body", "orelse", "finalbody"):
        block = getattr(stmt, name, None)
        if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
            yield block
    for handler in getattr(stmt, "handlers", ()) or ():
        yield handler.body
    for case in getattr(stmt, "cases", ()) or ():
        yield case.body


def _methods(cls: ast.ClassDef) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    return [
        node for node in cls.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def _function_scopes(
    tree: ast.Module,
) -> list[tuple[ast.Module | ast.FunctionDef | ast.AsyncFunctionDef, str | None]]:
    """Every lexical scope with a statement body: the module, each method
    (paired with its class name), each free function."""
    scopes: list[
        tuple[ast.Module | ast.FunctionDef | ast.AsyncFunctionDef, str | None]
    ] = [(tree, None)]
    method_ids: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for method in _methods(node):
                method_ids.add(id(method))
                scopes.append((method, node.name))
    for node in ast.walk(tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and id(node) not in method_ids
        ):
            scopes.append((node, None))
    return scopes


# -- picklable cross-file summaries (R9 map phase) ----------------------------

#: a reference to a lock at an acquisition site:
#: ``("self", owning_class, attr)`` or ``("other", receiver_repr, attr)``
LockRef = tuple[str, str, str]


@dataclass(frozen=True)
class LockEdge:
    """``held`` was held when ``acquired`` was taken (nested ``with``)."""

    held: LockRef
    acquired: LockRef
    line: int
    col: int
    where: str
    suppressed: bool = False


@dataclass(frozen=True)
class FileLockSummary:
    """Everything R9 needs from one file; must stay picklable for --jobs."""

    path: str
    #: class name -> its lock-field attribute names
    class_locks: tuple[tuple[str, tuple[str, ...]], ...] = ()
    #: nested-with acquisition edges observed in this file
    edges: tuple[LockEdge, ...] = ()
    #: (receiver_name, class_name) hints: annotated params / local ctor calls
    type_hints: tuple[tuple[str, str], ...] = ()


# -- per-class lock model -----------------------------------------------------


@dataclass
class ClassLockModel:
    """One class's locks and the attributes each guards."""

    class_name: str
    #: lock attr -> guarded attrs (annotation union inference)
    guards: dict[str, set[str]] = field(default_factory=dict)
    #: lock attr -> line of its assignment (for reports)
    lock_lines: dict[str, int] = field(default_factory=dict)

    @property
    def lock_fields(self) -> frozenset[str]:
        return frozenset(self.guards)

    def guard_for(self, attr: str) -> str | None:
        """The lock guarding ``attr``, or None if unguarded."""
        for lock, attrs in sorted(self.guards.items()):
            if attr in attrs:
                return lock
        return None


def _annotation_guards(ctx: RuleContext, line: int) -> set[str]:
    text = ctx.lines[line - 1] if 1 <= line <= len(ctx.lines) else ""
    m = _GUARDS_RE.search(text)
    if not m:
        return set()
    return {part.strip() for part in m.group(1).split(",") if part.strip()}


@dataclass
class _WithLock:
    """One lock reference among a with-statement's context managers."""

    lock_attr: str | None  # self lock attr, None for foreign locks
    ref: LockRef
    line: int
    col: int


def _with_lock_items(node: ast.With, class_name: str | None) -> list[_WithLock]:
    """Lock references among a with-statement's context managers.

    Recognizes ``with self.X:`` (self lock) and ``with obj.the_lock:``
    where the attribute *looks like* a lock (contains "lock",
    case-insensitive) — the heuristic that lets R9/R10 see cross-object
    acquisitions without a full type system.
    """
    out: list[_WithLock] = []
    for item in node.items:
        expr = item.context_expr
        attr = _self_attr(expr)
        if attr is not None:
            ref: LockRef = ("self", class_name or "<module>", attr)
            out.append(_WithLock(attr, ref, expr.lineno, expr.col_offset))
            continue
        if isinstance(expr, ast.Attribute) and "lock" in expr.attr.lower():
            receiver = ast.unparse(expr.value)
            ref = ("other", receiver, expr.attr)
            out.append(_WithLock(None, ref, expr.lineno, expr.col_offset))
    return out


def _mutated_attr(node: ast.AST) -> str | None:
    """``self.X`` attribute this node mutates, or None.

    Forms: ``self.X = v``, ``self.X op= v``, ``self.X[k] = v``,
    ``self.X.attr = v``, ``del self.X[...]``, ``self.X.append(...)`` and
    the other in-place mutators.
    """
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if target is None:
                continue
            attr = _self_attr(target)
            if attr is not None:
                return attr
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                attr = _self_attr(target.value)
                if attr is not None:
                    return attr
    if isinstance(node, ast.Delete):
        for target in node.targets:
            attr = _self_attr(target)
            if attr is not None:
                return attr
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                attr = _self_attr(target.value)
                if attr is not None:
                    return attr
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _MUTATORS
    ):
        attr = _self_attr(node.func.value)
        if attr is not None:
            return attr
    return None


def build_class_models(
    tree: ast.Module, ctx: RuleContext
) -> dict[str, ClassLockModel]:
    """Map each class owning lock field(s) to its :class:`ClassLockModel`."""
    models: dict[str, ClassLockModel] = {}
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        model = ClassLockModel(class_name=cls.name)
        # pass 1: lock fields (``self.X = <lock ctor>`` in any method)
        for method in _methods(cls):
            for node in _body_nodes(method.body):
                if not isinstance(node, ast.Assign):
                    continue
                if not _is_lock_ctor(node.value):
                    continue
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is None:
                        continue
                    model.guards.setdefault(attr, set()).update(
                        _annotation_guards(ctx, node.lineno)
                    )
                    model.lock_lines[attr] = node.lineno
        if not model.guards:
            continue
        # pass 2: infer guarded attrs from ``with self.X:`` bodies
        for method in _methods(cls):
            for node in _body_nodes(method.body):
                if not isinstance(node, ast.With):
                    continue
                for wl in _with_lock_items(node, cls.name):
                    if wl.lock_attr not in model.guards:
                        continue
                    for inner in _body_nodes(node.body):
                        attr = _mutated_attr(inner)
                        if attr is not None and attr not in model.guards:
                            model.guards[wl.lock_attr].add(attr)
        models[cls.name] = model
    return models


# -- R8: unguarded-shared-mutation --------------------------------------------


class UnguardedSharedMutationRule(Rule):
    id = "unguarded-shared-mutation"
    summary = (
        "mutation of a lock-guarded attribute outside a `with <lock>` "
        "block in a class that owns a lock"
    )

    #: construction is single-threaded by definition
    EXEMPT_METHODS = frozenset({"__init__", "__new__"})

    def check(self, tree: ast.Module, ctx: RuleContext) -> Iterator[Violation]:
        models = build_class_models(tree, ctx)
        if not models:
            return
        for cls in ast.walk(tree):
            if not isinstance(cls, ast.ClassDef) or cls.name not in models:
                continue
            model = models[cls.name]
            for method in _methods(cls):
                if method.name in self.EXEMPT_METHODS:
                    continue
                yield from self._visit(ctx, model, method.body, frozenset())

    def _visit(
        self,
        ctx: RuleContext,
        model: ClassLockModel,
        body: Sequence[ast.stmt],
        held: frozenset[str],
    ) -> Iterator[Violation]:
        for stmt in body:
            if isinstance(stmt, _SCOPE_NODES):
                continue
            if isinstance(stmt, ast.With):
                locks = {
                    wl.lock_attr
                    for wl in _with_lock_items(stmt, model.class_name)
                    if wl.lock_attr in model.guards
                }
                yield from self._visit(ctx, model, stmt.body, held | locks)
                continue
            yield from self._check_stmt(ctx, model, stmt, held)
            for block in _child_blocks(stmt):
                yield from self._visit(ctx, model, block, held)

    def _check_stmt(
        self,
        ctx: RuleContext,
        model: ClassLockModel,
        stmt: ast.stmt,
        held: frozenset[str],
    ) -> Iterator[Violation]:
        candidates: list[ast.AST] = [stmt]
        candidates.extend(
            node for node in _own_exprs(stmt) if isinstance(node, ast.Call)
        )
        for node in candidates:
            attr = _mutated_attr(node)
            if attr is None or attr in model.guards:
                continue  # re-binding the lock itself is not a data race
            lock = model.guard_for(attr)
            if lock is None or lock in held:
                continue
            if held:
                detail = (
                    f"while holding {', '.join(sorted(held))} — the wrong "
                    f"lock; {attr!r} is guarded by {lock!r}"
                )
            else:
                detail = f"without holding {lock!r}, which guards it"
            yield self.violation(
                ctx, node,
                f"{model.class_name}.{attr} mutated {detail} "
                f"(lock defined at line {model.lock_lines.get(lock, '?')}); "
                f"wrap the mutation in `with self.{lock}:` or suppress "
                "with a written reason",
            )


# -- R10: blocking-call-under-lock --------------------------------------------


class BlockingCallUnderLockRule(Rule):
    id = "blocking-call-under-lock"
    summary = (
        "sleep/join/I-O or a foreign lock acquisition inside a "
        "`with <lock>` body on a hot path"
    )

    def check(self, tree: ast.Module, ctx: RuleContext) -> Iterator[Violation]:
        if not ctx.matches(ctx.config.blocking_paths):
            return
        # from-import aliasing: ``from time import sleep [as s]``
        sleep_aliases = {"sleep"}
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "sleep":
                        sleep_aliases.add(alias.asname or alias.name)
        seen: set[tuple[int, int, str]] = set()
        for scope, class_name in _function_scopes(tree):
            for node in _body_nodes(scope.body):
                if not isinstance(node, ast.With):
                    continue
                locks = _with_lock_items(node, class_name)
                held = next(
                    (wl for wl in locks if wl.lock_attr is not None), None
                )
                if held is None:
                    continue
                for violation in self._check_body(ctx, node, held, sleep_aliases):
                    key = (violation.line, violation.col, violation.message)
                    if key not in seen:
                        seen.add(key)
                        yield violation

    def _check_body(
        self,
        ctx: RuleContext,
        with_node: ast.With,
        held: _WithLock,
        sleep_aliases: set[str],
    ) -> Iterator[Violation]:
        for node in _body_nodes(with_node.body):
            if isinstance(node, ast.With) and node is not with_node:
                for wl in _with_lock_items(node, None):
                    if wl.ref[0] == "other":
                        yield self.violation(
                            ctx, node,
                            f"foreign lock `{wl.ref[1]}.{wl.ref[2]}` acquired "
                            f"while holding self.{held.lock_attr}; nested "
                            "cross-object locking creates the deadlock edges "
                            "lock-order-inversion polices — release first",
                            severity=Severity.WARNING,
                        )
                continue
            if not isinstance(node, ast.Call):
                continue
            reason = self._blocking_reason(node, sleep_aliases)
            if reason is not None:
                yield self.violation(
                    ctx, node,
                    f"{reason} inside `with self.{held.lock_attr}:`; every "
                    "other client of this lock stalls for the duration — "
                    "move the blocking work outside the critical section",
                )

    def _blocking_reason(
        self, call: ast.Call, sleep_aliases: set[str]
    ) -> str | None:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in sleep_aliases:
                return f"blocking call {func.id}()"
            if func.id == "open":
                return "file I/O open()"
            if func.id == "urlopen":
                return "network I/O urlopen()"
            return None
        dotted = _dotted_name(func)
        if dotted:
            root, leaf = dotted[0], dotted[-1]
            if leaf == "sleep" and root == "time":
                return "blocking call time.sleep()"
            if root in _BLOCKING_MODULES:
                return f"blocking call {'.'.join(dotted)}()"
            if dotted == ("os", "system"):
                return "blocking call os.system()"
        # thread.join() — zero args distinguishes it from str.join(iterable)
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "join"
            and not call.args
            and not call.keywords
        ):
            return f"blocking call {ast.unparse(func)}()"
        return None


# -- ProjectRule base + R9 ----------------------------------------------------


class ProjectRule:
    """A rule needing the whole project: per-file ``collect`` (map) and a
    global ``finalize`` (reduce).

    ``collect`` must return a **picklable** summary — under ``--jobs N``
    it runs in worker processes and the summaries travel back to the
    parent for ``finalize``.
    """

    id: str = ""
    summary: str = ""

    def collect(self, tree: ast.Module, ctx: RuleContext) -> object:
        raise NotImplementedError

    def finalize(self, summaries: Sequence[object]) -> list[Violation]:
        raise NotImplementedError


class LockOrderInversionRule(ProjectRule):
    id = "lock-order-inversion"
    summary = (
        "cycle in the cross-module static lock-acquisition graph "
        "(the ABBA deadlock shape)"
    )

    # -- map phase ------------------------------------------------------------

    def collect(self, tree: ast.Module, ctx: RuleContext) -> FileLockSummary:
        models = build_class_models(tree, ctx)
        class_locks = tuple(
            (name, tuple(sorted(model.lock_fields)))
            for name, model in sorted(models.items())
        )
        suppressions = parse_suppressions(ctx.source)
        edges: list[LockEdge] = []
        hints: list[tuple[str, str]] = []
        for scope, class_name in _function_scopes(tree):
            self._collect_hints(scope, hints)
            self._collect_edges(
                scope.body, class_name, [], edges, suppressions
            )
        return FileLockSummary(
            path=ctx.path,
            class_locks=class_locks,
            edges=tuple(edges),
            type_hints=tuple(sorted(set(hints))),
        )

    def _collect_hints(
        self,
        scope: ast.Module | ast.FunctionDef | ast.AsyncFunctionDef,
        hints: list[tuple[str, str]],
    ) -> None:
        """(receiver, ClassName) bindings: annotated params and local ctors."""
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg in (
                list(scope.args.posonlyargs)
                + list(scope.args.args)
                + list(scope.args.kwonlyargs)
            ):
                name = _last_name(arg.annotation)
                if name and name[0].isupper():
                    hints.append((arg.arg, name))
        for node in _body_nodes(scope.body):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                ctor = _last_name(node.value.func)
                if ctor and ctor[0].isupper():
                    hints.append((node.targets[0].id, ctor))

    def _collect_edges(
        self,
        body: Sequence[ast.stmt],
        class_name: str | None,
        held: list[LockRef],
        edges: list[LockEdge],
        suppressions: SuppressionIndex,
    ) -> None:
        where = class_name or "<module>"
        for stmt in body:
            if isinstance(stmt, _SCOPE_NODES):
                continue
            if isinstance(stmt, ast.With):
                locks = _with_lock_items(stmt, class_name)
                for wl in locks:
                    for held_ref in held:
                        if held_ref == wl.ref:
                            continue  # re-entrant RLock, not an edge
                        edges.append(
                            LockEdge(
                                held=held_ref,
                                acquired=wl.ref,
                                line=wl.line,
                                col=wl.col,
                                where=where,
                                suppressed=suppressions.suppresses(
                                    wl.line, self.id
                                ),
                            )
                        )
                self._collect_edges(
                    stmt.body,
                    class_name,
                    held + [wl.ref for wl in locks],
                    edges,
                    suppressions,
                )
                continue
            for block in _child_blocks(stmt):
                self._collect_edges(block, class_name, held, edges, suppressions)

    # -- reduce phase ---------------------------------------------------------

    def finalize(self, summaries: Sequence[object]) -> list[Violation]:
        file_summaries = [s for s in summaries if isinstance(s, FileLockSummary)]

        # project-wide lock-field name -> owning classes
        owners: dict[str, set[str]] = {}
        for summary in file_summaries:
            for cls, locks in summary.class_locks:
                for lock in locks:
                    owners.setdefault(lock, set()).add(cls)

        # digraph over "Class.attr" nodes, with the first site per edge
        graph: dict[str, set[str]] = {}
        sites: dict[tuple[str, str], tuple[str, int, int, str]] = {}
        for summary in file_summaries:
            hints = dict(summary.type_hints)
            for edge in summary.edges:
                if edge.suppressed:
                    continue
                a = self._resolve(edge.held, hints, owners)
                b = self._resolve(edge.acquired, hints, owners)
                if a is None or b is None or a == b:
                    continue
                graph.setdefault(a, set()).add(b)
                key = (a, b)
                site = (summary.path, edge.line, edge.col, edge.where)
                if key not in sites or site < sites[key]:
                    sites[key] = site

        violations: list[Violation] = []
        for cycle in self._cycles(graph):
            edge_keys = [
                (cycle[i], cycle[(i + 1) % len(cycle)])
                for i in range(len(cycle))
            ]
            anchor = min(
                edge_keys, key=lambda k: sites.get(k, ("~", 0, 0, ""))
            )
            path, line, col, where = sites.get(anchor, ("<unknown>", 1, 0, "?"))
            chain = " -> ".join(cycle + (cycle[0],))
            violations.append(
                Violation(
                    rule_id=self.id,
                    path=path,
                    line=line,
                    col=col,
                    message=(
                        f"lock-order cycle {chain}: two call paths acquire "
                        "these locks in opposite orders, which deadlocks "
                        "under concurrency; pick one global order "
                        f"(edge observed in {where})"
                    ),
                    snippet="",
                    severity=Severity.ERROR,
                )
            )
        violations.sort(key=lambda v: (v.path, v.line, v.col, v.message))
        return violations

    def _resolve(
        self,
        ref: LockRef,
        hints: dict[str, str],
        owners: dict[str, set[str]],
    ) -> str | None:
        kind, owner, attr = ref
        if kind == "self":
            return f"{owner}.{attr}"
        # foreign: receiver type from hints first, unique owner second
        receiver = owner.split(".")[0].split("(")[0]
        cls = hints.get(receiver)
        if cls is not None:
            return f"{cls}.{attr}"
        candidates = owners.get(attr, set())
        if len(candidates) == 1:
            return f"{next(iter(candidates))}.{attr}"
        return None  # ambiguous or unknown: drop the edge, never guess

    def _cycles(self, graph: dict[str, set[str]]) -> list[tuple[str, ...]]:
        """Elementary cycles, each found exactly once from its minimal
        node (only nodes > start are expanded), canonically rotated."""
        cycles: set[tuple[str, ...]] = set()

        def dfs(
            start: str, node: str, path: list[str], on_path: set[str]
        ) -> None:
            for nxt in sorted(graph.get(node, ())):
                if nxt == start:
                    cycle = tuple(path)
                    idx = cycle.index(min(cycle))
                    cycles.add(cycle[idx:] + cycle[:idx])
                elif nxt not in on_path and nxt > start:
                    path.append(nxt)
                    on_path.add(nxt)
                    dfs(start, nxt, path, on_path)
                    on_path.discard(nxt)
                    path.pop()

        for start in sorted(graph):
            dfs(start, start, [start], {start})
        return sorted(cycles)


#: Project-rule registry, in reporting order.
ALL_PROJECT_RULES: tuple[ProjectRule, ...] = (LockOrderInversionRule(),)
