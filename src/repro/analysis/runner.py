"""Shared CLI runner behind ``tools/repolint.py`` and ``xdmod-repro lint``.

Exit codes (documented contract, relied on by CI):

* ``0`` — clean: no findings at all, or every finding is baselined.
  The summary line distinguishes the two (``clean (no findings)`` vs.
  ``0 new violation(s), K baselined``) so a baselined tree is never
  mistaken for a genuinely clean one.
* ``1`` — new (non-baselined) violations were found.
* ``2`` — the lint run itself failed: usage/configuration error (bad
  baseline file, unknown rule id, missing path) or an internal error in
  the engine (reported with a traceback on stderr).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import traceback
from typing import Sequence

from .baseline import load_baseline, partition, save_baseline
from .concurrency import ALL_PROJECT_RULES
from .engine import ALL_FILE_RULES, LintEngine
from .rules import DEFAULT_CONFIG, LintConfig

DEFAULT_BASELINE = ".repolint-baseline.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Register repolint's flags on ``parser`` (shared with the CLI)."""
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept all current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rule", action="append", dest="rules", metavar="RULE-ID",
        help="run only these rule ids (repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="lint files across N worker processes (0 = cpu count; "
        "default: 1). Output is identical to a sequential run.",
    )


def _all_rule_ids() -> set[str]:
    return {rule.id for rule in ALL_FILE_RULES} | {
        rule.id for rule in ALL_PROJECT_RULES
    }


def run_lint(args: argparse.Namespace, out=None) -> int:
    """Execute a lint run for parsed ``args``; returns the exit code."""
    out = out if out is not None else sys.stdout

    if args.list_rules:
        for rule in ALL_FILE_RULES:
            print(f"{rule.id}: {rule.summary}", file=out)
        for project_rule in ALL_PROJECT_RULES:
            print(
                f"{project_rule.id}: {project_rule.summary} [project-wide]",
                file=out,
            )
        return 0

    config = DEFAULT_CONFIG
    if args.rules:
        unknown = sorted(set(args.rules) - _all_rule_ids())
        if unknown:
            print(
                f"repolint: unknown rule id(s): {', '.join(unknown)} "
                f"(see --list-rules)",
                file=sys.stderr,
            )
            return 2
        config = LintConfig(enabled_rules=frozenset(args.rules))

    jobs = getattr(args, "jobs", 1)
    if jobs <= 0:
        jobs = os.cpu_count() or 1

    engine = LintEngine(config=config)
    try:
        findings = engine.lint_paths(args.paths, jobs=jobs)
    except OSError as exc:
        print(f"repolint: {exc}", file=sys.stderr)
        return 2
    except Exception:
        # Internal engine/rule failure: distinct from "violations found"
        # so CI can tell a broken linter from a dirty tree.
        print("repolint: internal error", file=sys.stderr)
        traceback.print_exc(file=sys.stderr)
        return 2

    if args.write_baseline:
        save_baseline(args.baseline, findings)
        print(
            f"repolint: wrote {len(findings)} finding(s) to {args.baseline}",
            file=out,
        )
        return 0

    if args.no_baseline:
        baseline: dict[str, dict] = {}
    else:
        try:
            baseline = load_baseline(args.baseline)
        except ValueError as exc:
            print(f"repolint: {exc}", file=sys.stderr)
            return 2
    new, known = partition(findings, baseline)

    if args.format == "json":
        payload = {
            "new": [v.to_dict() for v in new],
            "baselined": [v.to_dict() for v in known],
        }
        json.dump(payload, out, indent=2)
        out.write("\n")
    else:
        for violation in new:
            print(violation.format(), file=out)
        if not new and not known:
            summary = "repolint: clean (no findings)"
        else:
            summary = f"repolint: {len(new)} new violation(s)"
            if known:
                summary += f", {len(known)} baselined"
        print(summary, file=out)
    return 1 if new else 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repolint",
        description="Schema-aware static analysis for warehouse & "
        "federation invariants.",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))
