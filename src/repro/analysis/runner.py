"""Shared CLI runner behind ``tools/repolint.py`` and ``xdmod-repro lint``.

Exit codes: 0 clean (all findings baselined or none), 1 new violations,
2 usage/configuration error (bad baseline file, unknown rule id, missing
path).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from .baseline import load_baseline, partition, save_baseline
from .engine import LintEngine
from .rules import ALL_RULES, DEFAULT_CONFIG, LintConfig

DEFAULT_BASELINE = ".repolint-baseline.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Register repolint's flags on ``parser`` (shared with the CLI)."""
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept all current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rule", action="append", dest="rules", metavar="RULE-ID",
        help="run only these rule ids (repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )


def run_lint(args: argparse.Namespace, out=None) -> int:
    """Execute a lint run for parsed ``args``; returns the exit code."""
    out = out if out is not None else sys.stdout

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}: {rule.summary}", file=out)
        return 0

    config = DEFAULT_CONFIG
    if args.rules:
        known = {rule.id for rule in ALL_RULES}
        unknown = sorted(set(args.rules) - known)
        if unknown:
            print(
                f"repolint: unknown rule id(s): {', '.join(unknown)} "
                f"(see --list-rules)",
                file=sys.stderr,
            )
            return 2
        config = LintConfig(enabled_rules=frozenset(args.rules))

    engine = LintEngine(config=config)
    try:
        findings = engine.lint_paths(args.paths)
    except OSError as exc:
        print(f"repolint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        save_baseline(args.baseline, findings)
        print(
            f"repolint: wrote {len(findings)} finding(s) to {args.baseline}",
            file=out,
        )
        return 0

    if args.no_baseline:
        baseline: dict[str, dict] = {}
    else:
        try:
            baseline = load_baseline(args.baseline)
        except ValueError as exc:
            print(f"repolint: {exc}", file=sys.stderr)
            return 2
    new, known = partition(findings, baseline)

    if args.format == "json":
        payload = {
            "new": [v.to_dict() for v in new],
            "baselined": [v.to_dict() for v in known],
        }
        json.dump(payload, out, indent=2)
        out.write("\n")
    else:
        for violation in new:
            print(violation.format(), file=out)
        summary = f"repolint: {len(new)} new violation(s)"
        if known:
            summary += f", {len(known)} baselined"
        print(summary, file=out)
    return 1 if new else 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repolint",
        description="Schema-aware static analysis for warehouse & "
        "federation invariants.",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))
