"""repolint: schema-aware static analysis for this repository's invariants.

Public API::

    from repro.analysis import LintEngine, build_default_catalog

    engine = LintEngine()
    findings = engine.lint_paths(["src/repro"])

See ``docs/static-analysis.md`` for the rule catalog, the suppression
syntax, and the baseline workflow.

This ``__init__`` resolves its exports lazily (PEP 562).  That is not a
style choice: production modules (``repro.warehouse.binlog``,
``repro.ui.serving``, ``repro.obs.metrics``, …) import
:mod:`repro.analysis.sanitizer` to construct their locks, and an eager
``__init__`` would drag the whole lint engine — including the schema
catalog, which imports the warehouse back — into every production import,
creating a cycle (``warehouse -> analysis -> catalog -> warehouse``).
Lazily, ``import repro.analysis.sanitizer`` touches nothing but the
stdlib.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - static-analysis aid only
    from .baseline import load_baseline, partition, save_baseline
    from .catalog import SchemaCatalog, build_default_catalog
    from .concurrency import (
        ALL_PROJECT_RULES,
        BlockingCallUnderLockRule,
        ClassLockModel,
        LockOrderInversionRule,
        ProjectRule,
        UnguardedSharedMutationRule,
        build_class_models,
    )
    from .engine import ALL_FILE_RULES, LintEngine, iter_python_files
    from .model import Severity, SuppressionIndex, Violation, parse_suppressions
    from .rules import ALL_RULES, DEFAULT_CONFIG, LintConfig, Rule, RuleContext

#: export name -> defining submodule (relative to this package)
_EXPORTS: dict[str, str] = {
    "ALL_FILE_RULES": ".engine",
    "ALL_PROJECT_RULES": ".concurrency",
    "ALL_RULES": ".rules",
    "BlockingCallUnderLockRule": ".concurrency",
    "ClassLockModel": ".concurrency",
    "DEFAULT_CONFIG": ".rules",
    "LintConfig": ".rules",
    "LintEngine": ".engine",
    "LockOrderInversionRule": ".concurrency",
    "ProjectRule": ".concurrency",
    "Rule": ".rules",
    "RuleContext": ".rules",
    "SchemaCatalog": ".catalog",
    "Severity": ".model",
    "SuppressionIndex": ".model",
    "UnguardedSharedMutationRule": ".concurrency",
    "Violation": ".model",
    "build_class_models": ".concurrency",
    "build_default_catalog": ".catalog",
    "iter_python_files": ".engine",
    "load_baseline": ".baseline",
    "parse_suppressions": ".model",
    "partition": ".baseline",
    "save_baseline": ".baseline",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    module = importlib.import_module(module_name, __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache so the lookup runs once
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
