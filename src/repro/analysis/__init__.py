"""repolint: schema-aware static analysis for this repository's invariants.

Public API::

    from repro.analysis import LintEngine, build_default_catalog

    engine = LintEngine()
    findings = engine.lint_paths(["src/repro"])

See ``docs/static-analysis.md`` for the rule catalog, the suppression
syntax, and the baseline workflow.
"""

from .baseline import load_baseline, partition, save_baseline
from .catalog import SchemaCatalog, build_default_catalog
from .engine import LintEngine
from .model import Severity, SuppressionIndex, Violation, parse_suppressions
from .rules import ALL_RULES, DEFAULT_CONFIG, LintConfig, Rule, RuleContext

__all__ = [
    "ALL_RULES",
    "DEFAULT_CONFIG",
    "LintConfig",
    "LintEngine",
    "Rule",
    "RuleContext",
    "SchemaCatalog",
    "Severity",
    "SuppressionIndex",
    "Violation",
    "build_default_catalog",
    "load_baseline",
    "parse_suppressions",
    "partition",
    "save_baseline",
]
