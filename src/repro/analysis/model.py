"""Core data model of the repolint static-analysis engine.

A :class:`Violation` is one finding of one rule at one source location.
Findings carry a stable :attr:`~Violation.fingerprint` — a hash of the
rule id, file path, and the *content* of the offending line (not its line
number) — so a committed baseline keeps matching after unrelated edits
shift code up or down the file.

Suppressions use an inline comment::

    risky_line()  # repolint: ignore[rule-id] -- reason the rule is wrong here

or, for long lines, a standalone comment on the line above.  Several rule
ids may be listed (``ignore[rule-a,rule-b]``); ``ignore[*]`` silences every
rule for that line.  The ``-- reason`` trailer is optional but strongly
encouraged — it is the reviewable record of *why* the invariant does not
apply.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from enum import Enum


class Severity(Enum):
    """How bad a finding is; both fail the build, WARNING is advisory in
    ``--format json`` consumers that choose to filter."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Violation:
    """One rule finding at one source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""
    severity: Severity = Severity.ERROR

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline file."""
        normalized = " ".join(self.snippet.split())
        digest = hashlib.sha256(
            f"{self.rule_id}|{self.path}|{normalized}".encode()
        ).hexdigest()
        return digest[:16]

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id}: {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "severity": self.severity.value,
            "fingerprint": self.fingerprint,
        }


#: ``# repolint: ignore[rule-a, rule-b] -- reason`` (reason optional).
_SUPPRESS_RE = re.compile(
    r"#\s*repolint:\s*ignore\[([^\]]+)\](?:\s*--\s*(?P<reason>.*))?"
)


@dataclass
class SuppressionIndex:
    """Which rule ids are suppressed on which physical lines of one file."""

    by_line: dict[int, set[str]] = field(default_factory=dict)

    def suppresses(self, line: int, rule_id: str) -> bool:
        rules = self.by_line.get(line)
        if not rules:
            return False
        return "*" in rules or rule_id in rules


def parse_suppressions(source: str) -> SuppressionIndex:
    """Build the per-line suppression index for one file's source text.

    A suppression comment on its own line applies to the next line (the
    statement it precedes); trailing comments apply to their own line.
    """
    index = SuppressionIndex()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
        if not rules:
            continue
        standalone = text.lstrip().startswith("#")
        target = lineno + 1 if standalone else lineno
        index.by_line.setdefault(target, set()).update(rules)
    return index
