"""Schema catalog: the warehouse metadata repolint rules reason with.

This is what makes the engine *schema-aware* rather than purely syntactic:
the catalog imports the real :class:`~repro.warehouse.schema.TableSchema`
definitions from the ETL, aggregation, realm, and app-kernel modules, so a
rule can ask "is ``soft_quota_gb`` nullable?" or "does ``fact_storage``
have a column named ``soft_quota``?" and get the same answer the warehouse
enforces at runtime.

Period-parameterized aggregate tables (``agg_job_month`` …) are registered
for every configured period; :meth:`SchemaCatalog.resolve` additionally
accepts ``fnmatch``-style patterns (``agg_job_*``), which is how the rules
handle table names built with f-strings.
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import Iterable

from ..warehouse.schema import Column, ColumnType, TableSchema

#: Periods the period-parameterized aggregate tables are registered under.
CATALOG_PERIODS = ("day", "month", "quarter", "year")

#: Column types the nullable-truthiness rule cares about: types for which
#: zero is a valid stored value that is falsy in Python.
NUMERIC_TYPES = frozenset(
    {ColumnType.INT, ColumnType.FLOAT, ColumnType.TIMESTAMP}
)


class SchemaCatalog:
    """All known table schemas, with the lookups rules need."""

    def __init__(self, schemas: Iterable[TableSchema] = ()) -> None:
        self._tables: dict[str, TableSchema] = {}
        self._nullable_numeric: dict[str, set[str]] = {}
        for schema in schemas:
            self.add(schema)

    def add(self, schema: TableSchema) -> None:
        self._tables[schema.name] = schema
        for column in schema.columns:
            if self._is_nullable_numeric(schema, column):
                self._nullable_numeric.setdefault(column.name, set()).add(
                    schema.name
                )

    @staticmethod
    def _is_nullable_numeric(schema: TableSchema, column: Column) -> bool:
        return (
            column.ctype in NUMERIC_TYPES
            and column.nullable
            and column.name not in schema.primary_key
        )

    # -- lookups -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, table: str) -> bool:
        return table in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def get(self, table: str) -> TableSchema | None:
        return self._tables.get(table)

    def resolve(self, pattern: str) -> list[TableSchema]:
        """Schemas whose name matches ``pattern`` (exact or fnmatch glob)."""
        if "*" not in pattern and "?" not in pattern:
            schema = self._tables.get(pattern)
            return [schema] if schema is not None else []
        return [
            self._tables[name]
            for name in sorted(self._tables)
            if fnmatchcase(name, pattern)
        ]

    def has_column(self, pattern: str, column: str) -> bool | None:
        """Does any table matching ``pattern`` define ``column``?

        Returns None when the pattern matches no known table (the rule
        should stay silent rather than guess).
        """
        schemas = self.resolve(pattern)
        if not schemas:
            return None
        return any(column in schema.column_names for schema in schemas)

    def nullable_numeric_tables(self, column: str) -> set[str]:
        """Tables in which ``column`` is a nullable numeric column."""
        return set(self._nullable_numeric.get(column, ()))

    def is_nullable_numeric(self, column: str) -> bool:
        """Is ``column`` nullable-numeric in at least one known table?"""
        return column in self._nullable_numeric


def build_default_catalog() -> SchemaCatalog:
    """Catalog of every table schema this repository defines."""
    from ..aggregation.engine import (
        agg_cloud_schema,
        agg_job_schema,
        agg_storage_schema,
        cloud_active_vm_schema,
        cloud_seen_interval_schema,
        cloud_seen_vm_schema,
        job_seen_schema,
        storage_seen_schema,
        storage_seen_ts_schema,
        storage_seen_user_schema,
        storage_state_schema,
    )
    from ..analytics.summarize import analytics_fact_schema
    from ..appkernels.kernels import appkernel_table_schema
    from ..etl.cloudevents import cloud_fact_schemas
    from ..etl.perfingest import perf_fact_schema, timeseries_schema
    from ..etl.pipeline import marker_schema
    from ..etl.star import jobs_star_schemas
    from ..etl.storagefs import storage_fact_schema
    from ..realms.allocations import agg_allocation_schema, allocation_schemas

    catalog = SchemaCatalog()
    for schema in jobs_star_schemas():
        catalog.add(schema)
    for schema in cloud_fact_schemas():
        catalog.add(schema)
    for schema in allocation_schemas():
        catalog.add(schema)
    catalog.add(storage_fact_schema())
    catalog.add(perf_fact_schema())
    catalog.add(timeseries_schema())
    catalog.add(analytics_fact_schema())
    catalog.add(marker_schema())
    catalog.add(appkernel_table_schema())
    for period in CATALOG_PERIODS:
        for factory in (
            agg_job_schema, agg_storage_schema, agg_cloud_schema,
            job_seen_schema, storage_seen_schema, storage_state_schema,
            storage_seen_ts_schema, storage_seen_user_schema,
            cloud_seen_interval_schema, cloud_seen_vm_schema,
            cloud_active_vm_schema, agg_allocation_schema,
        ):
            catalog.add(factory(period))
    return catalog
