"""Baseline workflow: legacy findings don't block CI, new ones do.

The baseline file maps finding *fingerprints* (rule id + path + normalized
offending-line content, see :class:`~repro.analysis.model.Violation`) to
counts.  Matching is count-based: if the tree has three findings with a
fingerprint and the baseline records two, one is reported as new.  Because
fingerprints ignore line numbers, unrelated edits that shift code around
do not invalidate the baseline; fixing a baselined violation simply leaves
a stale entry, which ``--write-baseline`` prunes.
"""

from __future__ import annotations

import json
from collections import Counter

from .model import Violation

BASELINE_VERSION = 1


def load_baseline(path: str) -> dict[str, dict]:
    """Load a baseline file; returns ``{fingerprint: entry}`` (empty if
    the file does not exist)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except FileNotFoundError:
        return {}
    if not isinstance(data, dict) or "entries" not in data:
        raise ValueError(f"{path}: not a repolint baseline file")
    version = data.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {version!r} "
            f"(expected {BASELINE_VERSION})"
        )
    return dict(data["entries"])


def save_baseline(path: str, violations: list[Violation]) -> dict[str, dict]:
    """Write the baseline recording ``violations`` as accepted legacy debt."""
    counts: Counter[str] = Counter(v.fingerprint for v in violations)
    entries: dict[str, dict] = {}
    for violation in violations:
        fp = violation.fingerprint
        entries[fp] = {
            "count": counts[fp],
            "rule": violation.rule_id,
            "path": violation.path,
            "snippet": " ".join(violation.snippet.split()),
        }
    payload = {"version": BASELINE_VERSION, "entries": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return entries


def partition(
    violations: list[Violation], baseline: dict[str, dict]
) -> tuple[list[Violation], list[Violation]]:
    """Split findings into ``(new, baselined)`` against the baseline."""
    budget: Counter[str] = Counter(
        {fp: int(entry.get("count", 0)) for fp, entry in baseline.items()}
    )
    new: list[Violation] = []
    known: list[Violation] = []
    for violation in violations:
        fp = violation.fingerprint
        if budget[fp] > 0:
            budget[fp] -= 1
            known.append(violation)
        else:
            new.append(violation)
    return new, known
