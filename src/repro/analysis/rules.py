"""The repolint rule set: repo invariants this codebase has paid to learn.

Every rule here is grounded in a bug class that actually bit this project
(see ``docs/static-analysis.md`` for the full catalog with examples):

- ``nullable-truthiness`` — ``if row["soft_quota_gb"]`` treated a real
  0.0 quota as NULL (the PR-2 silent-corruption bug).  Schema-aware: only
  columns that are *nullable numeric* in a known table are flagged.
- ``mutation-without-version-bump`` — touching ``Table._rows`` (or any
  private index/cache state) outside the warehouse engine skips the
  ``data_version`` bump, so the columnar cache serves stale aggregates
  and the binlog misses the change.
- ``nondeterminism-in-replication`` — wall-clock or unseeded randomness
  in replication/retry paths breaks LSN-addressed replay (two replays of
  the same binlog must behave identically).  Path-scoped via config;
  auth session expiry legitimately reads the clock and is exempt.
- ``unknown-column-literal`` — string column references checked against
  the owning :class:`~repro.warehouse.schema.TableSchema`, so schema
  drift fails at lint time instead of as a KeyError at 2 a.m.
- ``overbroad-except`` — ``except Exception``/bare ``except`` in retry or
  quarantine loops swallows injected faults (and bare ``except`` eats
  ``KeyboardInterrupt``); resilience boundaries that really must catch
  everything carry an explicit suppression with a reason.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterator, Sequence

from .catalog import SchemaCatalog
from .model import Severity, Violation


@dataclass(frozen=True)
class LintConfig:
    """Path scoping knobs for the rules (fragments matched against the
    forward-slash-normalized file path)."""

    #: rule ids to run; None runs every registered rule
    enabled_rules: frozenset[str] | None = None
    #: the one module allowed to touch Table private state
    mutation_exempt_paths: tuple[str, ...] = ("repro/warehouse/engine.py",)
    #: replication/replay paths that must stay deterministic
    determinism_paths: tuple[str, ...] = ("repro/core/",)
    #: paths exempt from the determinism rule (auth reads the clock)
    determinism_exempt_paths: tuple[str, ...] = ("repro/auth/",)
    #: paths where string column literals are checked against schemas
    column_check_paths: tuple[str, ...] = (
        "repro/aggregation/", "repro/etl/", "repro/ui/", "repro/realms/",
    )
    #: paths whose loops must not swallow broad exceptions silently
    except_paths: tuple[str, ...] = ("repro/core/",)
    #: hot paths where blocking calls under a held lock are flagged (R10)
    blocking_paths: tuple[str, ...] = (
        "repro/ui/", "repro/core/", "repro/warehouse/", "repro/obs/",
    )


DEFAULT_CONFIG = LintConfig()


@dataclass
class RuleContext:
    """Everything a rule sees about one file."""

    path: str
    source: str
    lines: list[str]
    catalog: SchemaCatalog
    config: LintConfig

    @property
    def norm_path(self) -> str:
        return self.path.replace("\\", "/")

    def matches(self, fragments: Sequence[str]) -> bool:
        return any(fragment in self.norm_path for fragment in fragments)

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


class Rule:
    """Base class: subclasses set ``id``/``summary`` and implement check()."""

    id: str = ""
    summary: str = ""

    def check(self, tree: ast.Module, ctx: RuleContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, ctx: RuleContext, node: ast.AST, message: str,
        severity: Severity = Severity.ERROR,
    ) -> Violation:
        line = getattr(node, "lineno", 1)
        return Violation(
            rule_id=self.id,
            path=ctx.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            snippet=ctx.snippet(line),
            severity=severity,
        )


# -- shared AST helpers -------------------------------------------------------


def _dotted(node: ast.AST) -> tuple[str, ...] | None:
    """``a.b.c`` as ``("a", "b", "c")``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


_FALSY_DEFAULTS = (None, 0, 0.0, False, "")


def _column_ref(node: ast.AST) -> str | None:
    """Column name when ``node`` reads a column: ``x["col"]``/``x.get("col")``.

    ``x.get("col", default)`` only counts when the default is falsy —
    a truthy default changes the truthiness semantics legitimately.
    """
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.slice, ast.Constant)
        and isinstance(node.slice.value, str)
    ):
        return node.slice.value
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
        and node.args
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
        and not node.keywords
    ):
        if len(node.args) == 1:
            return node.args[0].value
        default = node.args[1]
        if isinstance(default, ast.Constant) and (
            default.value is None or default.value in _FALSY_DEFAULTS
        ):
            return node.args[0].value
    return None


def _scope_nodes(scope: ast.AST) -> list[ast.AST]:
    """One lexical scope in document order, without nested scopes."""
    out: list[ast.AST] = []

    def descend(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                continue
            out.append(child)
            descend(child)

    descend(scope)
    return out


# -- R1: nullable-truthiness --------------------------------------------------


class NullableTruthinessRule(Rule):
    id = "nullable-truthiness"
    summary = (
        "truthiness test on a nullable numeric column where 0/0.0 is a "
        "valid value; compare against None explicitly"
    )

    def _truth_tested(self, tree: ast.Module) -> list[ast.expr]:
        tested: list[ast.expr] = []
        seen: set[int] = set()

        def expand(node: ast.expr) -> None:
            if id(node) in seen:
                return
            seen.add(id(node))
            if isinstance(node, ast.BoolOp):
                for value in node.values:
                    expand(value)
            elif isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
                expand(node.operand)
            else:
                tested.append(node)

        for node in ast.walk(tree):
            if isinstance(node, (ast.If, ast.While, ast.IfExp)):
                expand(node.test)
            elif isinstance(node, ast.Assert):
                expand(node.test)
            elif isinstance(node, ast.comprehension):
                for cond in node.ifs:
                    expand(cond)
        # Standalone ``a or default`` / ``a and b``: every operand except
        # the last is truthiness-tested even outside an if/while.
        for node in ast.walk(tree):
            if isinstance(node, ast.BoolOp):
                for value in node.values[:-1]:
                    if id(value) not in seen:
                        expand(value)
        return tested

    def check(self, tree: ast.Module, ctx: RuleContext) -> Iterator[Violation]:
        for node in self._truth_tested(tree):
            column = _column_ref(node)
            if column is None or not ctx.catalog.is_nullable_numeric(column):
                continue
            tables = sorted(ctx.catalog.nullable_numeric_tables(column))
            yield self.violation(
                ctx, node,
                f"truthiness test on nullable numeric column {column!r} "
                f"(nullable in: {', '.join(tables)}); 0 is a valid value "
                f"that is falsy — test `is not None` instead",
            )


# -- R2: mutation-without-version-bump ---------------------------------------


class MutationWithoutVersionBumpRule(Rule):
    id = "mutation-without-version-bump"
    summary = (
        "direct access to Table private row/index/cache state outside the "
        "warehouse engine bypasses the data_version bump and the binlog"
    )

    PRIVATE_STATE = frozenset(
        {
            "_rows", "_pk_index", "_indexes", "_live_count",
            "_columnar_cache", "_data_version",
        }
    )

    def check(self, tree: ast.Module, ctx: RuleContext) -> Iterator[Violation]:
        if ctx.matches(ctx.config.mutation_exempt_paths):
            return
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in self.PRIVATE_STATE
                # ``self._rows`` inside an unrelated class is that class's
                # own attribute, not Table state; only flag foreign access
                and not (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                )
            ):
                yield self.violation(
                    ctx, node,
                    f"access to Table private state {node.attr!r} outside "
                    f"repro/warehouse/engine.py; mutations that bypass the "
                    f"engine skip the data_version bump (stale columnar "
                    f"cache) and the binlog (lost replication) — use "
                    f"insert/upsert/update_where/delete_where/truncate",
                )


# -- R3: nondeterminism-in-replication ---------------------------------------


class NondeterminismRule(Rule):
    id = "nondeterminism-in-replication"
    summary = (
        "wall-clock or unseeded randomness in replication/replay paths; "
        "LSN-addressed replay must be deterministic"
    )

    TIME_FNS = frozenset(
        {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter"}
    )
    DATETIME_FNS = frozenset({"now", "utcnow", "today"})
    RANDOM_FNS = frozenset(
        {
            "random", "randint", "uniform", "choice", "choices", "shuffle",
            "sample", "randrange", "getrandbits", "gauss", "normalvariate",
            "expovariate", "betavariate", "triangular",
        }
    )
    NP_SEEDED_OK = frozenset({"default_rng", "Generator", "SeedSequence", "RandomState"})

    def _alias_maps(
        self, tree: ast.Module
    ) -> tuple[dict[str, str], dict[str, tuple[str, str]]]:
        modules: dict[str, str] = {}
        from_names: dict[str, tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    modules[alias.asname or alias.name.split(".")[0]] = (
                        alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                root = node.module.split(".")[0]
                for alias in node.names:
                    from_names[alias.asname or alias.name] = (root, alias.name)
        return modules, from_names

    def check(self, tree: ast.Module, ctx: RuleContext) -> Iterator[Violation]:
        cfg = ctx.config
        if not ctx.matches(cfg.determinism_paths):
            return
        if ctx.matches(cfg.determinism_exempt_paths):
            return
        modules, from_names = self._alias_maps(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            parts = _dotted(node.func)
            if parts is None:
                continue
            head = parts[0]
            if head in modules:
                parts = (modules[head],) + parts[1:]
            elif head in from_names:
                parts = from_names[head] + parts[1:]
            message = self._banned(parts, node)
            if message is not None:
                yield self.violation(ctx, node, message)

    def _banned(self, parts: tuple[str, ...], call: ast.Call) -> str | None:
        unseeded = not call.args and not call.keywords
        if parts[0] == "time" and len(parts) == 2 and parts[1] in self.TIME_FNS:
            return (
                f"wall-clock read time.{parts[1]}() in a replication path; "
                f"replay of the same binlog must be deterministic — take "
                f"timestamps as parameters or use LSNs"
            )
        if (
            parts[0] == "datetime"
            and parts[-1] in self.DATETIME_FNS
            and len(parts) in (2, 3)
        ):
            return (
                f"wall-clock read {'.'.join(parts)}() in a replication "
                f"path; pass timestamps in explicitly so replay is "
                f"deterministic"
            )
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] in self.RANDOM_FNS:
                return (
                    f"unseeded module-level random.{parts[1]}() in a "
                    f"replication path; use random.Random(seed) so retry "
                    f"jitter and schedules replay identically"
                )
            if parts[1] == "Random" and unseeded:
                return (
                    "random.Random() without a seed in a replication path; "
                    "pass an explicit seed for deterministic replay"
                )
        if parts[0] == "numpy" and len(parts) >= 2 and parts[1] == "random":
            fn = parts[2] if len(parts) > 2 else ""
            if fn and fn not in self.NP_SEEDED_OK:
                return (
                    f"legacy global-state numpy.random.{fn}() in a "
                    f"replication path; use numpy.random.default_rng(seed)"
                )
            if fn in ("default_rng", "RandomState") and unseeded:
                return (
                    f"numpy.random.{fn}() without a seed in a replication "
                    f"path; pass an explicit seed for deterministic replay"
                )
        return None


# -- R4: unknown-column-literal ----------------------------------------------


class UnknownColumnRule(Rule):
    id = "unknown-column-literal"
    summary = (
        "string column reference not defined by the owning TableSchema "
        "(schema drift caught at lint time)"
    )

    #: Table methods whose first string argument names a column.
    COLUMN_ARG_METHODS = frozenset(
        {"column_array", "column_values", "lookup_index", "index_row_ids"}
    )
    #: Table methods whose first list/tuple argument holds column names.
    COLUMN_LIST_METHODS = frozenset({"column_arrays", "columns_values"})
    #: Table methods taking a row mapping whose keys are columns.
    ROW_METHODS = frozenset({"insert", "upsert"})

    def check(self, tree: ast.Module, ctx: RuleContext) -> Iterator[Violation]:
        if not ctx.matches(ctx.config.column_check_paths):
            return
        scopes: list[ast.AST] = [tree]
        scopes.extend(
            node for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            yield from self._check_scope(scope, ctx)

    @staticmethod
    def _table_pattern(call: ast.AST) -> str | None:
        """``<expr>.table("name")`` / ``.table(f"agg_{p}")`` -> name pattern."""
        if not (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr == "table"
            and len(call.args) == 1
        ):
            return None
        arg = call.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        if isinstance(arg, ast.JoinedStr):
            parts: list[str] = []
            for value in arg.values:
                if isinstance(value, ast.Constant):
                    parts.append(str(value.value))
                else:
                    parts.append("*")
            pattern = "".join(parts)
            return pattern if pattern.strip("*") else None
        return None

    def _check_scope(self, scope: ast.AST, ctx: RuleContext) -> Iterator[Violation]:
        # A name may be rebound to several tables over a scope (e.g. one
        # ``row`` variable across sequential loops); the analysis is
        # flow-insensitive, so bindings are *sets* of patterns and a
        # column only fires when no bound table defines it.
        table_vars: dict[str, set[str]] = {}
        row_vars: dict[str, set[str]] = {}

        nodes = _scope_nodes(scope)
        # pass 1: bindings (assignments and loop targets)
        for node in nodes:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                pattern = self._table_pattern(node.value)
                if pattern is not None:
                    table_vars.setdefault(target.id, set()).add(pattern)
                    continue
                # row = table_var.get((...)) — point lookup returns a row dict
                if (
                    isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Attribute)
                    and node.value.func.attr == "get"
                    and isinstance(node.value.func.value, ast.Name)
                    and node.value.func.value.id in table_vars
                ):
                    row_vars.setdefault(target.id, set()).update(
                        table_vars[node.value.func.value.id]
                    )
            elif isinstance(node, ast.For) and isinstance(node.target, ast.Name):
                source = node.iter
                if (
                    isinstance(source, ast.Call)
                    and isinstance(source.func, ast.Attribute)
                    and source.func.attr in ("rows", "raw_rows")
                ):
                    base = source.func.value
                    if isinstance(base, ast.Name) and base.id in table_vars:
                        row_vars.setdefault(node.target.id, set()).update(
                            table_vars[base.id]
                        )
                    else:
                        pattern = self._table_pattern(base)
                        if pattern is not None:
                            row_vars.setdefault(node.target.id, set()).add(
                                pattern
                            )

        if not table_vars and not row_vars:
            return

        # pass 2: column references checked against the catalog
        for node in nodes:
            if isinstance(node, ast.Subscript):
                column = _column_ref(node)
                if (
                    column is not None
                    and isinstance(node.value, ast.Name)
                    and node.value.id in row_vars
                ):
                    yield from self._verify(
                        ctx, node, row_vars[node.value.id], column
                    )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                base = node.func.value
                if not isinstance(base, ast.Name):
                    continue
                if base.id in row_vars and node.func.attr == "get":
                    column = _column_ref(node)
                    if column is not None:
                        yield from self._verify(
                            ctx, node, row_vars[base.id], column
                        )
                elif base.id in table_vars:
                    yield from self._check_table_call(
                        ctx, node, table_vars[base.id]
                    )

    def _check_table_call(
        self, ctx: RuleContext, node: ast.Call, patterns: set[str]
    ) -> Iterator[Violation]:
        attr = node.func.attr  # type: ignore[attr-defined]
        if attr in self.COLUMN_ARG_METHODS:
            if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
                node.args[0].value, str
            ):
                yield from self._verify(ctx, node, patterns, node.args[0].value)
        elif attr in self.COLUMN_LIST_METHODS:
            if node.args and isinstance(node.args[0], (ast.List, ast.Tuple)):
                for element in node.args[0].elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        yield from self._verify(
                            ctx, element, patterns, element.value
                        )
        elif attr in self.ROW_METHODS:
            if node.args and isinstance(node.args[0], ast.Dict):
                for key in node.args[0].keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        yield from self._verify(ctx, key, patterns, key.value)

    def _verify(
        self, ctx: RuleContext, node: ast.AST, patterns: set[str], column: str
    ) -> Iterator[Violation]:
        verdicts = {
            pattern: ctx.catalog.has_column(pattern, column)
            for pattern in patterns
        }
        # Silent unless every pattern resolves to known tables and none of
        # them defines the column — unresolved tables mean "don't guess".
        if verdicts and all(v is False for v in verdicts.values()):
            tables = ", ".join(
                schema.name
                for pattern in sorted(patterns)
                for schema in ctx.catalog.resolve(pattern)
            )
            yield self.violation(
                ctx, node,
                f"column {column!r} is not defined by the schema of "
                f"table(s) {', '.join(sorted(patterns))} (resolved: "
                f"{tables}); this would raise at runtime — fix the name "
                f"or update the TableSchema",
            )


# -- R5: overbroad-except -----------------------------------------------------


class OverbroadExceptRule(Rule):
    id = "overbroad-except"
    summary = (
        "bare except / except Exception in retry or quarantine loops "
        "swallows injected faults and KeyboardInterrupt"
    )

    BROAD = frozenset({"Exception", "BaseException"})

    def check(self, tree: ast.Module, ctx: RuleContext) -> Iterator[Violation]:
        in_scope = ctx.matches(ctx.config.except_paths)
        for handler, in_loop in self._handlers(tree):
            if handler.type is None:
                yield self.violation(
                    ctx, handler,
                    "bare `except:` also catches KeyboardInterrupt and "
                    "SystemExit; catch a concrete error type (at most "
                    "`except Exception`)",
                )
                continue
            names = self._names(handler.type)
            if "BaseException" in names:
                yield self.violation(
                    ctx, handler,
                    "`except BaseException` also catches KeyboardInterrupt "
                    "and SystemExit; catch a concrete error type",
                )
            elif "Exception" in names and in_loop and in_scope:
                yield self.violation(
                    ctx, handler,
                    "`except Exception` inside a loop in a retry/replication "
                    "path swallows injected faults indiscriminately; catch "
                    "the expected error types, or suppress with a reason if "
                    "this is a deliberate resilience boundary",
                )

    @staticmethod
    def _names(node: ast.expr) -> set[str]:
        names: set[str] = set()
        exprs = node.elts if isinstance(node, ast.Tuple) else [node]
        for expr in exprs:
            if isinstance(expr, ast.Name):
                names.add(expr.id)
            elif isinstance(expr, ast.Attribute):
                names.add(expr.attr)
        return names

    def _handlers(
        self, tree: ast.Module
    ) -> Iterator[tuple[ast.ExceptHandler, bool]]:
        def walk(node: ast.AST, in_loop: bool) -> Iterator[tuple[ast.ExceptHandler, bool]]:
            for child in ast.iter_child_nodes(node):
                child_in_loop = in_loop or isinstance(
                    child, (ast.For, ast.AsyncFor, ast.While)
                )
                if isinstance(child, ast.ExceptHandler):
                    yield child, in_loop
                yield from walk(child, child_in_loop)

        yield from walk(tree, False)


# -- R6: unregistered-metric-name ---------------------------------------------


class MetricNameRule(Rule):
    id = "unregistered-metric-name"
    summary = (
        "metric-name literal passed to the telemetry registry must be "
        "snake_case with a unit suffix (_total/_seconds/_bytes/_rows)"
    )

    #: mirrors ``repro.obs.metrics.METRIC_NAME_PATTERN`` — duplicated here
    #: (not imported) so the typed analysis package stays self-contained;
    #: a test asserts the two patterns are identical
    NAME_RE = re.compile(r"^[a-z][a-z0-9_]*_(total|seconds|bytes|rows|ratio)$")

    #: registry factory methods whose first argument is the metric name
    REGISTRY_METHODS = frozenset({"counter", "gauge", "histogram"})

    def check(self, tree: ast.Module, ctx: RuleContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self.REGISTRY_METHODS
                and node.args
            ):
                continue
            first = node.args[0]
            if not (
                isinstance(first, ast.Constant)
                and isinstance(first.value, str)
            ):
                continue
            if not self.NAME_RE.match(first.value):
                yield self.violation(
                    ctx, first,
                    f"metric name {first.value!r} violates the naming "
                    "convention: snake_case plus a unit suffix "
                    "(`_total`, `_seconds`, `_bytes`, `_rows`, `_ratio`)",
                )


# -- R7: unknown-alert-rule-id ------------------------------------------------


class AlertRuleIdRule(Rule):
    id = "unknown-alert-rule-id"
    summary = (
        "alert-rule id literal must name a rule shipped in the "
        "repro.obs.alerts catalog"
    )

    #: mirrors ``{r.id for r in repro.obs.alerts.DEFAULT_ALERT_RULES}`` —
    #: duplicated here (not imported) so the typed analysis package stays
    #: self-contained; a test asserts the two sets are identical
    RULE_IDS = frozenset({
        "analytics_anomaly_rate_high",
        "api_error_ratio_high",
        "circuit_breaker_flap",
        "dead_letter_growth",
        "fleet_etl_ingest_stall",
        "fleet_telemetry_stale",
        "member_stale",
        "replication_lag_high",
        "sync_failure_burn_rate",
    })

    #: call targets whose first argument is an alert-rule id: the
    #: :func:`repro.obs.alerts.alert_rule` lookup and
    #: :meth:`repro.obs.alerts.AlertEngine.state_of`
    LOOKUP_FUNCS = frozenset({"alert_rule", "state_of"})

    def check(self, tree: ast.Module, ctx: RuleContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call) and node.args):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            else:
                continue
            if name not in self.LOOKUP_FUNCS:
                continue
            first = node.args[0]
            if not (
                isinstance(first, ast.Constant)
                and isinstance(first.value, str)
            ):
                continue
            if first.value not in self.RULE_IDS:
                yield self.violation(
                    ctx, first,
                    f"alert rule id {first.value!r} names no rule in the "
                    "shipped catalog "
                    f"({', '.join(sorted(self.RULE_IDS))}); dashboards and "
                    "runbooks resolve ids against DEFAULT_ALERT_RULES",
                )


#: Registry, in reporting order.
ALL_RULES: tuple[Rule, ...] = (
    NullableTruthinessRule(),
    MutationWithoutVersionBumpRule(),
    NondeterminismRule(),
    UnknownColumnRule(),
    OverbroadExceptRule(),
    MetricNameRule(),
    AlertRuleIdRule(),
)
