"""Lint engine: runs the rule set over files and applies suppressions.

The engine is deliberately small — rules do the thinking, the engine does
the plumbing: parse once per file, dispatch, filter suppressed findings,
sort.  The schema catalog is built once per engine (importing every realm
schema is the expensive part) and shared across files.

Two rule kinds:

* :class:`~repro.analysis.rules.Rule` — sees one file at a time.
* :class:`~repro.analysis.concurrency.ProjectRule` — per-file
  ``collect`` (map) plus a global ``finalize`` (reduce) that sees every
  file's summary; this is how R9 builds the cross-module lock graph.

``lint_paths(..., jobs=N)`` fans the per-file phase out over a process
pool.  Files are independent, collect summaries are picklable, and
``executor.map`` preserves input order, so the output is byte-identical
to a sequential run.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, Sequence

from .catalog import SchemaCatalog, build_default_catalog
from .concurrency import (
    ALL_PROJECT_RULES,
    BlockingCallUnderLockRule,
    ProjectRule,
    UnguardedSharedMutationRule,
)
from .model import Severity, Violation, parse_suppressions
from .rules import ALL_RULES, DEFAULT_CONFIG, LintConfig, Rule, RuleContext

#: the complete per-file rule set: the schema rules (R1–R7, defined in
#: .rules) plus the file-scoped concurrency rules (R8/R10, defined in
#: .concurrency — they live there, not in .rules, because they share the
#: lock-inference pass with the project-wide R9)
ALL_FILE_RULES: tuple[Rule, ...] = ALL_RULES + (
    UnguardedSharedMutationRule(),
    BlockingCallUnderLockRule(),
)

#: per-file result: (file-rule findings, {project-rule id: collect summary})
FileResult = tuple[list[Violation], dict[str, object]]


class LintEngine:
    """Runs rules over source files, honoring config and suppressions."""

    def __init__(
        self,
        catalog: SchemaCatalog | None = None,
        config: LintConfig = DEFAULT_CONFIG,
        rules: Sequence[Rule] = ALL_FILE_RULES,
        project_rules: Sequence[ProjectRule] = ALL_PROJECT_RULES,
    ) -> None:
        self.catalog = catalog if catalog is not None else build_default_catalog()
        self.config = config
        if config.enabled_rules is not None:
            rules = [r for r in rules if r.id in config.enabled_rules]
            project_rules = [
                r for r in project_rules if r.id in config.enabled_rules
            ]
        self.rules: tuple[Rule, ...] = tuple(rules)
        self.project_rules: tuple[ProjectRule, ...] = tuple(project_rules)

    # -- single-source entry points ---------------------------------------

    def _lint_one(self, source: str, path: str) -> FileResult:
        """Parse once; run file rules and project-rule collects."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            line = exc.lineno or 1
            return (
                [
                    Violation(
                        rule_id="syntax-error",
                        path=path,
                        line=line,
                        col=(exc.offset or 1) - 1,
                        message=f"file does not parse: {exc.msg}",
                        snippet="",
                        severity=Severity.ERROR,
                    )
                ],
                {},
            )
        ctx = RuleContext(
            path=path,
            source=source,
            lines=source.splitlines(),
            catalog=self.catalog,
            config=self.config,
        )
        suppressions = parse_suppressions(source)
        findings = [
            violation
            for rule in self.rules
            for violation in rule.check(tree, ctx)
            if not suppressions.suppresses(violation.line, violation.rule_id)
        ]
        findings.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
        summaries = {
            rule.id: rule.collect(tree, ctx) for rule in self.project_rules
        }
        return findings, summaries

    def _finalize(self, results: Sequence[FileResult]) -> list[Violation]:
        """Run every project rule's reduce phase over the collected
        summaries; project findings sort after the per-file stream."""
        findings: list[Violation] = []
        for rule in self.project_rules:
            summaries = [
                result[1][rule.id] for result in results if rule.id in result[1]
            ]
            findings.extend(rule.finalize(summaries))
        findings.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
        return findings

    def lint_source(self, source: str, path: str) -> list[Violation]:
        """Lint one file's source text; ``path`` drives rule scoping.

        Project rules run over this single file (R9 still catches
        inversions whose both orders live in one module).
        """
        result = self._lint_one(source, path)
        return result[0] + self._finalize([result])

    def lint_sources(self, sources: Sequence[tuple[str, str]]) -> list[Violation]:
        """Lint ``(path, source)`` pairs as one project (no filesystem);
        the multi-file entry point fixture tests use for R9."""
        results = [self._lint_one(source, path) for path, source in sources]
        findings = [v for result in results for v in result[0]]
        return findings + self._finalize(results)

    def lint_file(self, path: str) -> list[Violation]:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        return self.lint_source(source, path)

    def _lint_file_result(self, path: str) -> FileResult:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        return self._lint_one(source, path)

    def lint_paths(self, paths: Iterable[str], jobs: int = 1) -> list[Violation]:
        """Lint files and directories (directories walked for ``*.py``).

        ``jobs > 1`` distributes the per-file phase across a process
        pool; output ordering is identical to the sequential run.  The
        worker engines are rebuilt from ``self.config`` (a custom
        ``catalog`` or rule list is not shipped to workers — the CLI
        always uses the defaults, which is the supported parallel case).
        """
        files: list[str] = []
        for path in paths:
            files.extend(sorted(iter_python_files(path)))
        if jobs > 1 and len(files) > 1:
            results = _parallel_lint(files, self.config, jobs)
        else:
            results = [self._lint_file_result(file_path) for file_path in files]
        findings = [v for result in results for v in result[0]]
        return findings + self._finalize(results)


# -- process-pool plumbing ----------------------------------------------------

_WORKER_ENGINE: LintEngine | None = None


def _init_worker(config: LintConfig) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = LintEngine(config=config)


def _worker_lint(path: str) -> FileResult:
    assert _WORKER_ENGINE is not None, "worker initializer did not run"
    return _WORKER_ENGINE._lint_file_result(path)


def _parallel_lint(
    files: Sequence[str], config: LintConfig, jobs: int
) -> list[FileResult]:
    from concurrent.futures import ProcessPoolExecutor

    jobs = min(jobs, len(files))
    chunksize = max(1, len(files) // (jobs * 4))
    with ProcessPoolExecutor(
        max_workers=jobs, initializer=_init_worker, initargs=(config,)
    ) as executor:
        # map() preserves input order -> deterministic output
        return list(executor.map(_worker_lint, files, chunksize=chunksize))


def iter_python_files(path: str) -> Iterable[str]:
    """Yield ``*.py`` under ``path`` (or ``path`` itself), sorted walk."""
    if os.path.isfile(path):
        yield path
        return
    for root, dirs, files in os.walk(path):
        dirs[:] = sorted(
            d for d in dirs if d not in ("__pycache__", ".git")
        )
        for name in sorted(files):
            if name.endswith(".py"):
                yield os.path.join(root, name)


#: backwards-compatible private alias
_iter_python_files = iter_python_files
