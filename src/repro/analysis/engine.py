"""Lint engine: runs the rule set over files and applies suppressions.

The engine is deliberately small — rules do the thinking, the engine does
the plumbing: parse, dispatch, filter suppressed findings, sort.  The
schema catalog is built once per engine (importing every realm schema is
the expensive part) and shared across files.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, Sequence

from .catalog import SchemaCatalog, build_default_catalog
from .model import Severity, Violation, parse_suppressions
from .rules import ALL_RULES, DEFAULT_CONFIG, LintConfig, Rule, RuleContext


class LintEngine:
    """Runs rules over source files, honoring config and suppressions."""

    def __init__(
        self,
        catalog: SchemaCatalog | None = None,
        config: LintConfig = DEFAULT_CONFIG,
        rules: Sequence[Rule] = ALL_RULES,
    ) -> None:
        self.catalog = catalog if catalog is not None else build_default_catalog()
        self.config = config
        if config.enabled_rules is not None:
            rules = [r for r in rules if r.id in config.enabled_rules]
        self.rules: tuple[Rule, ...] = tuple(rules)

    # -- single-source entry points ---------------------------------------

    def lint_source(self, source: str, path: str) -> list[Violation]:
        """Lint one file's source text; ``path`` drives rule scoping."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            line = exc.lineno or 1
            return [
                Violation(
                    rule_id="syntax-error",
                    path=path,
                    line=line,
                    col=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                    snippet="",
                    severity=Severity.ERROR,
                )
            ]
        ctx = RuleContext(
            path=path,
            source=source,
            lines=source.splitlines(),
            catalog=self.catalog,
            config=self.config,
        )
        suppressions = parse_suppressions(source)
        findings = [
            violation
            for rule in self.rules
            for violation in rule.check(tree, ctx)
            if not suppressions.suppresses(violation.line, violation.rule_id)
        ]
        findings.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
        return findings

    def lint_file(self, path: str) -> list[Violation]:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        return self.lint_source(source, path)

    def lint_paths(self, paths: Iterable[str]) -> list[Violation]:
        """Lint files and directories (directories walked for ``*.py``)."""
        findings: list[Violation] = []
        for path in paths:
            for file_path in sorted(_iter_python_files(path)):
                findings.extend(self.lint_file(file_path))
        return findings


def _iter_python_files(path: str) -> Iterable[str]:
    if os.path.isfile(path):
        yield path
        return
    for root, dirs, files in os.walk(path):
        dirs[:] = sorted(
            d for d in dirs if d not in ("__pycache__", ".git")
        )
        for name in sorted(files):
            if name.endswith(".py"):
                yield os.path.join(root, name)
