"""Runtime lock-order sanitizer: instrumented locks for test-time detection.

The static rules (R8–R10 in :mod:`repro.analysis.concurrency`) reason about
lexical ``with self._lock:`` blocks; this module catches what static
analysis cannot — *actual* lock-order inversions and long hold times at
test time, across call chains the AST never sees together.

Design:

* Production modules construct their locks through :func:`create_lock`.
  When the sanitizer is inactive (the default), ``create_lock`` returns a
  plain ``threading.Lock`` / ``threading.RLock`` — zero overhead, zero
  extra objects.  When active, it returns a :class:`SanitizedLock` that
  reports every acquire/release to the process-wide :class:`LockMonitor`.
* :class:`LockMonitor` keeps a per-thread stack of held locks.  Acquiring
  ``B`` while holding ``A`` records the directed edge ``A -> B``; if the
  reverse edge ``B -> A`` was ever observed (on any thread), that is a
  lock-order inversion — the classic ABBA deadlock shape — and both
  acquisition stacks are captured for the report.  Detection is
  order-sensitive but does not require the deadlock to actually occur,
  so single-threaded tests can prove inversion-freedom deterministically.
* Holding a lock longer than ``long_hold_s`` records a
  :class:`LongHold`, surfacing blocking-work-under-lock that R10 only
  approximates statically.
* :meth:`LockMonitor.bind_metrics` mirrors the findings into the obs
  metrics plane so ``/metrics`` scrapes expose sanitizer activity.

Activation: :func:`activate` / :func:`deactivate` (used by the
``lock_sanitizer`` pytest fixture), or the ``REPRO_LOCK_SANITIZER=1``
environment variable at import time (used by the dedicated CI step).

This module deliberately imports only the stdlib: production modules
import it for ``create_lock``, and any heavier import here would put the
lint engine on every production import path.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

__all__ = [
    "AbstractLock",
    "Inversion",
    "LockMonitor",
    "LockSite",
    "LongHold",
    "SanitizedLock",
    "activate",
    "create_lock",
    "current_monitor",
    "deactivate",
    "enabled",
]


class AbstractLock(Protocol):
    """The subset of the lock interface production code relies on.

    ``threading.Lock`` is a factory function, not a class, so this
    Protocol is what lets ``create_lock`` be typed while returning either
    a plain primitive or a :class:`SanitizedLock`.
    """

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool: ...

    def release(self) -> None: ...

    def __enter__(self) -> bool: ...

    def __exit__(self, *exc_info: object) -> Any: ...


@dataclass(frozen=True)
class LockSite:
    """Where a lock was acquired: thread + a trimmed stack snapshot."""

    lock_name: str
    thread_name: str
    stack: tuple[str, ...]

    def format(self) -> str:
        where = "\n    ".join(self.stack) if self.stack else "<no stack>"
        return f"{self.lock_name} on thread {self.thread_name}:\n    {where}"


@dataclass(frozen=True)
class Inversion:
    """Observed ``first -> second`` after the reverse order was recorded."""

    first: str
    second: str
    site: LockSite
    prior_site: LockSite

    def format(self) -> str:
        return (
            f"lock-order inversion: {self.second} acquired while holding "
            f"{self.first}, but the opposite order was also observed\n"
            f"  this order: {self.site.format()}\n"
            f"  prior opposite order: {self.prior_site.format()}"
        )


@dataclass(frozen=True)
class LongHold:
    """A lock held longer than the monitor's ``long_hold_s`` threshold."""

    lock_name: str
    held_s: float
    site: LockSite

    def format(self) -> str:
        return (
            f"long hold: {self.lock_name} held {self.held_s:.3f}s\n"
            f"  {self.site.format()}"
        )


@dataclass
class _HeldLock:
    name: str
    acquired_at: float
    site: LockSite
    depth: int = 1  # re-entrant acquisitions of the same RLock


class LockMonitor:
    """Process-wide recorder of lock acquisition order and hold times.

    Thread-safe; uses its own plain ``threading.Lock`` (never a
    SanitizedLock — the monitor must not observe itself).
    """

    def __init__(
        self,
        long_hold_s: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
        stack_depth: int = 6,
    ) -> None:
        self.long_hold_s = long_hold_s
        self._clock = clock
        self._stack_depth = stack_depth
        self._lock = threading.Lock()  # guards: _edges, _inversions, _long_holds
        # (held, acquired) -> LockSite of the first observation of that order
        self._edges: dict[tuple[str, str], LockSite] = {}
        self._inversions: list[Inversion] = []
        self._long_holds: list[LongHold] = []
        self._local = threading.local()
        self._metrics: Any = None

    # -- per-thread held stack -------------------------------------------

    def _held(self) -> list[_HeldLock]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _site(self, name: str) -> LockSite:
        frames = traceback.extract_stack(limit=self._stack_depth + 3)[:-3]
        rendered = tuple(
            f"{f.filename}:{f.lineno} in {f.name}" for f in frames[-self._stack_depth:]
        )
        return LockSite(
            lock_name=name,
            thread_name=threading.current_thread().name,
            stack=rendered,
        )

    # -- recording hooks (called by SanitizedLock) -----------------------

    def notice_acquire(self, name: str) -> None:
        held = self._held()
        for entry in reversed(held):
            if entry.name == name:  # re-entrant RLock acquire
                entry.depth += 1
                return
        site = self._site(name)
        with self._lock:
            for entry in held:
                pair = (entry.name, name)
                if pair not in self._edges:
                    self._edges[pair] = site
                reverse = self._edges.get((name, entry.name))
                if reverse is not None:
                    self._inversions.append(
                        Inversion(
                            first=entry.name,
                            second=name,
                            site=site,
                            prior_site=reverse,
                        )
                    )
                    if self._metrics is not None:
                        self._metrics["inversions"].labels(
                            first=entry.name, second=name
                        ).inc()
        held.append(_HeldLock(name=name, acquired_at=self._clock(), site=site))

    def notice_release(self, name: str) -> None:
        held = self._held()
        for i in range(len(held) - 1, -1, -1):
            if held[i].name == name:
                entry = held[i]
                entry.depth -= 1
                if entry.depth > 0:
                    return
                del held[i]
                held_s = self._clock() - entry.acquired_at
                if self._metrics is not None:
                    self._metrics["hold_seconds"].labels(lock=name).observe(held_s)
                if held_s > self.long_hold_s:
                    with self._lock:
                        self._long_holds.append(
                            LongHold(lock_name=name, held_s=held_s, site=entry.site)
                        )
                    if self._metrics is not None:
                        self._metrics["long_holds"].labels(lock=name).inc()
                return
        # Release of a lock this thread never acquired through the
        # sanitizer; nothing to unwind.

    # -- results ----------------------------------------------------------

    @property
    def inversions(self) -> tuple[Inversion, ...]:
        with self._lock:
            return tuple(self._inversions)

    @property
    def long_holds(self) -> tuple[LongHold, ...]:
        with self._lock:
            return tuple(self._long_holds)

    def edges(self) -> dict[tuple[str, str], LockSite]:
        with self._lock:
            return dict(self._edges)

    def report(self) -> str:
        with self._lock:
            inversions = tuple(self._inversions)
            long_holds = tuple(self._long_holds)
            n_edges = len(self._edges)
        lines = [
            f"lock sanitizer: {n_edges} order edge(s), "
            f"{len(inversions)} inversion(s), {len(long_holds)} long hold(s)"
        ]
        for inv in inversions:
            lines.append(inv.format())
        for hold in long_holds:
            lines.append(hold.format())
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self._edges.clear()
            self._inversions.clear()
            self._long_holds.clear()

    def bind_metrics(self, registry: Any) -> None:
        """Mirror findings into a ``MetricsRegistry`` (duck-typed to keep
        this module stdlib-only)."""
        self._metrics = {
            "inversions": registry.counter(
                "sanitizer_lock_inversions_total",
                "Lock-order inversions observed by the runtime sanitizer.",
                ("first", "second"),
            ),
            "long_holds": registry.counter(
                "sanitizer_long_holds_total",
                "Lock holds exceeding the sanitizer's long-hold threshold.",
                ("lock",),
            ),
            "hold_seconds": registry.histogram(
                "sanitizer_lock_hold_seconds",
                "Observed lock hold durations.",
                ("lock",),
                buckets=(0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0),
            ),
        }


class SanitizedLock:
    """Drop-in for ``threading.Lock``/``RLock`` that reports to a monitor.

    Only constructed when the sanitizer is active; production code gets
    plain primitives otherwise (see :func:`create_lock`).
    """

    def __init__(self, name: str, monitor: LockMonitor, *, rlock: bool = False) -> None:
        self.name = name
        self._monitor = monitor
        self._inner: Any = threading.RLock() if rlock else threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._monitor.notice_acquire(self.name)
        return got

    def release(self) -> None:
        self._inner.release()
        self._monitor.notice_release(self.name)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SanitizedLock({self.name!r})"


_active_monitor: LockMonitor | None = None


def activate(monitor: LockMonitor | None = None) -> LockMonitor:
    """Turn the sanitizer on; subsequent ``create_lock`` calls instrument."""
    global _active_monitor
    if monitor is None:
        monitor = LockMonitor()
    _active_monitor = monitor
    return monitor


def deactivate() -> None:
    global _active_monitor
    _active_monitor = None


def enabled() -> bool:
    return _active_monitor is not None


def current_monitor() -> LockMonitor | None:
    return _active_monitor


def create_lock(name: str, *, rlock: bool = False) -> AbstractLock:
    """Construct a lock, instrumented iff the sanitizer is active.

    ``name`` must be stable and unique per lock *role* (e.g.
    ``"QueryCache"``, ``"Schema:jobs"``): the monitor's order graph is
    keyed on it.  With the sanitizer off this is exactly
    ``threading.Lock()`` / ``threading.RLock()``.
    """
    monitor = _active_monitor
    if monitor is None:
        return threading.RLock() if rlock else threading.Lock()
    return SanitizedLock(name, monitor, rlock=rlock)


if os.environ.get("REPRO_LOCK_SANITIZER"):  # pragma: no cover - env-driven
    activate()
