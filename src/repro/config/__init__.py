"""Instance configuration: the JSON files an XDMoD administrator edits.

Open XDMoD is configured through JSON documents — resources, the
institutional hierarchy, aggregation levels, SSO sources, and (new with
this work) federation membership.  :class:`InstanceConfig` models that
bundle with load/save round-tripping and validation, so examples and tests
can express "edit the config file, then re-aggregate" exactly as the paper
describes administrators doing.
"""

from .apply import (
    aggregation_from_config,
    build_instance,
    conversion_from_config,
    join_federation,
)
from .settings import (
    ConfigError,
    FederationSettings,
    HierarchyLevel,
    InstanceConfig,
    ResourceSettings,
    SsoSettings,
    load_config,
    save_config,
)

__all__ = [
    "ConfigError",
    "aggregation_from_config",
    "build_instance",
    "conversion_from_config",
    "join_federation",
    "FederationSettings",
    "HierarchyLevel",
    "InstanceConfig",
    "ResourceSettings",
    "SsoSettings",
    "load_config",
    "save_config",
]
