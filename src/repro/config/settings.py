"""Configuration dataclasses and JSON round-tripping."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Mapping

from ..aggregation.levels import AggregationLevelSet, LevelConfigError


class ConfigError(ValueError):
    """An instance configuration document is invalid."""


@dataclass(frozen=True)
class ResourceSettings:
    """One entry of resources.json."""

    name: str
    resource_type: str = "hpc"  # hpc | cloud | storage
    nodes: int = 0
    cores_per_node: int = 0
    conversion_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.resource_type not in ("hpc", "cloud", "storage"):
            raise ConfigError(f"bad resource type {self.resource_type!r}")
        if self.conversion_factor <= 0:
            raise ConfigError("conversion factor must be positive")


@dataclass(frozen=True)
class HierarchyLevel:
    """One level of the institutional hierarchy (hierarchy.json)."""

    name: str
    label: str


@dataclass(frozen=True)
class SsoSettings:
    """SSO source configuration (sso.json)."""

    kind: str = ""  # shibboleth | globus | ldap | keycloak | "" (disabled)
    issuer: str = ""
    #: future-work flag (Section II-D3): multiple sources allowed
    allow_multiple: bool = False

    def __post_init__(self) -> None:
        if self.kind and self.kind not in (
            "shibboleth", "globus", "ldap", "keycloak"
        ):
            raise ConfigError(f"unknown SSO kind {self.kind!r}")


@dataclass(frozen=True)
class FederationSettings:
    """Federation membership (federation.json, this paper's addition)."""

    hub: str = ""  # hub instance name; "" when not federated
    mode: str = "tight"  # tight | loose
    exclude_resources: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.mode not in ("tight", "loose"):
            raise ConfigError(f"unknown federation mode {self.mode!r}")


@dataclass
class InstanceConfig:
    """The whole configuration bundle for one XDMoD instance."""

    instance_name: str
    organization: str = ""
    resources: tuple[ResourceSettings, ...] = ()
    hierarchy: tuple[HierarchyLevel, ...] = (
        HierarchyLevel("decanal_unit", "Decanal Unit"),
        HierarchyLevel("department", "Department"),
        HierarchyLevel("pi", "PI Group"),
    )
    aggregation_levels: tuple[AggregationLevelSet, ...] = ()
    sso: SsoSettings = field(default_factory=SsoSettings)
    federation: FederationSettings = field(default_factory=FederationSettings)

    def resource(self, name: str) -> ResourceSettings:
        for r in self.resources:
            if r.name == name:
                return r
        raise ConfigError(f"no resource {name!r} configured")

    def to_dict(self) -> dict[str, Any]:
        return {
            "instance_name": self.instance_name,
            "organization": self.organization,
            "resources": [asdict(r) for r in self.resources],
            "hierarchy": [asdict(h) for h in self.hierarchy],
            "aggregation_levels": [
                s.to_config() for s in self.aggregation_levels
            ],
            "sso": asdict(self.sso),
            "federation": {
                "hub": self.federation.hub,
                "mode": self.federation.mode,
                "exclude_resources": list(self.federation.exclude_resources),
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "InstanceConfig":
        try:
            levels = tuple(
                AggregationLevelSet.from_config(entry)
                for entry in data.get("aggregation_levels", ())
            )
        except LevelConfigError as exc:
            raise ConfigError(str(exc)) from exc
        try:
            fed = data.get("federation", {})
            kwargs: dict[str, Any] = {}
            if "hierarchy" in data:
                kwargs["hierarchy"] = tuple(
                    HierarchyLevel(**entry) for entry in data["hierarchy"]
                )
            return cls(
                instance_name=data["instance_name"],
                organization=data.get("organization", ""),
                resources=tuple(
                    ResourceSettings(**entry)
                    for entry in data.get("resources", ())
                ),
                aggregation_levels=levels,
                **kwargs,
                sso=SsoSettings(**data.get("sso", {})),
                federation=FederationSettings(
                    hub=fed.get("hub", ""),
                    mode=fed.get("mode", "tight"),
                    exclude_resources=tuple(fed.get("exclude_resources", ())),
                ),
            )
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"bad instance config: {exc}") from exc


def save_config(config: InstanceConfig, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(config.to_dict(), indent=2))
    return path


def load_config(path: str | Path) -> InstanceConfig:
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"cannot load {path}: {exc}") from exc
    return InstanceConfig.from_dict(data)
