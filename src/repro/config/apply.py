"""Apply an :class:`InstanceConfig` — JSON bundle to running instance.

Open XDMoD's ``xdmod-setup`` turns the administrator's configuration files
into a working installation.  :func:`build_instance` is that step here: it
constructs an :class:`~repro.core.XdmodInstance` whose aggregation levels,
resource conversion factors, and name come from the config bundle; and
:func:`join_federation` wires the instance into a hub according to the
bundle's federation section (mode and excluded resources).
"""

from __future__ import annotations

from ..aggregation import AggregationConfig
from ..aggregation.levels import AggregationLevelSet
from ..core import FederationHub, FederationMember, ReplicationFilter, XdmodInstance
from ..simulators.hpl import ConversionTable
from .settings import ConfigError, InstanceConfig


def aggregation_from_config(config: InstanceConfig) -> AggregationConfig:
    """Build the aggregation settings from the bundle's level sets.

    Level sets are matched by their ``field``: ``walltime_s`` replaces the
    wall-time ladder, ``cores`` the job-size ladder, ``mem_gb`` the VM
    memory bins.  Unknown fields are a configuration error (they would be
    silently ignored otherwise — the failure mode admins hate most).
    """
    kwargs: dict[str, AggregationLevelSet] = {}
    field_to_kwarg = {
        "walltime_s": "walltime_levels",
        "cores": "jobsize_levels",
        "mem_gb": "vm_memory_levels",
    }
    for level_set in config.aggregation_levels:
        kwarg = field_to_kwarg.get(level_set.field)
        if kwarg is None:
            raise ConfigError(
                f"aggregation level set {level_set.name!r} targets unknown "
                f"field {level_set.field!r} "
                f"(known: {sorted(field_to_kwarg)})"
            )
        if kwarg in kwargs:
            raise ConfigError(
                f"duplicate aggregation level configuration for field "
                f"{level_set.field!r}"
            )
        kwargs[kwarg] = level_set
    return AggregationConfig(**kwargs)


def conversion_from_config(config: InstanceConfig) -> ConversionTable:
    """Per-resource XD SU factors from the bundle's resources section."""
    return ConversionTable(
        {r.name: r.conversion_factor for r in config.resources}
    )


def build_instance(config: InstanceConfig) -> XdmodInstance:
    """Construct a configured (empty) XDMoD instance from the bundle."""
    return XdmodInstance(
        config.instance_name,
        aggregation=aggregation_from_config(config),
        conversion=conversion_from_config(config),
    )


def join_federation(
    hub: FederationHub,
    instance: XdmodInstance,
    config: InstanceConfig,
) -> FederationMember:
    """Join ``instance`` to ``hub`` per the bundle's federation section.

    The section must name this hub; its mode and resource exclusions
    become the channel configuration.
    """
    federation = config.federation
    if not federation.hub:
        raise ConfigError(
            f"instance {config.instance_name!r} is not configured for "
            "federation (federation.hub is empty)"
        )
    if federation.hub != hub.name:
        raise ConfigError(
            f"instance {config.instance_name!r} is configured for hub "
            f"{federation.hub!r}, not {hub.name!r}"
        )
    filter = ReplicationFilter(
        exclude_resources=federation.exclude_resources
    )
    return hub.join(instance, mode=federation.mode, filter=filter)
