"""Time helpers shared across the codebase.

All timestamps in the warehouse are integer epoch seconds (UTC).  XDMoD
aggregates by day / month / quarter / year; these helpers provide the
period-binning arithmetic without any timezone ambiguity.
"""

from __future__ import annotations

import calendar
import datetime as _dt
from typing import Iterator

SECONDS_PER_MINUTE = 60
SECONDS_PER_HOUR = 3600
SECONDS_PER_DAY = 86400

PERIODS = ("day", "month", "quarter", "year")


def ts(year: int, month: int = 1, day: int = 1, hour: int = 0, minute: int = 0, second: int = 0) -> int:
    """Epoch seconds for a UTC datetime."""
    return int(
        _dt.datetime(year, month, day, hour, minute, second, tzinfo=_dt.timezone.utc).timestamp()
    )


def from_ts(epoch: int) -> _dt.datetime:
    """UTC datetime for epoch seconds."""
    return _dt.datetime.fromtimestamp(epoch, tz=_dt.timezone.utc)


def iso(epoch: int) -> str:
    """ISO-8601 string (second resolution, UTC) for epoch seconds."""
    return from_ts(epoch).strftime("%Y-%m-%dT%H:%M:%S")


def parse_iso(text: str) -> int:
    """Epoch seconds for an ISO-8601 ``YYYY-MM-DDTHH:MM:SS`` string."""
    dt = _dt.datetime.strptime(text, "%Y-%m-%dT%H:%M:%S").replace(
        tzinfo=_dt.timezone.utc
    )
    return int(dt.timestamp())


def day_start(epoch: int) -> int:
    """Epoch seconds of UTC midnight on the day containing ``epoch``."""
    return epoch - (epoch % SECONDS_PER_DAY)


def month_start(epoch: int) -> int:
    d = from_ts(epoch)
    return ts(d.year, d.month, 1)


def next_month(epoch: int) -> int:
    d = from_ts(epoch)
    if d.month == 12:
        return ts(d.year + 1, 1, 1)
    return ts(d.year, d.month + 1, 1)


def quarter_start(epoch: int) -> int:
    d = from_ts(epoch)
    q_month = 3 * ((d.month - 1) // 3) + 1
    return ts(d.year, q_month, 1)


def next_quarter(epoch: int) -> int:
    d = from_ts(quarter_start(epoch))
    if d.month >= 10:
        return ts(d.year + 1, 1, 1)
    return ts(d.year, d.month + 3, 1)


def year_start(epoch: int) -> int:
    return ts(from_ts(epoch).year, 1, 1)


def next_year(epoch: int) -> int:
    return ts(from_ts(epoch).year + 1, 1, 1)


def period_start(period: str, epoch: int) -> int:
    """Start of the day/month/quarter/year period containing ``epoch``."""
    if period == "day":
        return day_start(epoch)
    if period == "month":
        return month_start(epoch)
    if period == "quarter":
        return quarter_start(epoch)
    if period == "year":
        return year_start(epoch)
    raise ValueError(f"unknown period {period!r}")


def period_next(period: str, epoch: int) -> int:
    """Start of the period after the one containing ``epoch``."""
    if period == "day":
        return day_start(epoch) + SECONDS_PER_DAY
    if period == "month":
        return next_month(epoch)
    if period == "quarter":
        return next_quarter(epoch)
    if period == "year":
        return next_year(epoch)
    raise ValueError(f"unknown period {period!r}")


def period_range(period: str, start: int, end: int) -> Iterator[tuple[int, int]]:
    """Yield ``(period_start, period_end)`` half-open windows covering
    ``[start, end)``.  The first window starts at the period boundary at or
    before ``start``."""
    if end <= start:
        return
    cursor = period_start(period, start)
    while cursor < end:
        nxt = period_next(period, cursor)
        yield cursor, nxt
        cursor = nxt


def period_bounds(period: str, start: int, end: int) -> list[int]:
    """Sorted period boundaries ``b0 <= start`` … ``bk > end``.

    ``b[i] .. b[i+1]`` is one period window; for any ``t`` in
    ``[start, end]`` the containing period's index is
    ``bisect_right(bounds, t) - 1`` (``np.searchsorted(..., side="right")``
    in the vectorized aggregation paths).
    """
    if end < start:
        raise ValueError(f"period_bounds: end {end} < start {start}")
    cursor = period_start(period, start)
    bounds = [cursor]
    while cursor <= end:
        cursor = period_next(period, cursor)
        bounds.append(cursor)
    return bounds


def period_label(period: str, epoch: int) -> str:
    """Human label XDMoD-style: 2017-03, 2017 Q1, 2017, or 2017-03-14."""
    d = from_ts(epoch)
    if period == "day":
        return d.strftime("%Y-%m-%d")
    if period == "month":
        return d.strftime("%Y-%m")
    if period == "quarter":
        return f"{d.year} Q{(d.month - 1) // 3 + 1}"
    if period == "year":
        return str(d.year)
    raise ValueError(f"unknown period {period!r}")


def days_in_month(epoch: int) -> int:
    d = from_ts(epoch)
    return calendar.monthrange(d.year, d.month)[1]


def overlap_seconds(a_start: int, a_end: int, b_start: int, b_end: int) -> int:
    """Length of the intersection of two half-open intervals, >= 0."""
    return max(0, min(a_end, b_end) - max(a_start, b_start))
