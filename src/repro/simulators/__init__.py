"""Synthetic data substrates.

The paper's evaluation uses production data (XSEDE accounting, CCR's
OpenStack cloud, Isilon/GPFS storage, PCP hardware counters, HPL runs) that
is unavailable here.  Each simulator produces the closest synthetic
equivalent and feeds the *same* ETL code paths the real tool uses; see
DESIGN.md's substitution table.
"""

from .cloudsim import (
    DEFAULT_FLAVORS,
    CloudConfig,
    CloudSimulator,
    Flavor,
    vm_sessions,
)
from .cluster import (
    ClusterSimulator,
    JobRecord,
    QueueSpec,
    ResourceSpec,
    sacct_header,
    simulate_resource,
    to_sacct_line,
    to_sacct_log,
)
from .hpl import (
    NUS_PER_XDSU,
    PHASE1_DTF_GFLOPS_PER_CORE,
    ConversionTable,
    HplResult,
    derive_conversion_factor,
    nu_to_xdsu,
    run_hpl,
    xdsu_to_nu,
)
from .perf import (
    PERF_METRICS,
    JobPerformance,
    generate_job_performance,
    generate_performance_batch,
    inject_cache_thrash,
    inject_idle_tail,
    render_job_script,
)
from .sites import SitePreset, calibrate_jobs_per_day, ccr_like_site, figure1_sites
from .storagesim import (
    DEFAULT_FILESYSTEMS,
    FilesystemSpec,
    StorageConfig,
    StorageSimulator,
)
from .workload import (
    DEFAULT_APPLICATIONS,
    DEFAULT_HIERARCHY,
    ApplicationProfile,
    JobRequest,
    Pi,
    UserAccount,
    WorkloadConfig,
    WorkloadGenerator,
)

__all__ = [
    "ApplicationProfile",
    "CloudConfig",
    "CloudSimulator",
    "ClusterSimulator",
    "ConversionTable",
    "DEFAULT_APPLICATIONS",
    "DEFAULT_FILESYSTEMS",
    "DEFAULT_FLAVORS",
    "DEFAULT_HIERARCHY",
    "Flavor",
    "FilesystemSpec",
    "HplResult",
    "JobPerformance",
    "JobRecord",
    "JobRequest",
    "NUS_PER_XDSU",
    "PERF_METRICS",
    "PHASE1_DTF_GFLOPS_PER_CORE",
    "Pi",
    "QueueSpec",
    "ResourceSpec",
    "SitePreset",
    "StorageConfig",
    "StorageSimulator",
    "UserAccount",
    "WorkloadConfig",
    "WorkloadGenerator",
    "calibrate_jobs_per_day",
    "ccr_like_site",
    "derive_conversion_factor",
    "figure1_sites",
    "generate_job_performance",
    "generate_performance_batch",
    "inject_cache_thrash",
    "inject_idle_tail",
    "nu_to_xdsu",
    "render_job_script",
    "run_hpl",
    "sacct_header",
    "simulate_resource",
    "to_sacct_line",
    "to_sacct_log",
    "vm_sessions",
    "xdsu_to_nu",
]
