"""Storage filesystem usage simulator (Isilon / GPFS substitute).

Section III-A: the Storage realm is developed against CCR's Isilon and GPFS
filesystems, and ingestion is filesystem-independent — sites emit JSON that
validates against XDMoD's provided schema.  This module produces those JSON
snapshot documents: per (filesystem, mountpoint, user) records of file
count, logical/physical usage, and quota thresholds, sampled on a fixed
cadence with realistic growth (persistent storage grows steadily; scratch
churns).

Figure 6 plots monthly file count and physical usage for all of CCR — both
series grow through 2017.  The growth model here reproduces that shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..timeutil import SECONDS_PER_DAY


@dataclass(frozen=True)
class FilesystemSpec:
    """One storage system exposed to users."""

    name: str  # e.g. "isilon_home"
    mountpoint: str  # e.g. "/home"
    resource_type: str  # "persistent" | "scratch"
    capacity_tb: float
    default_soft_quota_gb: float
    default_hard_quota_gb: float


DEFAULT_FILESYSTEMS: tuple[FilesystemSpec, ...] = (
    FilesystemSpec("isilon_home", "/home", "persistent", 500.0, 50.0, 100.0),
    FilesystemSpec("isilon_projects", "/projects", "persistent", 2000.0, 500.0, 1000.0),
    FilesystemSpec("gpfs_scratch", "/scratch", "scratch", 1000.0, 2000.0, 4000.0),
)


@dataclass
class StorageConfig:
    """Knobs for one site's storage snapshot stream."""

    resource: str = "ccr_storage"
    seed: int = 11
    n_users: int = 60
    filesystems: Sequence[FilesystemSpec] = DEFAULT_FILESYSTEMS
    snapshot_interval_s: int = 7 * SECONDS_PER_DAY
    #: multiplicative annual growth for persistent storage usage
    annual_growth: float = 1.8
    #: physical bytes per logical byte (dedup/compression < 1, replication > 1)
    physical_ratio: float = 1.25


class StorageSimulator:
    """Generates per-user storage snapshots over a time window."""

    def __init__(self, config: StorageConfig) -> None:
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        # Per-(fs, user) baseline logical usage in GB and file counts,
        # heavy-tailed: some users hoard.
        self._base_gb: dict[tuple[str, str], float] = {}
        self._base_files: dict[tuple[str, str], int] = {}
        for fs in config.filesystems:
            # scratch quotas are huge relative to typical occupancy; weight
            # it down so persistent growth dominates the site totals, as in
            # Figure 6's CCR data
            occupancy = 0.3 if fs.resource_type == "persistent" else 0.05
            scale = fs.default_soft_quota_gb * occupancy
            for i in range(config.n_users):
                user = f"user{i:04d}"
                self._base_gb[(fs.name, user)] = float(
                    self._rng.pareto(1.8) * scale + scale * 0.05
                )
                self._base_files[(fs.name, user)] = int(
                    self._rng.pareto(1.5) * 20000 + 500
                )

    def _growth(self, fs: FilesystemSpec, frac_of_year: float) -> float:
        """Growth multiplier at a point ``frac_of_year`` through the window."""
        if fs.resource_type == "persistent":
            return float(self.config.annual_growth ** frac_of_year)
        # scratch: churny saw-tooth over a mildly growing baseline
        trend = 1.0 + 0.3 * frac_of_year
        return float(trend * (1.0 + 0.25 * np.sin(frac_of_year * 2 * np.pi * 6)))

    def generate(self, start_ts: int, end_ts: int) -> Iterator[dict]:
        """Yield snapshot documents (one per fs/user/sample time).

        Each document matches the JSON schema in
        :data:`repro.etl.storagefs.STORAGE_SNAPSHOT_SCHEMA`.
        """
        cfg = self.config
        rng = self._rng
        span = max(end_ts - start_ts, 1)
        t = start_ts
        while t < end_ts:
            frac = (t - start_ts) / span
            for fs in cfg.filesystems:
                for i in range(cfg.n_users):
                    user = f"user{i:04d}"
                    base = self._base_gb[(fs.name, user)]
                    noise = float(rng.lognormal(0.0, 0.05))
                    logical_gb = base * self._growth(fs, frac) * noise
                    soft = fs.default_soft_quota_gb
                    hard = fs.default_hard_quota_gb
                    logical_gb = min(logical_gb, hard)  # quota enforcement
                    file_count = int(
                        self._base_files[(fs.name, user)]
                        * self._growth(fs, frac)
                        * float(rng.lognormal(0.0, 0.03))
                    )
                    yield {
                        "resource": cfg.resource,
                        "filesystem": fs.name,
                        "mountpoint": fs.mountpoint,
                        "resource_type": fs.resource_type,
                        "user": user,
                        "pi": f"pi{i % 12:03d}",
                        "system_username": user,
                        "ts": int(t),
                        "file_count": file_count,
                        "logical_usage_gb": round(logical_gb, 3),
                        "physical_usage_gb": round(
                            logical_gb * cfg.physical_ratio, 3
                        ),
                        "soft_quota_gb": soft,
                        "hard_quota_gb": hard,
                    }
            t += cfg.snapshot_interval_s
