"""Per-job performance timeseries generation (PCP / TACC Stats substitute).

SUPReMM's job-level data comes from node-level hardware counters sampled by
Performance Co-Pilot or TACC Stats.  The paper (Section II-C5) notes that
this data is "storage-intensive and quite detailed, including timeseries
plots of nine individual job metrics over the life of the job... and the job
script for each job" — which is exactly why raw performance data is *not*
replicated to the federation hub in the initial release, only summaries.

This module synthesizes those nine metric timeseries per job, keyed to the
job's application personality, plus a plausible job script.  Summaries (the
part that *is* federated in a later release) are computed from the series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..timeutil import SECONDS_PER_HOUR
from .cluster import JobRecord, ResourceSpec
from .workload import DEFAULT_APPLICATIONS, ApplicationProfile

#: The nine job metrics the paper names for the Job Viewer.
PERF_METRICS = (
    "cpu_user",        # fraction 0..1
    "cpu_system",      # fraction 0..1
    "mem_used_gb",     # GB per node
    "mem_bw_gbs",      # GB/s per node
    "flops_gf",        # GFLOP/s per node
    "io_read_mbs",     # MB/s per node
    "io_write_mbs",    # MB/s per node
    "block_read_mbs",  # MB/s per node
    "block_write_mbs", # MB/s per node
)

_APP_INDEX: Mapping[str, ApplicationProfile] = {
    app.name: app for app in DEFAULT_APPLICATIONS
}


@dataclass(frozen=True)
class JobPerformance:
    """Performance detail for one job: sampled series + the job script."""

    job_id: int
    resource: str
    interval_s: int
    timestamps: np.ndarray  # (n,) epoch seconds
    series: Mapping[str, np.ndarray]  # metric -> (n,) values
    job_script: str

    def summary(self) -> dict[str, float]:
        """Aggregate statistics — the summarized form federation would ship."""
        out: dict[str, float] = {}
        for name, values in self.series.items():
            if len(values) == 0:
                out[f"{name}_avg"] = 0.0
                out[f"{name}_max"] = 0.0
            else:
                out[f"{name}_avg"] = float(np.mean(values))
                out[f"{name}_max"] = float(np.max(values))
        return out


def _profile_for(application: str) -> ApplicationProfile:
    return _APP_INDEX.get(application, _APP_INDEX["uncategorized"])


def generate_job_performance(
    record: JobRecord,
    resource: ResourceSpec,
    *,
    interval_s: int = 300,
    seed: int | None = None,
) -> JobPerformance:
    """Synthesize the nine-metric timeseries for one finished job.

    The series are smooth AR(1)-noise walks around application-personality
    means, with a warm-up ramp at job start (real codes read inputs first)
    and I/O bursts for checkpoint-ish applications.
    """
    rng = np.random.default_rng(
        seed if seed is not None else record.job_id * 7919 + 13
    )
    app = _profile_for(record.application)
    n = max(2, record.walltime_s // interval_s)
    timestamps = record.start_ts + np.arange(n, dtype=np.int64) * interval_s

    def ar1(mean: float, rel_noise: float, lo: float, hi: float) -> np.ndarray:
        noise = rng.normal(0.0, rel_noise * max(mean, 1e-9), size=n)
        values = np.empty(n)
        acc = 0.0
        for i in range(n):
            acc = 0.8 * acc + noise[i]
            values[i] = mean + acc
        return np.clip(values, lo, hi)

    # warm-up ramp over the first ~5% of samples
    ramp = np.minimum(1.0, np.linspace(0.15, 1.0, max(2, n // 20)).tolist() + [1.0] * n)[:n]

    cpu_user = ar1(app.cpu_fraction, 0.05, 0.0, 1.0) * ramp
    cpu_system = np.clip(ar1(0.04, 0.5, 0.0, 0.3), 0.0, 1.0 - cpu_user)
    mem_used = ar1(app.mem_fraction * resource.mem_per_node_gb, 0.08, 0.0,
                   resource.mem_per_node_gb) * np.minimum(1.0, ramp * 2)
    mem_bw = ar1(app.mem_fraction * 40.0, 0.15, 0.0, 200.0)
    flops = ar1(app.flops_per_core * resource.cores_per_node, 0.10, 0.0, 1e5) * cpu_user

    io_scale = app.io_intensity * record.cores / max(record.nodes, 1)
    io_read = ar1(io_scale, 0.4, 0.0, 1e5)
    io_write = ar1(io_scale * 0.6, 0.4, 0.0, 1e5)
    # checkpoint bursts every ~30 samples for long runs
    if n >= 30:
        burst_idx = np.arange(29, n, 30)
        io_write[burst_idx] *= 8.0
    block_read = io_read * rng.uniform(0.7, 1.0)
    block_write = io_write * rng.uniform(0.7, 1.0)

    series = {
        "cpu_user": cpu_user,
        "cpu_system": cpu_system,
        "mem_used_gb": mem_used,
        "mem_bw_gbs": mem_bw,
        "flops_gf": flops,
        "io_read_mbs": io_read,
        "io_write_mbs": io_write,
        "block_read_mbs": block_read,
        "block_write_mbs": block_write,
    }
    return JobPerformance(
        job_id=record.job_id,
        resource=record.resource,
        interval_s=interval_s,
        timestamps=timestamps,
        series=series,
        job_script=render_job_script(record),
    )


def inject_idle_tail(perf: JobPerformance, *, fraction: float = 0.4) -> JobPerformance:
    """Return a copy of ``perf`` whose trailing ``fraction`` of samples idle.

    Models a job that finished its real work early and then sat on its
    allocation (a hung rank, a sleep-until-walltime script): CPU, FLOPS,
    memory bandwidth and I/O all collapse to near zero for the tail while
    the allocation keeps burning core hours.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    n = len(perf.timestamps)
    cut = max(1, n - int(n * fraction))
    series = {name: values.copy() for name, values in perf.series.items()}
    for name in ("cpu_user", "flops_gf", "mem_bw_gbs",
                 "io_read_mbs", "io_write_mbs",
                 "block_read_mbs", "block_write_mbs"):
        series[name][cut:] = 0.0
    series["cpu_system"][cut:] = 0.01
    return JobPerformance(
        job_id=perf.job_id,
        resource=perf.resource,
        interval_s=perf.interval_s,
        timestamps=perf.timestamps,
        series=series,
        job_script=perf.job_script,
    )


def inject_cache_thrash(
    perf: JobPerformance, *, bw_factor: float = 5.0, flops_factor: float = 0.1
) -> JobPerformance:
    """Return a copy of ``perf`` that thrashes the memory hierarchy.

    Models a cache-hostile access pattern: the cores stay busy
    (``cpu_user`` untouched) but arithmetic throughput collapses while
    memory bandwidth saturates — the low-arithmetic-intensity corner of
    the roofline that MPCDF-style job analysis tags "memory-bound".
    """
    if bw_factor <= 0 or flops_factor <= 0:
        raise ValueError("bw_factor and flops_factor must be positive")
    series = {name: values.copy() for name, values in perf.series.items()}
    series["mem_bw_gbs"] = series["mem_bw_gbs"] * bw_factor
    series["flops_gf"] = series["flops_gf"] * flops_factor
    return JobPerformance(
        job_id=perf.job_id,
        resource=perf.resource,
        interval_s=perf.interval_s,
        timestamps=perf.timestamps,
        series=series,
        job_script=perf.job_script,
    )


def render_job_script(record: JobRecord) -> str:
    """A plausible SLURM batch script for the job (Job Viewer content)."""
    hours = record.req_walltime_s // SECONDS_PER_HOUR
    minutes = (record.req_walltime_s % SECONDS_PER_HOUR) // 60
    return (
        "#!/bin/bash\n"
        f"#SBATCH --job-name={record.application}\n"
        f"#SBATCH --partition={record.queue}\n"
        f"#SBATCH --nodes={max(record.nodes, 1)}\n"
        f"#SBATCH --ntasks={record.cores}\n"
        f"#SBATCH --time={hours:02d}:{minutes:02d}:00\n"
        f"#SBATCH --account={record.pi}\n"
        "\n"
        "module load "
        f"{record.application}\n"
        f"srun {record.application} input.dat\n"
    )


def generate_performance_batch(
    records: Sequence[JobRecord],
    resource: ResourceSpec,
    *,
    interval_s: int = 300,
    max_jobs: int | None = None,
) -> list[JobPerformance]:
    """Generate performance data for all started jobs in ``records``."""
    out: list[JobPerformance] = []
    for record in records:
        if record.walltime_s <= 0:
            continue  # never-started cancellations have no counters
        out.append(
            generate_job_performance(record, resource, interval_s=interval_s)
        )
        if max_jobs is not None and len(out) >= max_jobs:
            break
    return out
