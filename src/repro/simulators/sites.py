"""Preset site configurations matched to the paper's figures.

Figure 1 plots 2017 XD SU charges for the top three XSEDE resources:
Comet (largest), Stampede2 (ramping up through 2017), and Stampede
(decommissioned during 2017).  These presets reproduce that *shape* at
laptop scale: three resources with distinct sizes, per-core speeds (hence
distinct HPL conversion factors), and monthly activity envelopes.

:func:`calibrate_jobs_per_day` sizes a workload to a target utilization so
the cluster simulator runs in a sane operating regime (oversubscribing a
tiny core inventory with production-scale arrival rates yields month-long
queues and meaningless wait-time metrics).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


from ..timeutil import SECONDS_PER_DAY, ts
from .cluster import ResourceSpec
from .workload import WorkloadConfig, WorkloadGenerator


def calibrate_jobs_per_day(
    config: WorkloadConfig,
    resource: ResourceSpec,
    *,
    target_utilization: float = 0.7,
    sample_jobs: int = 300,
    sample_days: int = 30,
) -> WorkloadConfig:
    """Return a copy of ``config`` with ``jobs_per_day`` set so expected
    demand matches ``target_utilization`` of the resource's core inventory.

    Calibration is empirical: generate a sample of requests with the given
    config and measure mean CPU-seconds per request, then solve for the
    arrival rate.  Deterministic given the config seed.
    """
    if not (0 < target_utilization <= 1.5):
        raise ValueError(f"unreasonable target utilization {target_utilization}")
    probe = replace(config, jobs_per_day=float(sample_jobs) / sample_days)
    gen = WorkloadGenerator(probe)
    start = ts(2000, 1, 1)
    demand_core_s = 0.0
    n = 0
    for req in gen.generate(start, start + sample_days * SECONDS_PER_DAY):
        cores = min(req.cores, resource.total_cores)
        demand_core_s += cores * req.req_walltime_s * max(req.runtime_fraction, 0.0)
        n += 1
        if n >= sample_jobs:
            break
    if n == 0 or demand_core_s == 0:
        return replace(config, jobs_per_day=1.0)
    mean_core_s = demand_core_s / n
    capacity_core_s_per_day = resource.total_cores * SECONDS_PER_DAY
    jobs_per_day = target_utilization * capacity_core_s_per_day / mean_core_s
    return replace(config, jobs_per_day=max(jobs_per_day, 0.5))


@dataclass(frozen=True)
class SitePreset:
    """A resource plus a calibrated workload for it."""

    name: str
    resource: ResourceSpec
    workload: WorkloadConfig


#: Stampede rams down (decommissioned in 2017)...
_STAMPEDE_ENVELOPE = (1.0, 1.0, 0.95, 0.85, 0.7, 0.5, 0.35, 0.2, 0.1, 0.05, 0.02, 0.01)
#: ...while Stampede2 ramps up through the year.
_STAMPEDE2_ENVELOPE = (0.02, 0.05, 0.1, 0.25, 0.45, 0.65, 0.8, 0.9, 1.0, 1.0, 1.0, 1.0)
_FLAT_ENVELOPE = tuple([1.0] * 12)


def figure1_sites(*, scale: float = 1.0, utilization: float = 0.75) -> dict[str, SitePreset]:
    """The three Figure-1 resources at laptop scale.

    ``scale`` multiplies node counts for bigger runs; relative sizes and
    per-core speeds stay fixed so the ranking (Comet > Stampede2 >
    Stampede in total 2017 XD SUs) is preserved.
    """
    def nodes(n: int) -> int:
        return max(4, int(n * scale))

    comet = ResourceSpec(
        "comet", nodes=nodes(48), cores_per_node=24,
        mem_per_node_gb=128, gflops_per_core=18.0,
    )
    stampede2 = ResourceSpec(
        "stampede2", nodes=nodes(36), cores_per_node=32,
        mem_per_node_gb=96, gflops_per_core=22.0,
    )
    stampede = ResourceSpec(
        "stampede", nodes=nodes(64), cores_per_node=16,
        mem_per_node_gb=32, gflops_per_core=9.0,
    )

    presets: dict[str, SitePreset] = {}
    # Comet runs hot all year; Stampede2's ramp-up keeps its annual total
    # second; Stampede's decommissioning year trails far behind (Figure 1).
    for spec, seed, envelope, util in (
        (comet, 101, _FLAT_ENVELOPE, min(utilization * 1.2, 0.95)),
        (stampede2, 102, _STAMPEDE2_ENVELOPE, utilization * 0.85),
        (stampede, 103, _STAMPEDE_ENVELOPE, utilization),
    ):
        base = WorkloadConfig(
            seed=seed,
            max_cores=spec.total_cores,
            monthly_activity=envelope,
        )
        # calibrate_jobs_per_day targets the *annual average* rate, but an
        # envelope concentrates arrivals in its peak months; cap the peak
        # month at the target utilization or queued backlog from the busy
        # months drains into the quiet ones and flattens the envelope.
        env_scale = (sum(envelope) / len(envelope)) / max(envelope)
        calibrated = calibrate_jobs_per_day(
            base, spec, target_utilization=util * env_scale
        )
        presets[spec.name] = SitePreset(spec.name, spec, calibrated)
    return presets


def ccr_like_site(*, scale: float = 1.0, utilization: float = 0.7, seed: int = 42) -> SitePreset:
    """A CCR-style academic cluster (for Open XDMoD single-site examples)."""
    spec = ResourceSpec(
        "ub_hpc", nodes=max(4, int(32 * scale)), cores_per_node=16,
        mem_per_node_gb=128, gflops_per_core=16.0,
    )
    base = WorkloadConfig(seed=seed, max_cores=spec.total_cores)
    return SitePreset(
        spec.name, spec, calibrate_jobs_per_day(base, spec, target_utilization=utilization)
    )
