"""Cloud VM lifecycle simulator (OpenStack event-feed substitute).

Section III-B of the paper develops the Cloud realm against CCR's OpenStack
installation.  The defining difficulties it calls out — VM wall time is not
job wall time; VMs can be stopped/started/paused/resumed; configuration
(memory, cores) can change mid-life via resize — are all reproduced here.

The simulator emits an event stream in submission order, one dict per event,
shaped like a pared-down OpenStack notification::

    {"event_id", "vm_id", "event_type", "ts", "instance_type",
     "vcpus", "mem_gb", "disk_gb", "user", "project", "resource"}

Event types: ``provision``, ``start``, ``stop``, ``pause``, ``unpause``,
``resize``, ``terminate``.  A VM accumulates *wall hours* only while in the
``running`` state; *reserved* capacity (cores/memory/disk) is held from
provision to terminate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..timeutil import SECONDS_PER_DAY, SECONDS_PER_HOUR

EVENT_TYPES = (
    "provision", "start", "stop", "pause", "unpause", "resize", "terminate",
)


@dataclass(frozen=True)
class Flavor:
    """An instance type, OpenStack-style."""

    name: str
    vcpus: int
    mem_gb: float
    disk_gb: float


#: Flavor ladder chosen so VM memory sizes fall across Figure 7's bins:
#: <1 GB, 1-2 GB, 2-4 GB, and 4-8 GB.
DEFAULT_FLAVORS: tuple[Flavor, ...] = (
    Flavor("c1.tiny", 1, 0.5, 10.0),
    Flavor("c1.small", 1, 1.0, 20.0),
    Flavor("c2.small", 2, 2.0, 20.0),
    Flavor("c2.medium", 2, 4.0, 40.0),
    Flavor("c4.medium", 4, 4.0, 40.0),
    Flavor("c4.large", 4, 8.0, 80.0),
    Flavor("c8.large", 8, 8.0, 80.0),
)

#: Guest operating systems (the paper lists "Operating System" among the
#: metrics considered for later Cloud realm releases).
DEFAULT_OSES: tuple[str, ...] = ("centos7", "ubuntu16.04", "windows2016")

#: How the VM was requested: the Cloud realm's Submission Venue dimension.
SUBMISSION_VENUES: tuple[str, ...] = ("horizon", "api", "cli")


@dataclass
class CloudConfig:
    """Knobs for one cloud resource's synthetic event stream."""

    resource: str = "ccr_research_cloud"
    seed: int = 7
    n_users: int = 40
    n_projects: int = 10
    vms_per_day: float = 12.0
    flavors: Sequence[Flavor] = DEFAULT_FLAVORS
    #: mean VM lifetime (provision->terminate) in hours, lognormal
    mean_lifetime_h: float = 72.0
    #: probability a running VM gets stop/start cycles
    stop_start_prob: float = 0.35
    pause_prob: float = 0.15
    resize_prob: float = 0.10
    #: fraction of VM life actually spent running (users leave VMs up after
    #: the "job" finishes — the paper's wall-time caveat)
    running_fraction_mean: float = 0.7


class CloudSimulator:
    """Generates VM lifecycle events over a time window."""

    def __init__(self, config: CloudConfig) -> None:
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self._next_vm = 1
        self._next_event = 1
        #: larger flavors are rarer, core-hours concentrate in big-memory
        #: VMs (Figure 7's upward trend by memory bin)
        weights = np.array([8.0, 6.0, 5.0, 3.0, 2.5, 1.5, 1.0])
        self._flavor_p = weights[: len(config.flavors)]
        self._flavor_p = self._flavor_p / self._flavor_p.sum()

    def _emit(
        self,
        events: list[dict],
        vm_id: int,
        etype: str,
        ts_: int,
        flavor: Flavor,
        user: str,
        project: str,
        os: str = "centos7",
        venue: str = "api",
    ) -> None:
        events.append(
            {
                "event_id": self._next_event,
                "vm_id": vm_id,
                "event_type": etype,
                "ts": int(ts_),
                "instance_type": flavor.name,
                "vcpus": flavor.vcpus,
                "mem_gb": flavor.mem_gb,
                "disk_gb": flavor.disk_gb,
                "user": user,
                "project": project,
                "resource": self.config.resource,
                "os": os,
                "submission_venue": venue,
            }
        )
        self._next_event += 1

    def _vm_events(self, provision_ts: int, horizon: int) -> list[dict]:
        """Full lifecycle for one VM provisioned at ``provision_ts``."""
        cfg = self.config
        rng = self._rng
        flavor = cfg.flavors[int(rng.choice(len(cfg.flavors), p=self._flavor_p))]
        user = f"clouduser{int(rng.integers(cfg.n_users)):03d}"
        project = f"project{int(rng.integers(cfg.n_projects)):02d}"
        os = DEFAULT_OSES[int(rng.choice(len(DEFAULT_OSES), p=[0.6, 0.3, 0.1]))]
        venue = SUBMISSION_VENUES[int(rng.choice(len(SUBMISSION_VENUES), p=[0.5, 0.35, 0.15]))]
        vm_id = self._next_vm
        self._next_vm += 1

        # larger flavors host longer-lived services (drives Figure 7's
        # core-hours-per-VM growth across memory bins)
        size_rank = list(cfg.flavors).index(flavor) / max(len(cfg.flavors) - 1, 1)
        lifetime_scale = cfg.mean_lifetime_h * (0.5 + 1.5 * size_rank)
        lifetime_s = int(
            min(
                rng.lognormal(np.log(lifetime_scale * SECONDS_PER_HOUR), 1.0),
                horizon - provision_ts,
            )
        )
        lifetime_s = max(lifetime_s, 600)
        terminate_ts = provision_ts + lifetime_s

        events: list[dict] = []
        self._emit(events, vm_id, "provision", provision_ts, flavor, user, project, os, venue)
        t = provision_ts + int(rng.uniform(30, 300))  # boot delay
        if t >= terminate_ts:
            self._emit(events, vm_id, "terminate", terminate_ts, flavor, user, project, os, venue)
            return events
        self._emit(events, vm_id, "start", t, flavor, user, project, os, venue)

        # Interleave stop/start, pause/unpause, resize until termination.
        running = True
        while t < terminate_ts:
            step = int(rng.exponential(cfg.running_fraction_mean * lifetime_s / 3))
            step = max(step, 300)
            t += step
            if t >= terminate_ts:
                break
            u = rng.random()
            if running and u < cfg.stop_start_prob / 2:
                self._emit(events, vm_id, "stop", t, flavor, user, project, os, venue)
                running = False
            elif not running and u < 0.8:
                self._emit(events, vm_id, "start", t, flavor, user, project, os, venue)
                running = True
            elif running and u < cfg.stop_start_prob / 2 + cfg.pause_prob / 2:
                self._emit(events, vm_id, "pause", t, flavor, user, project, os, venue)
                pause_len = int(rng.uniform(300, 4 * SECONDS_PER_HOUR))
                t2 = min(t + pause_len, terminate_ts - 1)
                if t2 > t:
                    self._emit(events, vm_id, "unpause", t2, flavor, user, project, os, venue)
                    t = t2
            elif running and u < cfg.stop_start_prob / 2 + cfg.pause_prob / 2 + cfg.resize_prob:
                # resize to an adjacent flavor; configuration mutates mid-life
                idx = list(cfg.flavors).index(flavor)
                new_idx = min(idx + 1, len(cfg.flavors) - 1) if rng.random() < 0.7 else max(idx - 1, 0)
                flavor = cfg.flavors[new_idx]
                self._emit(events, vm_id, "resize", t, flavor, user, project, os, venue)
        self._emit(events, vm_id, "terminate", terminate_ts, flavor, user, project, os, venue)
        return events

    def generate(self, start_ts: int, end_ts: int) -> list[dict]:
        """All VM events for VMs provisioned in ``[start, end)``.

        Lifecycles are clamped to ``end_ts`` (every VM terminates inside the
        window, so totals are conserved for the realm's invariants; real
        feeds have open VMs, which the ETL also tolerates).
        """
        cfg = self.config
        rng = self._rng
        events: list[dict] = []
        mean_gap = SECONDS_PER_DAY / cfg.vms_per_day
        t = float(start_ts)
        while True:
            t += rng.exponential(mean_gap)
            if t >= end_ts:
                break
            events.extend(self._vm_events(int(t), end_ts))
        events.sort(key=lambda e: (e["ts"], e["event_id"]))
        return events


def vm_sessions(events: Sequence[dict]) -> dict[int, list[dict]]:
    """Group an event stream by VM id, each list in time order."""
    out: dict[int, list[dict]] = {}
    for event in events:
        out.setdefault(event["vm_id"], []).append(event)
    for lst in out.values():
        lst.sort(key=lambda e: (e["ts"], e["event_id"]))
    return out
