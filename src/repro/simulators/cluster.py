"""Discrete-event cluster scheduler simulator emitting sacct-style records.

The paper's job data comes from resource managers (SLURM) on production
clusters.  We substitute a discrete-event simulation: a resource has a fixed
core inventory; jobs are scheduled FCFS with EASY backfill (a reservation is
held for the queue head; later jobs may jump ahead only if they cannot delay
it).  The output records carry everything Open XDMoD's shredder consumes
from ``sacct``: ids, user/account, partition, timestamps, allocation
geometry, requested walltime, and terminal state.

The simulator is intentionally core-granular (no per-node placement map):
wait-time dynamics and utilization — the quantities XDMoD reports — depend
on the core inventory and the request stream, not on which node a rank
landed on.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..timeutil import SECONDS_PER_HOUR, iso
from .workload import JobRequest


@dataclass(frozen=True)
class QueueSpec:
    """One scheduler partition and its walltime limit."""

    name: str
    max_walltime_s: int
    priority: int = 0


@dataclass(frozen=True)
class ResourceSpec:
    """Static description of one computing resource.

    ``gflops_per_core`` feeds the synthetic HPL benchmark that derives the
    resource's XD SU conversion factor (Section II-C6 of the paper).
    """

    name: str
    nodes: int
    cores_per_node: int
    mem_per_node_gb: float
    gflops_per_core: float
    queues: tuple[QueueSpec, ...] = (
        QueueSpec("debug", 1 * SECONDS_PER_HOUR, priority=10),
        QueueSpec("normal", 48 * SECONDS_PER_HOUR),
        QueueSpec("largemem", 72 * SECONDS_PER_HOUR),
    )
    timezone: str = "UTC"

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node

    def queue(self, name: str) -> QueueSpec:
        for q in self.queues:
            if q.name == name:
                return q
        # unknown queue falls back to the first (SLURM rejects; we coerce,
        # since the workload generator only emits configured queues anyway)
        return self.queues[0]


@dataclass(frozen=True)
class JobRecord:
    """One finished (or cancelled) job, sacct-equivalent."""

    job_id: int
    resource: str
    user: str
    pi: str  # SLURM "account"
    queue: str
    application: str
    submit_ts: int
    start_ts: int  # == end_ts for never-started cancelled jobs
    end_ts: int
    nodes: int
    cores: int
    req_walltime_s: int
    state: str  # COMPLETED | FAILED | TIMEOUT | CANCELLED
    exit_code: int

    @property
    def walltime_s(self) -> int:
        return max(0, self.end_ts - self.start_ts)

    @property
    def wait_s(self) -> int:
        return max(0, self.start_ts - self.submit_ts)

    @property
    def cpu_hours(self) -> float:
        return self.cores * self.walltime_s / SECONDS_PER_HOUR

    @property
    def node_hours(self) -> float:
        return self.nodes * self.walltime_s / SECONDS_PER_HOUR


_SACCT_FIELDS = (
    "JobID", "User", "Account", "Partition", "JobName", "Submit", "Start",
    "End", "NNodes", "NCPUS", "Timelimit", "State", "ExitCode", "Cluster",
)


def to_sacct_line(record: JobRecord) -> str:
    """Render a record as one ``sacct --parsable2`` style line."""
    limit_min = record.req_walltime_s // 60
    state = record.state
    if state == "CANCELLED":
        start = "Unknown" if record.start_ts == record.end_ts and record.walltime_s == 0 else iso(record.start_ts)
    else:
        start = iso(record.start_ts)
    values = (
        str(record.job_id),
        record.user,
        record.pi,
        record.queue,
        record.application,
        iso(record.submit_ts),
        start,
        iso(record.end_ts),
        str(record.nodes),
        str(record.cores),
        f"{limit_min // 60:02d}:{limit_min % 60:02d}:00",
        state,
        f"{record.exit_code}:0",
        record.resource,
    )
    return "|".join(values)


def sacct_header() -> str:
    return "|".join(_SACCT_FIELDS)


@dataclass
class _Waiting:
    """A queued job inside the simulator."""

    job_id: int
    request: JobRequest
    cores: int
    nodes: int
    limit_s: int


class ClusterSimulator:
    """EASY-backfill scheduler over a single resource's core inventory."""

    def __init__(self, resource: ResourceSpec) -> None:
        self.resource = resource
        self._next_job_id = 1

    def run(self, requests: Iterable[JobRequest]) -> list[JobRecord]:
        """Schedule all requests; returns records sorted by end time.

        Requests must be presented in nondecreasing submit order (the
        workload generator guarantees this).
        """
        res = self.resource
        free = res.total_cores
        # running: heap of (end_ts, seq, cores)
        running: list[tuple[int, int, int]] = []
        waiting: list[_Waiting] = []
        records: list[JobRecord] = []
        seq = 0

        def release_until(now: int) -> None:
            nonlocal free
            while running and running[0][0] <= now:
                _, _, cores = heapq.heappop(running)
                free += cores

        def start_job(job: _Waiting, now: int) -> None:
            nonlocal free, seq
            req = job.request
            actual = int(min(req.runtime_fraction * req.req_walltime_s, job.limit_s))
            if req.fate == "TIMEOUT":
                actual = job.limit_s
                state = "TIMEOUT"
                exit_code = 0
            elif req.fate == "FAILED":
                actual = max(1, actual)
                state = "FAILED"
                exit_code = 1
            else:
                actual = max(1, actual)
                state = "COMPLETED"
                exit_code = 0
            free -= job.cores
            seq += 1
            heapq.heappush(running, (now + actual, seq, job.cores))
            records.append(
                JobRecord(
                    job_id=job.job_id,
                    resource=res.name,
                    user=req.user,
                    pi=req.pi,
                    queue=req.queue,
                    application=req.application,
                    submit_ts=req.submit_ts,
                    start_ts=now,
                    end_ts=now + actual,
                    nodes=job.nodes,
                    cores=job.cores,
                    req_walltime_s=job.limit_s,
                    state=state,
                    exit_code=exit_code,
                )
            )

        def schedule(now: int) -> None:
            """FCFS + EASY backfill pass at time ``now``."""
            nonlocal free
            # Start queue head(s) while they fit.
            while waiting and waiting[0].cores <= free:
                start_job(waiting.pop(0), now)
            if not waiting:
                return
            head = waiting[0]
            # Shadow time: when will the head have enough cores?  Walk the
            # running heap in end order accumulating releases.
            shadow = now
            extra = free
            for end_ts, _, cores in sorted(running):
                extra += cores
                shadow = end_ts
                if extra >= head.cores:
                    break
            spare = extra - head.cores  # cores the head will not need at shadow
            # Backfill: any later job that either finishes before the shadow
            # time or fits within the spare cores may start now.
            i = 1
            while i < len(waiting):
                cand = waiting[i]
                if cand.cores <= free and (
                    now + cand.limit_s <= shadow or cand.cores <= spare
                ):
                    if cand.cores <= spare:
                        spare -= cand.cores
                    job = waiting.pop(i)
                    start_job(job, now)
                else:
                    i += 1

        for request in requests:
            now = request.submit_ts
            release_until(now)
            schedule(now)
            job_id = self._next_job_id
            self._next_job_id += 1
            if request.fate == "CANCELLED":
                # cancelled before start: zero-length record, start == end
                records.append(
                    JobRecord(
                        job_id=job_id,
                        resource=res.name,
                        user=request.user,
                        pi=request.pi,
                        queue=request.queue,
                        application=request.application,
                        submit_ts=request.submit_ts,
                        start_ts=request.submit_ts,
                        end_ts=request.submit_ts,
                        nodes=0,
                        cores=request.cores,
                        req_walltime_s=request.req_walltime_s,
                        state="CANCELLED",
                        exit_code=0,
                    )
                )
                continue
            cores = min(request.cores, res.total_cores)
            nodes = max(1, -(-cores // res.cores_per_node))  # ceil div
            limit = min(request.req_walltime_s, res.queue(request.queue).max_walltime_s)
            waiting.append(
                _Waiting(
                    job_id=job_id,
                    request=request,
                    cores=cores,
                    nodes=nodes,
                    limit_s=limit,
                )
            )
            schedule(now)

        # Drain: keep advancing time to the next completion until idle.
        while waiting or running:
            if running:
                now = running[0][0]
                release_until(now)
                schedule(now)
            else:  # pragma: no cover - waiting but nothing running: start now
                schedule(waiting[0].request.submit_ts)

        records.sort(key=lambda r: (r.end_ts, r.job_id))
        return records


def simulate_resource(
    resource: ResourceSpec,
    requests: Iterable[JobRequest],
) -> list[JobRecord]:
    """Convenience wrapper: run one scheduler pass over a request stream."""
    return ClusterSimulator(resource).run(requests)


def to_sacct_log(records: Sequence[JobRecord], *, header: bool = True) -> str:
    """Render records as a full sacct dump (the ETL's input format)."""
    lines = [sacct_header()] if header else []
    lines.extend(to_sacct_line(r) for r in records)
    return "\n".join(lines) + "\n"
