"""Synthetic HPL benchmarking for XD SU conversion factors.

Section II-C6: to make a federation of heterogeneous systems meaningful,
"XSEDE has benchmarked disparate systems and then derived appropriate
conversion factors, so that the resources consumed on different systems can
be compared."  One XD SU is one CPU-hour on a Phase-1 DTF cluster, and a
Phase-1 DTF SU equals 21.576 NUs.

We do not have HPL runs on real machines, so :func:`run_hpl` synthesizes a
measured per-core GFLOPS figure for a :class:`ResourceSpec` — nominal
per-core GFLOPS times an efficiency factor with run-to-run noise (HPL never
hits peak).  :func:`derive_conversion_factor` then turns a measurement into
the CPU-hour -> XD SU factor relative to the Phase-1 DTF reference, and
:class:`ConversionTable` holds the factors the federation's standardization
layer applies (:mod:`repro.core.standardize`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from .cluster import ResourceSpec

#: Measured per-core GFLOPS of the reference system (Phase-1 DTF cluster,
#: early-2000s IA-64 hardware).  One CPU-hour there defines 1 XD SU.
PHASE1_DTF_GFLOPS_PER_CORE = 3.0

#: NUs per Phase-1 DTF SU, from the paper's footnote.
NUS_PER_XDSU = 21.576


@dataclass(frozen=True)
class HplResult:
    """One synthetic HPL measurement for a resource."""

    resource: str
    cores: int
    nominal_gflops_per_core: float
    measured_gflops_per_core: float
    efficiency: float
    rmax_tflops: float


def run_hpl(
    resource: ResourceSpec,
    *,
    seed: int | None = None,
    base_efficiency: float = 0.82,
) -> HplResult:
    """Simulate an HPL run on ``resource``.

    Efficiency (Rmax/Rpeak) is drawn near ``base_efficiency`` with small
    noise; larger systems lose a little more to interconnect overheads.
    """
    rng = np.random.default_rng(
        seed if seed is not None else hash(resource.name) % (2**32)
    )
    size_penalty = 0.02 * np.log10(max(resource.total_cores, 10) / 10.0)
    efficiency = float(
        np.clip(base_efficiency - size_penalty + rng.normal(0.0, 0.015), 0.5, 0.95)
    )
    measured = resource.gflops_per_core * efficiency
    return HplResult(
        resource=resource.name,
        cores=resource.total_cores,
        nominal_gflops_per_core=resource.gflops_per_core,
        measured_gflops_per_core=measured,
        efficiency=efficiency,
        rmax_tflops=measured * resource.total_cores / 1000.0,
    )


def derive_conversion_factor(result: HplResult) -> float:
    """XD SUs charged per CPU-hour on the measured resource.

    A core that benchmarks N times faster than a Phase-1 DTF core delivers
    N reference-CPU-hours of computation per hour, so its CPU-hour charges
    N XD SUs.
    """
    return result.measured_gflops_per_core / PHASE1_DTF_GFLOPS_PER_CORE


def xdsu_to_nu(xdsu: float) -> float:
    """Convert XD SUs to NUs (roaming-allocation units)."""
    return xdsu * NUS_PER_XDSU


def nu_to_xdsu(nu: float) -> float:
    """Convert NUs to XD SUs."""
    return nu / NUS_PER_XDSU


@dataclass
class ConversionTable:
    """Per-resource CPU-hour -> XD SU conversion factors.

    Resources without a benchmark default to factor 1.0 (raw CPU hours) —
    the paper's warning that *unstandardized* federations compare unlike
    quantities is surfaced by :meth:`is_standardized`.
    """

    factors: dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_benchmarks(cls, results: Mapping[str, HplResult]) -> "ConversionTable":
        return cls(
            {name: derive_conversion_factor(res) for name, res in results.items()}
        )

    @classmethod
    def benchmark_resources(
        cls, resources: Mapping[str, ResourceSpec], *, seed: int = 0
    ) -> "ConversionTable":
        """Run synthetic HPL on every resource and build the table."""
        results = {
            name: run_hpl(spec, seed=seed + i)
            for i, (name, spec) in enumerate(sorted(resources.items()))
        }
        return cls.from_benchmarks(results)

    def factor(self, resource: str) -> float:
        return self.factors.get(resource, 1.0)

    def is_standardized(self, resource: str) -> bool:
        return resource in self.factors

    def to_xdsu(self, resource: str, cpu_hours: float) -> float:
        """Charge for ``cpu_hours`` on ``resource``, in XD SUs."""
        return cpu_hours * self.factor(resource)
