"""Synthetic HPC workload generation.

The paper's figures are drawn from production accounting data (XSEDE's
Comet/Stampede/Stampede2, CCR's clusters) that we do not have.  This module
generates the closest synthetic equivalent: a population of users organized
under PIs and a departmental hierarchy (Open XDMoD's institution
configuration), a catalogue of applications with resource-usage
personalities, and a Poisson job-arrival process modulated by diurnal and
weekly activity cycles.  The output — :class:`JobRequest` streams — feeds the
discrete-event cluster simulator, whose sacct-style records then exercise
the identical ETL → warehouse → aggregation → federation path the real tool
uses.

Everything is deterministic given the seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..timeutil import SECONDS_PER_DAY, SECONDS_PER_HOUR, from_ts

#: Departmental hierarchy used for CCR-style drill-down: (decanal unit,
#: department).  Mirrors Open XDMoD's 3-level hierarchy configuration.
DEFAULT_HIERARCHY: tuple[tuple[str, str], ...] = (
    ("Engineering", "Computer Science"),
    ("Engineering", "Mechanical Engineering"),
    ("Engineering", "Chemical Engineering"),
    ("Arts and Sciences", "Physics"),
    ("Arts and Sciences", "Chemistry"),
    ("Arts and Sciences", "Biology"),
    ("Arts and Sciences", "Mathematics"),
    ("Medicine", "Biochemistry"),
    ("Medicine", "Genomics"),
    ("Medicine", "Pharmacology"),
)


@dataclass(frozen=True)
class ApplicationProfile:
    """A simulated application and its resource-usage personality.

    ``cpu_fraction``, ``mem_fraction`` and ``io_intensity`` drive the
    SUPReMM performance-timeseries generator; ``typical_cores`` and
    ``walltime_scale_hours`` shape job geometry.
    """

    name: str
    science_field: str
    typical_cores: int
    walltime_scale_hours: float
    cpu_fraction: float  # mean CPU-user fraction, 0..1
    mem_fraction: float  # mean fraction of node memory used
    io_intensity: float  # MB/s per core scale
    flops_per_core: float  # GFLOP/s per core when busy


DEFAULT_APPLICATIONS: tuple[ApplicationProfile, ...] = (
    ApplicationProfile("namd", "Molecular Biosciences", 128, 12.0, 0.95, 0.35, 2.0, 8.0),
    ApplicationProfile("gromacs", "Molecular Biosciences", 64, 8.0, 0.93, 0.30, 1.5, 9.0),
    ApplicationProfile("vasp", "Materials Research", 96, 20.0, 0.90, 0.55, 1.0, 7.0),
    ApplicationProfile("quantum_espresso", "Materials Research", 64, 16.0, 0.88, 0.60, 1.2, 6.5),
    ApplicationProfile("lammps", "Materials Research", 128, 10.0, 0.92, 0.25, 1.8, 8.5),
    ApplicationProfile("wrf", "Atmospheric Sciences", 256, 6.0, 0.85, 0.45, 6.0, 5.0),
    ApplicationProfile("openfoam", "Fluid Dynamics", 128, 14.0, 0.87, 0.40, 4.0, 5.5),
    ApplicationProfile("gaussian", "Chemistry", 16, 24.0, 0.80, 0.70, 2.5, 4.0),
    ApplicationProfile("blast", "Genomics", 8, 4.0, 0.75, 0.50, 8.0, 2.0),
    ApplicationProfile("bowtie", "Genomics", 16, 3.0, 0.70, 0.55, 10.0, 1.5),
    ApplicationProfile("python", "Data Analytics", 4, 2.0, 0.60, 0.40, 3.0, 1.0),
    ApplicationProfile("matlab", "Data Analytics", 4, 5.0, 0.65, 0.45, 2.0, 1.2),
    ApplicationProfile("tensorflow", "Machine Learning", 32, 18.0, 0.82, 0.65, 5.0, 12.0),
    ApplicationProfile("uncategorized", "Unknown", 8, 6.0, 0.70, 0.35, 1.0, 3.0),
)


@dataclass(frozen=True)
class Pi:
    """A principal investigator (XDMoD's PI dimension) with a department."""

    username: str
    full_name: str
    decanal_unit: str
    department: str


@dataclass(frozen=True)
class UserAccount:
    """One portal user, attached to a PI's project."""

    username: str
    full_name: str
    pi: str
    decanal_unit: str
    department: str
    #: relative activity weight; a few power users dominate real systems
    activity: float


@dataclass(frozen=True)
class JobRequest:
    """A job submission before scheduling (what the user asked for)."""

    submit_ts: int
    user: str
    pi: str
    application: str
    nodes: int
    cores: int
    req_walltime_s: int
    queue: str
    #: fraction of the requested walltime the job would actually run
    #: (scheduler may truncate at the limit -> TIMEOUT)
    runtime_fraction: float
    #: terminal state hint: COMPLETED/FAILED/CANCELLED biases from workload
    fate: str


@dataclass
class WorkloadConfig:
    """Knobs for one resource's synthetic workload."""

    seed: int = 42
    n_pis: int = 12
    users_per_pi: int = 5
    jobs_per_day: float = 150.0
    applications: Sequence[ApplicationProfile] = DEFAULT_APPLICATIONS
    hierarchy: Sequence[tuple[str, str]] = DEFAULT_HIERARCHY
    #: multiplier applied to per-application typical core counts
    size_scale: float = 1.0
    #: hard cap from the resource (cores per job); None = no cap
    max_cores: int | None = None
    max_walltime_s: int = 48 * SECONDS_PER_HOUR
    queues: Sequence[str] = ("normal", "debug", "largemem")
    #: month -> relative activity multiplier (1-indexed), models ramp-up /
    #: decommission (Figure 1's Stampede -> Stampede2 transition)
    monthly_activity: Sequence[float] = tuple([1.0] * 12)
    failed_fraction: float = 0.04
    timeout_fraction: float = 0.04
    cancelled_fraction: float = 0.02
    #: fraction of jobs submitted through science gateways (community
    #: accounts proxying many end users — the abstract's gateway support)
    gateway_fraction: float = 0.0
    gateways: Sequence[str] = ("nanohub", "cipres")


#: Hour-of-day submission weights (UTC): quiet overnight, busy working hours.
_DIURNAL = np.array(
    [0.4, 0.3, 0.25, 0.2, 0.2, 0.25, 0.4, 0.6, 0.9, 1.2, 1.4, 1.5,
     1.5, 1.5, 1.5, 1.4, 1.3, 1.2, 1.0, 0.9, 0.8, 0.7, 0.6, 0.5]
)
#: Day-of-week weights, Monday=0: weekends are quieter.
_WEEKLY = np.array([1.15, 1.2, 1.2, 1.15, 1.1, 0.6, 0.5])


class WorkloadGenerator:
    """Generates the user population and job-request stream for a resource."""

    def __init__(self, config: WorkloadConfig) -> None:
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self.pis = self._make_pis()
        self.users = self._make_users()

    # -- population ----------------------------------------------------------

    def _make_pis(self) -> list[Pi]:
        cfg = self.config
        pis = []
        for i in range(cfg.n_pis):
            unit, dept = cfg.hierarchy[i % len(cfg.hierarchy)]
            pis.append(
                Pi(
                    username=f"pi{i:03d}",
                    full_name=f"PI {i:03d}",
                    decanal_unit=unit,
                    department=dept,
                )
            )
        return pis

    def _make_users(self) -> list[UserAccount]:
        cfg = self.config
        users = []
        # Pareto-ish activity: a few users dominate, as in production logs.
        for pi in self.pis:
            for j in range(cfg.users_per_pi):
                idx = len(users)
                activity = float(self._rng.pareto(1.5) + 0.2)
                users.append(
                    UserAccount(
                        username=f"user{idx:04d}",
                        full_name=f"User {idx:04d}",
                        pi=pi.username,
                        decanal_unit=pi.decanal_unit,
                        department=pi.department,
                        activity=activity,
                    )
                )
        return users

    def person_directory(self) -> dict[str, "PersonInfo"]:
        """Username -> institutional metadata, for ETL ingestion.

        Open XDMoD sites configure this from hierarchy.json; the generator
        exports its synthetic population in the same shape (see
        :class:`repro.etl.star.PersonInfo`).
        """
        from ..etl.star import PersonInfo

        return {
            u.username: PersonInfo(
                full_name=u.full_name,
                pi=u.pi,
                decanal_unit=u.decanal_unit,
                department=u.department,
            )
            for u in self.users
        }

    def science_fields(self) -> dict[str, str]:
        """Application name -> field of science, for ETL ingestion."""
        return {
            app.name: app.science_field for app in self.config.applications
        }

    # -- job stream ----------------------------------------------------------

    def _pick_user(self) -> UserAccount:
        weights = np.array([u.activity for u in self.users])
        weights /= weights.sum()
        return self.users[int(self._rng.choice(len(self.users), p=weights))]

    def _activity_factor(self, epoch: int) -> float:
        d = from_ts(epoch)
        monthly = self.config.monthly_activity[
            (d.month - 1) % len(self.config.monthly_activity)
        ]
        return float(
            _DIURNAL[d.hour] * _WEEKLY[d.weekday()] * monthly
        )

    def generate(self, start_ts: int, end_ts: int) -> Iterator[JobRequest]:
        """Yield job requests in submit-time order over ``[start, end)``.

        A thinned Poisson process: candidate arrivals at the peak rate are
        kept with probability proportional to the local activity factor.
        """
        cfg = self.config
        rng = self._rng
        peak_factor = float(_DIURNAL.max() * _WEEKLY.max() * max(cfg.monthly_activity))
        if peak_factor <= 0:
            return
        # mean inter-arrival at the *peak* instantaneous rate
        base_rate_per_s = cfg.jobs_per_day / SECONDS_PER_DAY
        peak_rate = base_rate_per_s * peak_factor / float(
            np.mean(_DIURNAL) * np.mean(_WEEKLY) * np.mean(cfg.monthly_activity)
        )
        t = float(start_ts)
        while True:
            t += rng.exponential(1.0 / peak_rate)
            if t >= end_ts:
                return
            keep_p = self._activity_factor(int(t)) / peak_factor
            if rng.random() > keep_p:
                continue
            yield self._make_request(int(t))

    def _make_request(self, submit_ts: int) -> JobRequest:
        cfg = self.config
        rng = self._rng
        app = cfg.applications[int(rng.integers(len(cfg.applications)))]
        if cfg.gateway_fraction > 0 and rng.random() < cfg.gateway_fraction:
            gateway = cfg.gateways[int(rng.integers(len(cfg.gateways)))]
            username = f"gw_{gateway}"
            pi_name = f"{gateway}_alloc"
        else:
            user = self._pick_user()
            username = user.username
            pi_name = user.pi

        # Job size: lognormal around the application's typical core count,
        # snapped to a power-of-two-ish ladder as users actually request.
        raw_cores = app.typical_cores * cfg.size_scale * float(
            rng.lognormal(mean=0.0, sigma=0.8)
        )
        cores = max(1, int(2 ** round(math.log2(max(raw_cores, 1.0)))))
        if cfg.max_cores is not None:
            cores = min(cores, cfg.max_cores)

        # Requested walltime: users over-request; actual runtime is a
        # fraction of the request.
        scale_s = app.walltime_scale_hours * SECONDS_PER_HOUR
        req = float(rng.lognormal(mean=math.log(scale_s), sigma=0.7))
        req_walltime_s = int(min(max(req, 120.0), cfg.max_walltime_s))

        u = rng.random()
        if u < cfg.failed_fraction:
            fate = "FAILED"
            runtime_fraction = float(rng.uniform(0.001, 0.1))
        elif u < cfg.failed_fraction + cfg.timeout_fraction:
            fate = "TIMEOUT"
            runtime_fraction = 1.0
        elif u < cfg.failed_fraction + cfg.timeout_fraction + cfg.cancelled_fraction:
            fate = "CANCELLED"
            runtime_fraction = 0.0
        else:
            fate = "COMPLETED"
            runtime_fraction = float(np.clip(rng.beta(2.5, 2.0), 0.02, 0.98))

        if cores <= 4 and req_walltime_s <= SECONDS_PER_HOUR:
            queue = "debug"
        elif app.mem_fraction > 0.6 and "largemem" in cfg.queues:
            queue = "largemem"
        else:
            queue = "normal"

        return JobRequest(
            submit_ts=submit_ts,
            user=username,
            pi=pi_name,
            application=app.name,
            nodes=0,  # filled by the scheduler from the resource geometry
            cores=cores,
            req_walltime_s=req_walltime_s,
            queue=queue,
            runtime_fraction=runtime_fraction,
            fate=fate,
        )
