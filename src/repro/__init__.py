"""repro — a Python reproduction of *Federating XDMoD to Monitor Affiliated
Computing Resources* (HPCMASPA workshop, IEEE CLUSTER 2018).

The package rebuilds, at laptop scale, the whole system the paper
describes: an Open-XDMoD-equivalent monitoring stack (embedded data
warehouse, ETL shredders, configurable aggregation, data realms, web-style
query/chart/report layer, SSO authentication) plus the paper's
contribution — the **Federation module** — and the two new data realms
(Storage and Cloud).  Production data sources are replaced by
deterministic simulators (see DESIGN.md's substitution table).

Quick start::

    from repro import XdmodInstance, FederationHub, jobs_realm
    from repro.simulators import (
        WorkloadGenerator, figure1_sites, simulate_resource, to_sacct_log,
    )
    from repro.core import standardize_federation
    from repro.timeutil import ts

    sites = figure1_sites(scale=0.2)
    conversion, _ = standardize_federation(
        {n: p.resource for n, p in sites.items()})
    hub = FederationHub("hub", conversion=conversion)
    for name, preset in sites.items():
        inst = XdmodInstance(f"site_{name}", conversion=conversion)
        recs = simulate_resource(
            preset.resource,
            WorkloadGenerator(preset.workload).generate(
                ts(2017, 1, 1), ts(2018, 1, 1)))
        inst.pipeline.ingest_sacct(to_sacct_log(recs), default_resource=name)
        hub.join(inst, mode="tight")
    hub.aggregate_federation(["month"])
    top3 = jobs_realm().query(
        hub.federated_schemas(), "xdsu",
        start=ts(2017, 1, 1), end=ts(2018, 1, 1), group_by="resource",
    ).top(3)
"""

from .aggregation import (
    AggregationConfig,
    AggregationLevel,
    AggregationLevelSet,
    Aggregator,
    TABLE1_FEDERATION_HUB,
    TABLE1_INSTANCE_A,
    TABLE1_INSTANCE_B,
)
from .core import (
    FederationHub,
    FederationNetwork,
    IdentityMap,
    LooseChannel,
    ReplicationChannel,
    ReplicationFilter,
    RoutingPolicy,
    XDMOD_VERSION,
    XdmodInstance,
    check_federation,
    regenerate_satellite,
    standardize_federation,
)
from .etl import IngestPipeline
from .realms import cloud_realm, jobs_realm, storage_realm, supremm_realm
from .ui import ChartBuilder, JobViewer, UsageExplorer
from .warehouse import Database

__version__ = "1.0.0"

__all__ = [
    "AggregationConfig",
    "AggregationLevel",
    "AggregationLevelSet",
    "Aggregator",
    "ChartBuilder",
    "Database",
    "FederationHub",
    "FederationNetwork",
    "IdentityMap",
    "IngestPipeline",
    "JobViewer",
    "LooseChannel",
    "ReplicationChannel",
    "ReplicationFilter",
    "RoutingPolicy",
    "TABLE1_FEDERATION_HUB",
    "TABLE1_INSTANCE_A",
    "TABLE1_INSTANCE_B",
    "UsageExplorer",
    "XDMOD_VERSION",
    "XdmodInstance",
    "check_federation",
    "cloud_realm",
    "jobs_realm",
    "regenerate_satellite",
    "standardize_federation",
    "storage_realm",
    "supremm_realm",
    "__version__",
]
