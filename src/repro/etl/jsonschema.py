"""Minimal JSON-Schema validator.

Section III-A: storage data ingestion is filesystem-independent —
"installations must only ensure their data validates against our provided
JSON schema."  We implement the subset of JSON Schema draft-07 those
documents need: ``type``, ``properties``, ``required``,
``additionalProperties``, ``items``, ``enum``, ``minimum`` / ``maximum`` /
``exclusiveMinimum`` / ``exclusiveMaximum``, ``minLength`` / ``maxLength``,
and ``pattern``.

No external dependency: the validator is ~150 lines and raises
:class:`JsonSchemaError` with a JSON-pointer-ish path to the offending
value.
"""

from __future__ import annotations

import re
from typing import Any, Mapping


class JsonSchemaError(ValueError):
    """A document failed schema validation.

    ``path`` locates the failing value ("/items/3/file_count" style).
    """

    def __init__(self, message: str, path: str = "") -> None:
        super().__init__(f"{path or '/'}: {message}")
        self.path = path


_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate(document: Any, schema: Mapping[str, Any], *, path: str = "") -> None:
    """Validate ``document`` against ``schema``; raises on first failure."""
    stype = schema.get("type")
    if stype is not None:
        types = stype if isinstance(stype, list) else [stype]
        if not any(_TYPE_CHECKS.get(t, lambda v: False)(document) for t in types):
            raise JsonSchemaError(
                f"expected type {stype!r}, got {type(document).__name__}", path
            )

    if "enum" in schema and document not in schema["enum"]:
        raise JsonSchemaError(
            f"value {document!r} not in enum {schema['enum']!r}", path
        )

    if isinstance(document, (int, float)) and not isinstance(document, bool):
        if "minimum" in schema and document < schema["minimum"]:
            raise JsonSchemaError(
                f"{document!r} < minimum {schema['minimum']!r}", path
            )
        if "maximum" in schema and document > schema["maximum"]:
            raise JsonSchemaError(
                f"{document!r} > maximum {schema['maximum']!r}", path
            )
        if "exclusiveMinimum" in schema and document <= schema["exclusiveMinimum"]:
            raise JsonSchemaError(
                f"{document!r} <= exclusiveMinimum {schema['exclusiveMinimum']!r}",
                path,
            )
        if "exclusiveMaximum" in schema and document >= schema["exclusiveMaximum"]:
            raise JsonSchemaError(
                f"{document!r} >= exclusiveMaximum {schema['exclusiveMaximum']!r}",
                path,
            )

    if isinstance(document, str):
        if "minLength" in schema and len(document) < schema["minLength"]:
            raise JsonSchemaError(
                f"length {len(document)} < minLength {schema['minLength']}", path
            )
        if "maxLength" in schema and len(document) > schema["maxLength"]:
            raise JsonSchemaError(
                f"length {len(document)} > maxLength {schema['maxLength']}", path
            )
        if "pattern" in schema and not re.search(schema["pattern"], document):
            raise JsonSchemaError(
                f"{document!r} does not match pattern {schema['pattern']!r}", path
            )

    if isinstance(document, dict):
        props = schema.get("properties", {})
        for name in schema.get("required", ()):
            if name not in document:
                raise JsonSchemaError(f"missing required property {name!r}", path)
        additional = schema.get("additionalProperties", True)
        for key, value in document.items():
            if key in props:
                validate(value, props[key], path=f"{path}/{key}")
            elif additional is False:
                raise JsonSchemaError(f"unexpected property {key!r}", path)
            elif isinstance(additional, dict):
                validate(value, additional, path=f"{path}/{key}")

    if isinstance(document, list):
        items = schema.get("items")
        if isinstance(items, dict):
            for i, value in enumerate(document):
                validate(value, items, path=f"{path}/{i}")
        if "minItems" in schema and len(document) < schema["minItems"]:
            raise JsonSchemaError(
                f"{len(document)} items < minItems {schema['minItems']}", path
            )
        if "maxItems" in schema and len(document) > schema["maxItems"]:
            raise JsonSchemaError(
                f"{len(document)} items > maxItems {schema['maxItems']}", path
            )


def is_valid(document: Any, schema: Mapping[str, Any]) -> bool:
    """Boolean form of :func:`validate`."""
    try:
        validate(document, schema)
    except JsonSchemaError:
        return False
    return True
