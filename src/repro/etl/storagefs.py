"""Storage realm ingestion: schema-validated JSON snapshots.

Section III-A: storage data "will be acquired from monitoring tools ... or
filesystem APIs, then populated in a fashion independent of the storage
filesystem.  Data from filesystems such as Isilon, GPFS, Lustre, and Ceph
can be accommodated; installations must only ensure their data validates
against our provided JSON schema."

:data:`STORAGE_SNAPSHOT_SCHEMA` is that provided schema; ingestion rejects
non-conforming documents through :mod:`repro.etl.jsonschema`.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from ..warehouse import ColumnType, Schema, TableSchema, make_columns
from .jsonschema import JsonSchemaError, validate
from .star import DimensionCache, create_jobs_star

C = ColumnType

#: The JSON schema storage snapshot documents must validate against.
STORAGE_SNAPSHOT_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": [
        "resource", "filesystem", "mountpoint", "resource_type", "user",
        "ts", "file_count", "logical_usage_gb", "physical_usage_gb",
    ],
    "additionalProperties": True,
    "properties": {
        "resource": {"type": "string", "minLength": 1},
        "filesystem": {"type": "string", "minLength": 1},
        "mountpoint": {"type": "string", "pattern": "^/"},
        "resource_type": {"type": "string", "enum": ["persistent", "scratch"]},
        "user": {"type": "string", "minLength": 1},
        "pi": {"type": "string"},
        "system_username": {"type": "string"},
        "ts": {"type": "integer", "minimum": 0},
        "file_count": {"type": "integer", "minimum": 0},
        "logical_usage_gb": {"type": "number", "minimum": 0},
        "physical_usage_gb": {"type": "number", "minimum": 0},
        "soft_quota_gb": {"type": "number", "minimum": 0},
        "hard_quota_gb": {"type": "number", "minimum": 0},
    },
}

STORAGE_REALM_TABLES = ("fact_storage",)


def storage_fact_schema() -> TableSchema:
    return TableSchema(
        "fact_storage",
        make_columns([
            ("snapshot_id", C.INT, False),
            ("resource_id", C.INT, False),
            ("filesystem", C.STR, False),
            ("mountpoint", C.STR, False),
            ("resource_type", C.STR, False),
            ("person_id", C.INT, False),
            ("pi", C.STR),
            ("system_username", C.STR),
            ("ts", C.TIMESTAMP, False),
            ("file_count", C.INT, False),
            ("logical_usage_gb", C.FLOAT, False),
            ("physical_usage_gb", C.FLOAT, False),
            ("soft_quota_gb", C.FLOAT),
            ("hard_quota_gb", C.FLOAT),
        ]),
        primary_key=("snapshot_id",),
        indexes=("filesystem", "person_id"),
    )


def create_storage_realm(schema: Schema) -> None:
    """Create the storage realm fact table (and shared dims) if absent."""
    create_jobs_star(schema)  # shares dim_resource / dim_person
    if not schema.has_table("fact_storage"):
        schema.create_table(storage_fact_schema())


def ingest_storage_snapshots(
    schema: Schema,
    documents: Iterable[Mapping[str, Any]],
    *,
    strict: bool = True,
) -> tuple[int, int]:
    """Validate and ingest snapshot documents.

    Returns ``(ingested, rejected)``.  With ``strict=True`` the first
    invalid document raises :class:`JsonSchemaError`; otherwise invalid
    documents are counted and skipped.
    """
    create_storage_realm(schema)
    dims = DimensionCache(schema)
    fact = schema.table("fact_storage")
    next_id = len(fact) + 1
    ingested = rejected = 0
    for doc in documents:
        try:
            validate(doc, STORAGE_SNAPSHOT_SCHEMA)
        except JsonSchemaError:
            if strict:
                raise
            rejected += 1
            continue
        fact.insert(
            {
                "snapshot_id": next_id,
                "resource_id": dims.resource_id(doc["resource"]),
                "filesystem": doc["filesystem"],
                "mountpoint": doc["mountpoint"],
                "resource_type": doc["resource_type"],
                "person_id": dims.person_id(doc["user"]),
                "pi": doc.get("pi", ""),
                "system_username": doc.get("system_username", doc["user"]),
                "ts": doc["ts"],
                "file_count": doc["file_count"],
                "logical_usage_gb": float(doc["logical_usage_gb"]),
                "physical_usage_gb": float(doc["physical_usage_gb"]),
                # NULL = no quota configured; an explicit 0.0 in the
                # document is a real zero quota and must stay distinct
                "soft_quota_gb": (
                    float(doc["soft_quota_gb"])
                    if doc.get("soft_quota_gb") is not None else None
                ),
                "hard_quota_gb": (
                    float(doc["hard_quota_gb"])
                    if doc.get("hard_quota_gb") is not None else None
                ),
            }
        )
        next_id += 1
        ingested += 1
    return ingested, rejected
