"""ETL orchestration: the per-instance ingest pipeline.

An XDMoD instance runs a nightly pipeline: shred new resource-manager logs,
ingest them into the data warehouse, then aggregate (see
:mod:`repro.aggregation`).  :class:`IngestPipeline` bundles the shred+ingest
steps for every supported source type and tracks per-source high-water
marks so repeated runs are incremental — the property live (tight)
federation relies on, since the replicator streams whatever the pipeline
commits.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from ..obs import Observability
from ..simulators.hpl import ConversionTable
from ..simulators.perf import JobPerformance
from ..warehouse import ColumnType, Database, Schema, TableSchema, make_columns
from .cloudevents import ingest_cloud_events
from .perfingest import ingest_performance
from .slurm import ParsedJob, parse_sacct_log
from .star import PersonInfo, ingest_jobs
from .storagefs import ingest_storage_snapshots

C = ColumnType

#: Name of the primary warehouse schema on every instance (XDMoD's `modw`).
WAREHOUSE_SCHEMA = "modw"


def marker_schema() -> TableSchema:
    return TableSchema(
        "etl_markers",
        make_columns([
            ("source", C.STR, False),
            ("high_water_ts", C.TIMESTAMP, False),
            ("records_total", C.INT, False),
        ]),
        primary_key=("source",),
    )


class _StageCount:
    """Mutable record counter yielded by ``IngestPipeline._stage``."""

    __slots__ = ("records",)

    def __init__(self) -> None:
        self.records = 0


@dataclass
class IngestReport:
    """Counts from one pipeline run."""

    jobs: int = 0
    perf: int = 0
    storage: int = 0
    storage_rejected: int = 0
    vms: int = 0
    cloud_rejected: int = 0

    def total(self) -> int:
        return self.jobs + self.perf + self.storage + self.vms


class IngestPipeline:
    """Shred + ingest for one XDMoD instance's warehouse schema."""

    def __init__(
        self,
        database: Database,
        *,
        schema_name: str = WAREHOUSE_SCHEMA,
        conversion: ConversionTable | None = None,
        directory: Mapping[str, PersonInfo] | None = None,
        science_fields: Mapping[str, str] | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.database = database
        self.schema: Schema = database.ensure_schema(schema_name)
        self.conversion = conversion or ConversionTable()
        self.directory = dict(directory or {})
        self.science_fields = dict(science_fields or {})
        self.obs = obs
        if not self.schema.has_table("etl_markers"):
            self.schema.create_table(marker_schema())

    # -- telemetry -----------------------------------------------------------

    @contextmanager
    def _stage(self, source: str):
        """Span + per-source record count/duration around one ingest call.

        The yielded object carries a mutable ``records``; metrics are
        published once per stage, not per record.
        """
        stage = _StageCount()
        if self.obs is None:
            yield stage
            return
        registry = self.obs.registry
        start = self.obs.clock.now()
        with self.obs.tracer.span(f"ingest_{source}", source=source):
            try:
                yield stage
            finally:
                registry.counter(
                    "etl_ingest_records_total",
                    "Records ingested per ETL source",
                    ("source",),
                ).labels(source=source).inc(stage.records)
                registry.histogram(
                    "etl_ingest_seconds",
                    "Wall time of one ingest stage per ETL source",
                    ("source",),
                ).labels(source=source).observe(self.obs.clock.now() - start)

    # -- markers -------------------------------------------------------------

    def high_water(self, source: str) -> int:
        row = self.schema.table("etl_markers").get((source,))
        return row["high_water_ts"] if row else 0

    def _advance(self, source: str, ts: int, records: int) -> None:
        markers = self.schema.table("etl_markers")
        row = markers.get((source,))
        markers.upsert(
            {
                "source": source,
                "high_water_ts": max(ts, row["high_water_ts"] if row else 0),
                "records_total": (row["records_total"] if row else 0) + records,
            }
        )

    # -- sources -------------------------------------------------------------

    def ingest_sacct(
        self, log_text: str, *, default_resource: str = "unknown"
    ) -> int:
        """Shred a sacct dump and ingest the jobs realm."""
        jobs = list(
            parse_sacct_log(log_text, default_resource=default_resource)
        )
        return self.ingest_parsed_jobs(jobs)

    def ingest_pbs(
        self, log_text: str, *, default_resource: str = "unknown"
    ) -> int:
        """Shred a PBS/Torque accounting log and ingest the jobs realm."""
        from .pbs import parse_pbs_log

        jobs = list(parse_pbs_log(log_text, default_resource=default_resource))
        return self.ingest_parsed_jobs(jobs)

    def ingest_parsed_jobs(self, jobs: Iterable[ParsedJob]) -> int:
        jobs = list(jobs)
        with self._stage("jobs") as stage:
            n = ingest_jobs(
                self.schema,
                jobs,
                conversion=self.conversion,
                directory=self.directory,
                science_fields=self.science_fields,
            )
            stage.records = n
            if jobs:
                self._advance("jobs", max(j.end_ts for j in jobs), n)
        return n

    def ingest_performance(self, performances: Iterable[JobPerformance]) -> int:
        performances = list(performances)
        with self._stage("supremm") as stage:
            n = ingest_performance(self.schema, performances)
            stage.records = n
            if performances:
                self._advance(
                    "supremm",
                    max(int(p.timestamps[-1]) for p in performances if len(p.timestamps)),
                    n,
                )
        return n

    def ingest_storage(
        self, documents: Iterable[Mapping[str, Any]], *, strict: bool = True
    ) -> tuple[int, int]:
        documents = list(documents)
        with self._stage("storage") as stage:
            ingested, rejected = ingest_storage_snapshots(
                self.schema, documents, strict=strict
            )
            stage.records = ingested
            if documents:
                self._advance("storage", max(d["ts"] for d in documents), ingested)
        return ingested, rejected

    def ingest_cloud(
        self, events: Iterable[Mapping[str, Any]], *, strict: bool = True
    ) -> tuple[int, int]:
        events = list(events)
        with self._stage("cloud") as stage:
            vms, rejected = ingest_cloud_events(self.schema, events, strict=strict)
            stage.records = vms
            if events:
                self._advance("cloud", max(e["ts"] for e in events), vms)
        return vms, rejected

    # -- orchestration ---------------------------------------------------------

    def run(
        self,
        *,
        sacct_logs: Mapping[str, str] | None = None,
        performances: Iterable[JobPerformance] | None = None,
        storage_docs: Iterable[Mapping[str, Any]] | None = None,
        cloud_events: Iterable[Mapping[str, Any]] | None = None,
    ) -> IngestReport:
        """One full pipeline pass over whatever sources are supplied.

        ``sacct_logs`` maps resource name -> log text.
        """
        report = IngestReport()
        for resource, log_text in (sacct_logs or {}).items():
            report.jobs += self.ingest_sacct(log_text, default_resource=resource)
        if performances is not None:
            report.perf = self.ingest_performance(performances)
        if storage_docs is not None:
            report.storage, report.storage_rejected = self.ingest_storage(
                storage_docs, strict=False
            )
        if cloud_events is not None:
            report.vms, report.cloud_rejected = self.ingest_cloud(
                cloud_events, strict=False
            )
        return report
