"""PBS/Torque accounting-log shredder.

Open XDMoD "accepts data from a variety of resource managers" — SLURM,
PBS/Torque, SGE, LSF.  This module parses the PBS server accounting format
(one record per line: ``timestamp;record_type;job_id;key=value ...``),
keeping the ``E`` (job end) records, which carry everything the jobs realm
needs.  The output is the same :class:`~repro.etl.slurm.ParsedJob` the
SLURM shredder yields, so everything downstream (star schema, aggregation,
federation) is resource-manager agnostic.

Supported keys: ``user``, ``group``, ``account``, ``queue``, ``jobname``,
``qtime`` (queued), ``start``, ``end`` (epoch seconds),
``Resource_List.walltime`` (HH:MM:SS), ``Resource_List.nodect``,
``Resource_List.ncpus``, and ``Exit_status``.
"""

from __future__ import annotations

import datetime as _dt
from typing import Iterable, Iterator

from .slurm import ParsedJob, SacctParseError, parse_timelimit


class PbsParseError(ValueError):
    """A PBS accounting record could not be parsed."""


_RECORD_TYPES = ("Q", "S", "E", "D", "A")  # queue, start, end, delete, abort


def _parse_kv(blob: str) -> dict[str, str]:
    """Parse the space-separated ``key=value`` attribute section.

    PBS never quotes values; values themselves may contain ``=`` (e.g.
    environment dumps), so split on the first ``=`` only.
    """
    out: dict[str, str] = {}
    for token in blob.split():
        if "=" not in token:
            continue
        key, value = token.split("=", 1)
        out[key] = value
    return out


def parse_pbs_record(
    line: str, *, default_resource: str = "unknown"
) -> ParsedJob | None:
    """Parse one accounting line; returns None for non-``E`` records."""
    parts = line.rstrip("\n").split(";", 3)
    if len(parts) != 4:
        raise PbsParseError(f"expected 4 ';'-separated fields: {line!r}")
    _stamp, record_type, job_field, attr_blob = parts
    if record_type not in _RECORD_TYPES:
        raise PbsParseError(f"unknown record type {record_type!r}: {line!r}")
    if record_type != "E":
        return None
    attrs = _parse_kv(attr_blob)
    try:
        job_id = int(job_field.split(".", 1)[0].split("[", 1)[0])
        submit_ts = int(attrs["qtime"])
        start_ts = int(attrs.get("start", attrs["end"]))
        end_ts = int(attrs["end"])
        cores = int(attrs.get("Resource_List.ncpus", "1"))
        nodes = int(attrs.get("Resource_List.nodect", "1"))
        exit_status = int(attrs.get("Exit_status", "0"))
    except (KeyError, ValueError) as exc:
        raise PbsParseError(f"bad attribute in {line!r}: {exc}") from exc
    try:
        req_walltime_s = parse_timelimit(
            attrs.get("Resource_List.walltime", "")
        )
    except SacctParseError as exc:
        raise PbsParseError(str(exc)) from exc

    # PBS has no explicit TIMEOUT/CANCELLED states on E records; XDMoD's
    # shredder infers: Exit_status 0 completed; 271 (JOB_EXEC_KILL) and
    # -11/-12 style negative codes are terminations.
    if exit_status == 0:
        state = "COMPLETED"
    elif exit_status == 271 or exit_status < 0:
        state = "TIMEOUT" if exit_status == 271 else "CANCELLED"
    else:
        state = "FAILED"

    return ParsedJob(
        job_id=job_id,
        user=attrs.get("user", "unknown"),
        pi=attrs.get("account", attrs.get("group", "unknown")),
        queue=attrs.get("queue", "batch"),
        application=attrs.get("jobname", "uncategorized"),
        submit_ts=submit_ts,
        start_ts=start_ts,
        end_ts=end_ts,
        nodes=nodes,
        cores=cores,
        req_walltime_s=req_walltime_s,
        state=state,
        exit_code=max(exit_status, 0),
        resource=attrs.get("server", default_resource),
    )


def parse_pbs_log(
    text: str | Iterable[str],
    *,
    default_resource: str = "unknown",
    strict: bool = True,
) -> Iterator[ParsedJob]:
    """Parse a full PBS accounting log, yielding end-record jobs."""
    lines = text.splitlines() if isinstance(text, str) else text
    for line in lines:
        line = line.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        try:
            job = parse_pbs_record(line, default_resource=default_resource)
        except PbsParseError:
            if strict:
                raise
            continue
        if job is not None:
            yield job


def _pbs_stamp(epoch: int) -> str:
    return _dt.datetime.fromtimestamp(epoch, tz=_dt.timezone.utc).strftime(
        "%m/%d/%Y %H:%M:%S"
    )


def to_pbs_record(record) -> str:
    """Render a simulator :class:`~repro.simulators.cluster.JobRecord` as a
    PBS ``E`` accounting line (the multi-format export used in tests and
    the multi-resource-manager examples)."""
    limit = record.req_walltime_s
    walltime = f"{limit // 3600:02d}:{(limit % 3600) // 60:02d}:{limit % 60:02d}"
    if record.state == "COMPLETED":
        exit_status = 0
    elif record.state == "TIMEOUT":
        exit_status = 271
    elif record.state == "CANCELLED":
        exit_status = -1
    else:
        exit_status = max(record.exit_code, 1)
    attrs = " ".join([
        f"user={record.user}",
        f"group={record.pi}",
        f"account={record.pi}",
        f"jobname={record.application}",
        f"queue={record.queue}",
        f"qtime={record.submit_ts}",
        f"start={record.start_ts}",
        f"end={record.end_ts}",
        f"Resource_List.walltime={walltime}",
        f"Resource_List.nodect={max(record.nodes, 1)}",
        f"Resource_List.ncpus={record.cores}",
        f"Exit_status={exit_status}",
        f"server={record.resource}",
    ])
    return (
        f"{_pbs_stamp(record.end_ts)};E;{record.job_id}.{record.resource};"
        f"{attrs}"
    )


def to_pbs_log(records) -> str:
    """Render a batch of simulator records as a PBS accounting log."""
    return "\n".join(to_pbs_record(r) for r in records) + "\n"
