"""Star-schema builder for the HPC Jobs realm.

XDMoD's data warehouse is a classic star: dimension tables (person, PI,
resource, queue, application) keyed by surrogate ids, and a job fact table
carrying foreign keys plus the additive measures (CPU hours, node hours,
XD SUs, wait/wall time).  This module creates those tables in a warehouse
schema and ingests :class:`~repro.etl.slurm.ParsedJob` rows, maintaining the
dimensions incrementally.

XD SU standardization happens at ingest: the fact row stores both raw
``cpu_hours`` and ``xdsu`` (CPU hours x the resource's HPL-derived
conversion factor), mirroring how XSEDE XDMoD stores charges in normalized
units (Section II-C6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..simulators.hpl import ConversionTable
from ..timeutil import SECONDS_PER_HOUR
from ..warehouse import ColumnType, Schema, TableSchema, make_columns
from .slurm import ParsedJob

C = ColumnType

#: Table names of the jobs-realm star (the set tight federation replicates).
JOBS_REALM_TABLES = (
    "dim_resource",
    "dim_person",
    "dim_pi",
    "dim_application",
    "dim_queue",
    "fact_job",
)


def jobs_star_schemas() -> list[TableSchema]:
    """Schemas of the HPC Jobs realm tables."""
    return [
        TableSchema(
            "dim_resource",
            make_columns([
                ("resource_id", C.INT, False),
                ("name", C.STR, False),
                ("nodes", C.INT),
                ("cores", C.INT),
                ("conversion_factor", C.FLOAT),
            ]),
            primary_key=("resource_id",),
            indexes=("name",),
        ),
        TableSchema(
            "dim_person",
            make_columns([
                ("person_id", C.INT, False),
                ("username", C.STR, False),
                ("full_name", C.STR),
                ("pi", C.STR),
                ("decanal_unit", C.STR),
                ("department", C.STR),
                ("gateway_label", C.STR),
            ]),
            primary_key=("person_id",),
            indexes=("username",),
        ),
        TableSchema(
            "dim_pi",
            make_columns([
                ("pi_id", C.INT, False),
                ("username", C.STR, False),
            ]),
            primary_key=("pi_id",),
            indexes=("username",),
        ),
        TableSchema(
            "dim_application",
            make_columns([
                ("app_id", C.INT, False),
                ("name", C.STR, False),
                ("science_field", C.STR),
            ]),
            primary_key=("app_id",),
            indexes=("name",),
        ),
        TableSchema(
            "dim_queue",
            make_columns([
                ("queue_id", C.INT, False),
                ("name", C.STR, False),
                ("resource", C.STR, False),
            ]),
            primary_key=("queue_id",),
            indexes=("name",),
        ),
        TableSchema(
            "fact_job",
            make_columns([
                ("job_id", C.INT, False),
                ("resource_id", C.INT, False),
                ("person_id", C.INT, False),
                ("pi_id", C.INT, False),
                ("app_id", C.INT, False),
                ("queue_id", C.INT, False),
                ("submit_ts", C.TIMESTAMP, False),
                ("start_ts", C.TIMESTAMP, False),
                ("end_ts", C.TIMESTAMP, False),
                ("walltime_s", C.INT, False),
                ("wait_s", C.INT, False),
                ("req_walltime_s", C.INT, False),
                ("nodes", C.INT, False),
                ("cores", C.INT, False),
                ("cpu_hours", C.FLOAT, False),
                ("node_hours", C.FLOAT, False),
                ("xdsu", C.FLOAT, False),
                ("state", C.STR, False),
                ("exit_code", C.INT, False),
            ]),
            primary_key=("resource_id", "job_id"),
            indexes=("resource_id", "person_id", "app_id"),
        ),
    ]


def create_jobs_star(schema: Schema) -> None:
    """Create the jobs-realm tables in ``schema`` (idempotent)."""
    for table_schema in jobs_star_schemas():
        if not schema.has_table(table_schema.name):
            schema.create_table(table_schema)


@dataclass(frozen=True)
class PersonInfo:
    """Directory metadata attached to a username at ingest time.

    Open XDMoD sites load this from their institutional hierarchy
    configuration; the workload simulator supplies it from its population.
    """

    full_name: str = ""
    pi: str = ""
    decanal_unit: str = "Unknown"
    department: str = "Unknown"


class DimensionCache:
    """Upsert-or-lookup surrogate ids for the star's dimensions."""

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._resource: dict[str, int] = {}
        self._person: dict[str, int] = {}
        self._pi: dict[str, int] = {}
        self._app: dict[str, int] = {}
        self._queue: dict[tuple[str, str], int] = {}
        self._prime()

    def _prime(self) -> None:
        """Load existing dimension rows (supports incremental ingest)."""
        s = self._schema
        for row in s.table("dim_resource").rows():
            self._resource[row["name"]] = row["resource_id"]
        for row in s.table("dim_person").rows():
            self._person[row["username"]] = row["person_id"]
        for row in s.table("dim_pi").rows():
            self._pi[row["username"]] = row["pi_id"]
        for row in s.table("dim_application").rows():
            self._app[row["name"]] = row["app_id"]
        for row in s.table("dim_queue").rows():
            self._queue[(row["resource"], row["name"])] = row["queue_id"]

    def resource_id(
        self,
        name: str,
        *,
        nodes: int | None = None,
        cores: int | None = None,
        conversion_factor: float | None = None,
    ) -> int:
        rid = self._resource.get(name)
        if rid is None:
            rid = len(self._resource) + 1
            self._schema.table("dim_resource").insert(
                {
                    "resource_id": rid,
                    "name": name,
                    "nodes": nodes,
                    "cores": cores,
                    "conversion_factor": conversion_factor,
                }
            )
            self._resource[name] = rid
        return rid

    def person_id(self, username: str, info: PersonInfo | None = None) -> int:
        pid = self._person.get(username)
        if pid is None:
            pid = len(self._person) + 1
            info = info or PersonInfo()
            # science-gateway community accounts are flagged by convention
            # (XDMoD maps them from its gateway account list)
            gateway = (
                username[3:] if username.startswith("gw_") else ""
            )
            self._schema.table("dim_person").insert(
                {
                    "person_id": pid,
                    "username": username,
                    "full_name": info.full_name or username,
                    "pi": info.pi,
                    "decanal_unit": info.decanal_unit,
                    "department": info.department,
                    "gateway_label": gateway or "Not a gateway",
                }
            )
            self._person[username] = pid
        return pid

    def pi_id(self, username: str) -> int:
        pid = self._pi.get(username)
        if pid is None:
            pid = len(self._pi) + 1
            self._schema.table("dim_pi").insert(
                {"pi_id": pid, "username": username}
            )
            self._pi[username] = pid
        return pid

    def app_id(self, name: str, science_field: str = "Unknown") -> int:
        aid = self._app.get(name)
        if aid is None:
            aid = len(self._app) + 1
            self._schema.table("dim_application").insert(
                {"app_id": aid, "name": name, "science_field": science_field}
            )
            self._app[name] = aid
        return aid

    def queue_id(self, resource: str, name: str) -> int:
        qid = self._queue.get((resource, name))
        if qid is None:
            qid = len(self._queue) + 1
            self._schema.table("dim_queue").insert(
                {"queue_id": qid, "name": name, "resource": resource}
            )
            self._queue[(resource, name)] = qid
        return qid


def ingest_jobs(
    schema: Schema,
    jobs: Iterable[ParsedJob],
    *,
    conversion: ConversionTable | None = None,
    directory: Mapping[str, PersonInfo] | None = None,
    science_fields: Mapping[str, str] | None = None,
) -> int:
    """Ingest parsed job rows into the star; returns jobs inserted.

    Jobs already present (same resource + job id) are skipped, making
    repeated ingests of overlapping log windows idempotent — exactly the
    behaviour a nightly shredder needs.
    """
    create_jobs_star(schema)
    dims = DimensionCache(schema)
    fact = schema.table("fact_job")
    conversion = conversion or ConversionTable()
    directory = directory or {}
    science_fields = science_fields or {}
    inserted = 0
    for job in jobs:
        resource_id = dims.resource_id(
            job.resource, conversion_factor=conversion.factor(job.resource)
        )
        if fact.get((resource_id, job.job_id)) is not None:
            continue
        cpu_hours = job.cores * job.walltime_s / SECONDS_PER_HOUR
        fact.insert(
            {
                "job_id": job.job_id,
                "resource_id": resource_id,
                "person_id": dims.person_id(job.user, directory.get(job.user)),
                "pi_id": dims.pi_id(job.pi),
                "app_id": dims.app_id(
                    job.application,
                    science_fields.get(job.application, "Unknown"),
                ),
                "queue_id": dims.queue_id(job.resource, job.queue),
                "submit_ts": job.submit_ts,
                "start_ts": job.start_ts,
                "end_ts": job.end_ts,
                "walltime_s": job.walltime_s,
                "wait_s": job.wait_s,
                "req_walltime_s": job.req_walltime_s,
                "nodes": job.nodes,
                "cores": job.cores,
                "cpu_hours": cpu_hours,
                "node_hours": job.nodes * job.walltime_s / SECONDS_PER_HOUR,
                "xdsu": conversion.to_xdsu(job.resource, cpu_hours),
                "state": job.state,
                "exit_code": job.exit_code,
            }
        )
        inserted += 1
    return inserted


def dimension_labels(schema: Schema, dimension: str) -> dict[int, str]:
    """Map surrogate ids to display labels for one dimension table."""
    table_key = {
        "dim_resource": ("resource_id", "name"),
        "dim_person": ("person_id", "username"),
        "dim_pi": ("pi_id", "username"),
        "dim_application": ("app_id", "name"),
        "dim_queue": ("queue_id", "name"),
    }
    key, label = table_key[dimension]
    return {row[key]: row[label] for row in schema.table(dimension).rows()}
