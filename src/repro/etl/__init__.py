"""ETL: shredders, validators, and star-schema ingestion.

One submodule per source type (SLURM accounting, SUPReMM performance, cloud
VM events, storage snapshots) plus the star-schema builder and the
:class:`IngestPipeline` orchestrator.
"""

from .cloudevents import (
    CLOUD_EVENT_SCHEMA,
    CLOUD_REALM_TABLES,
    VM_STATES,
    create_cloud_realm,
    ingest_cloud_events,
)
from .jsonschema import JsonSchemaError, is_valid, validate
from .perfingest import (
    HEAVY_TABLES,
    SUPREMM_REALM_TABLES,
    create_supremm_realm,
    ingest_performance,
)
from .pbs import (
    PbsParseError,
    parse_pbs_log,
    parse_pbs_record,
    to_pbs_log,
    to_pbs_record,
)
from .pipeline import WAREHOUSE_SCHEMA, IngestPipeline, IngestReport
from .slurm import (
    JOB_STATES,
    ParsedJob,
    SacctParseError,
    normalize_state,
    parse_exit_code,
    parse_sacct_line,
    parse_sacct_log,
    parse_timelimit,
)
from .star import (
    JOBS_REALM_TABLES,
    DimensionCache,
    PersonInfo,
    create_jobs_star,
    dimension_labels,
    ingest_jobs,
    jobs_star_schemas,
)
from .storagefs import (
    STORAGE_REALM_TABLES,
    STORAGE_SNAPSHOT_SCHEMA,
    create_storage_realm,
    ingest_storage_snapshots,
)

__all__ = [
    "CLOUD_EVENT_SCHEMA",
    "CLOUD_REALM_TABLES",
    "DimensionCache",
    "HEAVY_TABLES",
    "IngestPipeline",
    "IngestReport",
    "JOBS_REALM_TABLES",
    "JOB_STATES",
    "JsonSchemaError",
    "ParsedJob",
    "PbsParseError",
    "PersonInfo",
    "STORAGE_REALM_TABLES",
    "STORAGE_SNAPSHOT_SCHEMA",
    "SUPREMM_REALM_TABLES",
    "SacctParseError",
    "VM_STATES",
    "WAREHOUSE_SCHEMA",
    "create_cloud_realm",
    "create_jobs_star",
    "create_storage_realm",
    "create_supremm_realm",
    "dimension_labels",
    "ingest_cloud_events",
    "ingest_jobs",
    "ingest_performance",
    "ingest_storage_snapshots",
    "is_valid",
    "jobs_star_schemas",
    "normalize_state",
    "parse_exit_code",
    "parse_pbs_log",
    "parse_pbs_record",
    "parse_sacct_line",
    "parse_sacct_log",
    "parse_timelimit",
    "to_pbs_log",
    "to_pbs_record",
    "validate",
]
