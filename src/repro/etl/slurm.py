"""SLURM ``sacct`` log shredder.

Open XDMoD "mines log files from resource managers such as SLURM"; its
shredder parses accounting dumps into normalized job rows.  This parser
consumes the ``sacct --parsable2`` pipe-delimited format that
:func:`repro.simulators.cluster.to_sacct_log` emits (and that real sites
export), tolerating the quirks real logs carry: a header line, ``Unknown``
start times on never-started jobs, ``CANCELLED by <uid>`` states,
``HH:MM:SS`` and ``D-HH:MM:SS`` time limits, and ``rc:signal`` exit codes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..timeutil import parse_iso


class SacctParseError(ValueError):
    """A line in the accounting dump could not be parsed."""


#: Canonical job states after normalization.
JOB_STATES = ("COMPLETED", "FAILED", "TIMEOUT", "CANCELLED", "NODE_FAIL", "RUNNING")

_EXPECTED_FIELDS = 14


@dataclass(frozen=True)
class ParsedJob:
    """One normalized accounting row (the shredder's output)."""

    job_id: int
    user: str
    pi: str
    queue: str
    application: str
    submit_ts: int
    start_ts: int
    end_ts: int
    nodes: int
    cores: int
    req_walltime_s: int
    state: str
    exit_code: int
    resource: str

    @property
    def walltime_s(self) -> int:
        return max(0, self.end_ts - self.start_ts)

    @property
    def wait_s(self) -> int:
        return max(0, self.start_ts - self.submit_ts)


def parse_timelimit(text: str) -> int:
    """Parse ``[D-]HH:MM[:SS]`` into seconds.

    ``UNLIMITED`` and ``Partition_Limit`` map to 0 (meaning "no explicit
    limit recorded"), as the XDMoD shredder does.
    """
    text = text.strip()
    if not text or text.upper() in ("UNLIMITED", "PARTITION_LIMIT", "NONE"):
        return 0
    days = 0
    if "-" in text:
        day_part, text = text.split("-", 1)
        days = int(day_part)
    parts = text.split(":")
    if len(parts) == 3:
        h, m, s = (int(p) for p in parts)
    elif len(parts) == 2:
        h, m = (int(p) for p in parts)
        s = 0
    else:
        raise SacctParseError(f"bad time limit {text!r}")
    return ((days * 24 + h) * 60 + m) * 60 + s


def normalize_state(text: str) -> str:
    """Collapse sacct state variants to a canonical state.

    ``CANCELLED by 1234`` -> ``CANCELLED``; unknown states pass through
    upper-cased so downstream filters can still see them.
    """
    state = text.strip().upper()
    if state.startswith("CANCELLED"):
        return "CANCELLED"
    return state


def parse_exit_code(text: str) -> int:
    """``rc:signal`` -> rc."""
    text = text.strip()
    if not text:
        return 0
    return int(text.split(":", 1)[0])


def parse_sacct_line(line: str, *, default_resource: str = "unknown") -> ParsedJob:
    """Parse one non-header sacct line."""
    fields = line.rstrip("\n").split("|")
    if len(fields) != _EXPECTED_FIELDS:
        raise SacctParseError(
            f"expected {_EXPECTED_FIELDS} fields, got {len(fields)}: {line!r}"
        )
    (
        job_id, user, account, partition, job_name, submit, start, end,
        nnodes, ncpus, timelimit, state, exit_code, cluster,
    ) = fields
    try:
        submit_ts = parse_iso(submit)
        end_ts = parse_iso(end)
        if start.strip() in ("Unknown", "None", ""):
            start_ts = end_ts  # never started
        else:
            start_ts = parse_iso(start)
    except ValueError as exc:
        raise SacctParseError(f"bad timestamp in {line!r}: {exc}") from exc
    try:
        return ParsedJob(
            job_id=int(job_id.split(".", 1)[0].split("_", 1)[0]),
            user=user,
            pi=account,
            queue=partition,
            application=job_name or "uncategorized",
            submit_ts=submit_ts,
            start_ts=start_ts,
            end_ts=end_ts,
            nodes=int(nnodes),
            cores=int(ncpus),
            req_walltime_s=parse_timelimit(timelimit),
            state=normalize_state(state),
            exit_code=parse_exit_code(exit_code),
            resource=cluster or default_resource,
        )
    except ValueError as exc:
        raise SacctParseError(f"bad field in {line!r}: {exc}") from exc


def parse_sacct_log(
    text: str | Iterable[str],
    *,
    default_resource: str = "unknown",
    skip_steps: bool = True,
    strict: bool = True,
) -> Iterator[ParsedJob]:
    """Parse a full sacct dump (string or line iterable).

    Job *steps* (``1234.batch``, ``1234.0``) are sub-records of an
    allocation; XDMoD's shredder keeps only the parent record, which
    ``skip_steps`` reproduces.  With ``strict=False`` malformed lines are
    skipped instead of raising (production shredders log-and-continue).
    """
    lines = text.splitlines() if isinstance(text, str) else text
    for lineno, line in enumerate(lines, start=1):
        line = line.rstrip("\n")
        if not line:
            continue
        if line.startswith("JobID|"):
            continue  # header
        if skip_steps and "." in line.split("|", 1)[0]:
            continue
        try:
            yield parse_sacct_line(line, default_resource=default_resource)
        except SacctParseError:
            if strict:
                raise
