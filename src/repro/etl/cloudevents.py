"""Cloud realm ingestion: VM lifecycle event sessionization.

Section III-B: cloud monitoring differs fundamentally from HPC jobs — VM
wall time is the time a VM spent *running* (not provisioned), VMs stop /
start / pause / resume, and configuration (cores, memory, disk) mutates via
resize.  The ETL therefore reconstructs, from the raw event stream:

- ``fact_vm``: one row per VM with reservation window, running wall
  seconds, core-hours (integrated over the actual flavor in effect during
  each running interval), state-change counts, and time-per-state; and
- ``fact_vm_interval``: one row per contiguous *state interval* carrying
  the flavor in effect, so the aggregation engine can bin core-hours by
  month and by VM memory size (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from ..timeutil import SECONDS_PER_HOUR
from ..warehouse import ColumnType, Schema, TableSchema, make_columns
from .jsonschema import JsonSchemaError, validate
from .star import DimensionCache, create_jobs_star

C = ColumnType

#: Schema the raw event documents must satisfy.
CLOUD_EVENT_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": [
        "event_id", "vm_id", "event_type", "ts", "instance_type",
        "vcpus", "mem_gb", "disk_gb", "user", "project", "resource",
    ],
    "properties": {
        "event_id": {"type": "integer", "minimum": 1},
        "vm_id": {"type": "integer", "minimum": 1},
        "event_type": {
            "type": "string",
            "enum": [
                "provision", "start", "stop", "pause", "unpause",
                "resize", "terminate",
            ],
        },
        "ts": {"type": "integer", "minimum": 0},
        "instance_type": {"type": "string", "minLength": 1},
        "vcpus": {"type": "integer", "minimum": 1},
        "mem_gb": {"type": "number", "exclusiveMinimum": 0},
        "disk_gb": {"type": "number", "minimum": 0},
        "user": {"type": "string", "minLength": 1},
        "project": {"type": "string", "minLength": 1},
        "resource": {"type": "string", "minLength": 1},
        "os": {"type": "string"},
        "submission_venue": {"type": "string"},
    },
}

CLOUD_REALM_TABLES = ("fact_vm", "fact_vm_interval")

#: VM states an interval can be in.
VM_STATES = ("running", "stopped", "paused")


def cloud_fact_schemas() -> list[TableSchema]:
    return [
        TableSchema(
            "fact_vm",
            make_columns([
                ("vm_id", C.INT, False),
                ("resource_id", C.INT, False),
                ("person_id", C.INT, False),
                ("project", C.STR, False),
                ("os", C.STR, False),
                ("submission_venue", C.STR, False),
                ("provision_ts", C.TIMESTAMP, False),
                ("terminate_ts", C.TIMESTAMP),  # NULL while VM is open
                ("first_instance_type", C.STR, False),
                ("last_instance_type", C.STR, False),
                ("last_vcpus", C.INT, False),
                ("last_mem_gb", C.FLOAT, False),
                ("last_disk_gb", C.FLOAT, False),
                ("wall_s", C.INT, False),          # running seconds
                ("core_hours", C.FLOAT, False),    # integral vcpus*running
                ("reserved_core_hours", C.FLOAT, False),  # provision->end
                ("reserved_mem_gb_hours", C.FLOAT, False),
                ("reserved_disk_gb_hours", C.FLOAT, False),
                ("n_state_changes", C.INT, False),
                ("n_resizes", C.INT, False),
                ("running_s", C.INT, False),
                ("stopped_s", C.INT, False),
                ("paused_s", C.INT, False),
            ]),
            primary_key=("resource_id", "vm_id"),
            indexes=("person_id",),
        ),
        TableSchema(
            "fact_vm_interval",
            make_columns([
                ("interval_id", C.INT, False),
                ("vm_id", C.INT, False),
                ("resource_id", C.INT, False),
                ("person_id", C.INT, False),
                ("project", C.STR, False),
                ("os", C.STR, False),
                ("submission_venue", C.STR, False),
                ("instance_type", C.STR, False),
                ("state", C.STR, False),
                ("start_ts", C.TIMESTAMP, False),
                ("end_ts", C.TIMESTAMP, False),
                ("vcpus", C.INT, False),
                ("mem_gb", C.FLOAT, False),
                ("disk_gb", C.FLOAT, False),
            ]),
            primary_key=("interval_id",),
            indexes=("vm_id", "state"),
        ),
    ]


def create_cloud_realm(schema: Schema) -> None:
    create_jobs_star(schema)  # shares dim_resource / dim_person
    for table_schema in cloud_fact_schemas():
        if not schema.has_table(table_schema.name):
            schema.create_table(table_schema)


@dataclass
class _VmState:
    """Accumulator while walking one VM's events in time order."""

    events: list[dict]


def _sessionize(events: list[dict], horizon_ts: int) -> dict[str, Any] | None:
    """Fold one VM's time-ordered events into fact rows.

    Returns the ``fact_vm`` row plus its intervals, or None for an empty
    stream.  A VM with no terminate event is treated as open until
    ``horizon_ts`` (the latest timestamp seen in the whole feed).
    """
    if not events:
        return None
    first = events[0]
    provision_ts = first["ts"]
    state = "stopped"  # provisioned but not yet started
    flavor = (first["instance_type"], first["vcpus"], first["mem_gb"], first["disk_gb"])
    cursor = provision_ts
    intervals: list[dict[str, Any]] = []
    per_state = {"running": 0, "stopped": 0, "paused": 0}
    core_hours = 0.0
    n_state_changes = 0
    n_resizes = 0
    terminate_ts: int | None = None

    def close_interval(end_ts: int) -> None:
        nonlocal core_hours
        if end_ts <= cursor:
            return
        span = end_ts - cursor
        per_state[state] += span
        if state == "running":
            core_hours += flavor[1] * span / SECONDS_PER_HOUR
        intervals.append(
            {
                "state": state,
                "start_ts": cursor,
                "end_ts": end_ts,
                "instance_type": flavor[0],
                "vcpus": flavor[1],
                "mem_gb": flavor[2],
                "disk_gb": flavor[3],
            }
        )

    for event in events:
        etype = event["event_type"]
        ts_ = event["ts"]
        if etype == "provision":
            continue
        close_interval(ts_)
        cursor = max(cursor, ts_)
        if etype == "start" or etype == "unpause":
            if state != "running":
                n_state_changes += 1
            state = "running"
        elif etype == "stop":
            if state != "stopped":
                n_state_changes += 1
            state = "stopped"
        elif etype == "pause":
            if state != "paused":
                n_state_changes += 1
            state = "paused"
        elif etype == "resize":
            n_resizes += 1
            flavor = (
                event["instance_type"], event["vcpus"],
                event["mem_gb"], event["disk_gb"],
            )
        elif etype == "terminate":
            terminate_ts = ts_
            break

    if terminate_ts is None:
        close_interval(horizon_ts)
        end = horizon_ts
    else:
        end = terminate_ts

    reserved_span_h = max(0, end - provision_ts) / SECONDS_PER_HOUR
    return {
        "vm": {
            "vm_id": first["vm_id"],
            "user": first["user"],
            "project": first["project"],
            "resource": first["resource"],
            "os": first.get("os", "unknown"),
            "submission_venue": first.get("submission_venue", "unknown"),
            "provision_ts": provision_ts,
            "terminate_ts": terminate_ts,
            "first_instance_type": first["instance_type"],
            "last_instance_type": flavor[0],
            "last_vcpus": flavor[1],
            "last_mem_gb": flavor[2],
            "last_disk_gb": flavor[3],
            "wall_s": per_state["running"],
            "core_hours": core_hours,
            "reserved_core_hours": flavor[1] * reserved_span_h,
            "reserved_mem_gb_hours": flavor[2] * reserved_span_h,
            "reserved_disk_gb_hours": flavor[3] * reserved_span_h,
            "n_state_changes": n_state_changes,
            "n_resizes": n_resizes,
            "running_s": per_state["running"],
            "stopped_s": per_state["stopped"],
            "paused_s": per_state["paused"],
        },
        "intervals": intervals,
    }


def ingest_cloud_events(
    schema: Schema,
    events: Iterable[Mapping[str, Any]],
    *,
    strict: bool = True,
) -> tuple[int, int]:
    """Validate, sessionize, and ingest a VM event feed.

    Returns ``(vms_ingested, events_rejected)``.  Re-ingesting a VM id on
    the same resource replaces its rows (feeds are cumulative dumps).
    """
    create_cloud_realm(schema)
    dims = DimensionCache(schema)
    by_vm: dict[int, list[dict]] = {}
    rejected = 0
    horizon = 0
    for event in events:
        try:
            validate(event, CLOUD_EVENT_SCHEMA)
        except JsonSchemaError:
            if strict:
                raise
            rejected += 1
            continue
        e = dict(event)
        by_vm.setdefault(e["vm_id"], []).append(e)
        horizon = max(horizon, e["ts"])

    vm_fact = schema.table("fact_vm")
    interval_fact = schema.table("fact_vm_interval")
    next_interval = len(interval_fact) + 1
    ingested = 0
    for vm_id in sorted(by_vm):
        vm_events = sorted(by_vm[vm_id], key=lambda e: (e["ts"], e["event_id"]))
        result = _sessionize(vm_events, horizon)
        if result is None:
            continue
        vm = result["vm"]
        resource_id = dims.resource_id(vm["resource"])
        person_id = dims.person_id(vm["user"])
        if vm_fact.get((resource_id, vm_id)) is not None:
            interval_fact.delete_where(
                lambda r, v=vm_id, rid=resource_id: r["vm_id"] == v
                and r["resource_id"] == rid
            )
            vm_fact.delete_where(
                lambda r, v=vm_id, rid=resource_id: r["vm_id"] == v
                and r["resource_id"] == rid
            )
        row = {k: v for k, v in vm.items() if k not in ("user", "resource")}
        row["resource_id"] = resource_id
        row["person_id"] = person_id
        vm_fact.insert(row)
        for interval in result["intervals"]:
            interval_fact.insert(
                {
                    "interval_id": next_interval,
                    "vm_id": vm_id,
                    "resource_id": resource_id,
                    "person_id": person_id,
                    "project": vm["project"],
                    "os": vm["os"],
                    "submission_venue": vm["submission_venue"],
                    **interval,
                }
            )
            next_interval += 1
        ingested += 1
    return ingested, rejected
