"""SUPReMM (performance realm) ingestion.

The SUPReMM module "collects data from system hardware counters to offer
viewing and analysis of both aggregate and individual job-level data".  Two
tables result:

- ``fact_job_perf`` — per-job summary statistics (avg/max of the nine
  metrics).  This is the *summarized* performance data the paper plans to
  replicate to federation hubs in a later release.
- ``job_timeseries`` — the full sampled series plus the job script, stored
  as JSON.  This is the storage-intensive detail that federation
  deliberately does **not** replicate (Section II-C5); the replicator's
  default table filter excludes it.
"""

from __future__ import annotations

from typing import Iterable

from ..simulators.perf import PERF_METRICS, JobPerformance
from ..warehouse import ColumnType, Schema, TableSchema, make_columns
from .star import DimensionCache, create_jobs_star

C = ColumnType

SUPREMM_REALM_TABLES = ("fact_job_perf",)
#: Tables excluded from federation replication by default (II-C5).
HEAVY_TABLES = ("job_timeseries",)


def perf_fact_schema() -> TableSchema:
    columns = [("job_id", C.INT, False), ("resource_id", C.INT, False)]
    for metric in PERF_METRICS:
        columns.append((f"{metric}_avg", C.FLOAT, False))
        columns.append((f"{metric}_max", C.FLOAT, False))
    return TableSchema(
        "fact_job_perf",
        make_columns(columns),
        primary_key=("resource_id", "job_id"),
    )


def timeseries_schema() -> TableSchema:
    return TableSchema(
        "job_timeseries",
        make_columns([
            ("job_id", C.INT, False),
            ("resource_id", C.INT, False),
            ("interval_s", C.INT, False),
            ("start_ts", C.TIMESTAMP, False),
            ("series", C.JSON, False),
            ("job_script", C.STR, False),
        ]),
        primary_key=("resource_id", "job_id"),
    )


def create_supremm_realm(schema: Schema) -> None:
    create_jobs_star(schema)
    if not schema.has_table("fact_job_perf"):
        schema.create_table(perf_fact_schema())
    if not schema.has_table("job_timeseries"):
        schema.create_table(timeseries_schema())


def ingest_performance(
    schema: Schema,
    performances: Iterable[JobPerformance],
) -> int:
    """Ingest job performance records; returns the number ingested.

    Upserts by (resource, job), so re-processing a window is idempotent.
    """
    create_supremm_realm(schema)
    dims = DimensionCache(schema)
    fact = schema.table("fact_job_perf")
    series_table = schema.table("job_timeseries")
    n = 0
    for perf in performances:
        resource_id = dims.resource_id(perf.resource)
        row: dict = {"job_id": perf.job_id, "resource_id": resource_id}
        row.update(perf.summary())
        fact.upsert(row)
        series_table.upsert(
            {
                "job_id": perf.job_id,
                "resource_id": resource_id,
                "interval_s": perf.interval_s,
                "start_ts": int(perf.timestamps[0]) if len(perf.timestamps) else 0,
                "series": {
                    name: [round(float(v), 4) for v in values]
                    for name, values in perf.series.items()
                },
                "job_script": perf.job_script,
            }
        )
        n += 1
    return n
