"""Hub-side analytics: federation-wide efficiency views and anomalies.

The satellite-side summarization stage leaves one ``fact_job_analytics``
row per job in each instance schema; the SUPReMM summary filter
replicates those rows to the hub alongside the accounting realm.
:class:`AnalyticsPlane` is the hub-side half: it collects the federated
scores into :class:`~repro.obs.anomaly.JobScore` records, runs the
:class:`~repro.obs.anomaly.AnomalyDetector` over them (per-application
baselines pooled across every member), and snapshots the registry into
the metrics history so the ``analytics_anomaly_rate_high`` SLO rule sees
the counters it judges.

Wire it like the serving layer's materialized views::

    plane = AnalyticsPlane(hub)
    hub.add_post_aggregation_hook(plane.refresh)
    monitor = FederationMonitor(hub, analytics=plane)

so every ``aggregate_federation()`` ends with fresh anomaly verdicts,
and the monitor's render shows the worst-jobs line and the
efficiency-score distribution sparkline.
"""

from __future__ import annotations

from typing import Mapping

from ..obs.anomaly import Anomaly, AnomalyDetector, JobScore
from ..realms.supremm import SupremmRealm
from ..warehouse import Schema

__all__ = ["AnalyticsPlane"]


class AnalyticsPlane:
    """Federation-wide job analytics bound to one hub.

    ``start``/``end`` (epoch seconds) optionally bound the job window
    every refresh considers; by default all federated jobs participate.
    """

    def __init__(
        self,
        hub,
        *,
        detector: AnomalyDetector | None = None,
        start: int | None = None,
        end: int | None = None,
    ) -> None:
        self.hub = hub
        self.detector = (
            detector if detector is not None else AnomalyDetector(hub.obs)
        )
        self.start = start
        self.end = end
        self.realm = SupremmRealm()
        self.last_scores: tuple[JobScore, ...] = ()
        self.anomalies: tuple[Anomaly, ...] = ()
        self.refreshes = 0

    def sources(self) -> Mapping[str, Schema]:
        return self.hub.federated_schemas()

    def collect_scores(self) -> list[JobScore]:
        """Federated job scores, least efficient first."""
        return [
            JobScore(
                member=row["member"],
                resource=row["resource"],
                job_id=row["job_id"],
                application=row["application"],
                score=row["score"],
                tags=tuple(row["tags"]),
                n_samples=row["n_samples"],
            )
            for row in self.realm.job_scores(
                self.sources(), start=self.start, end=self.end
            )
        ]

    def refresh(self) -> tuple[Anomaly, ...]:
        """Re-collect scores and re-run detection (post-aggregation hook).

        Ends with a history snapshot so the anomaly counters are
        queryable by the alert engine's windowed rules immediately.
        """
        scores = self.collect_scores()
        self.last_scores = tuple(scores)
        self.anomalies = tuple(self.detector.detect(scores))
        self.refreshes += 1
        self.hub.obs.history.record()
        return self.anomalies

    def worst_jobs(self, n: int = 5) -> tuple[JobScore, ...]:
        """The ``n`` least-efficient federated jobs from the last refresh."""
        return self.last_scores[:n]

    @property
    def anomalies_open(self) -> int:
        return len(self.anomalies)
