"""Job-level performance analytics (SUPReMM-style summarization).

Closes the loop from the simulated node timeseries to federation-wide,
user-facing insight:

- :mod:`repro.analytics.summarize` — the satellite-side stage folding
  each job's nine-metric timeseries into statistics, categorical tags
  and a 0–1 efficiency score (``fact_job_analytics``).
- :mod:`repro.analytics.federate` — the hub-side plane collecting the
  federated scores, running the :mod:`repro.obs.anomaly` detector over
  per-application baselines, and feeding the monitor/REST surfaces.
"""

from __future__ import annotations

from .federate import AnalyticsPlane
from .summarize import (
    ANALYTICS_TABLE,
    JobSummary,
    analytics_fact_schema,
    create_analytics_table,
    ingest_summaries,
    summarize_schema,
    summarize_series,
)

__all__ = [
    "ANALYTICS_TABLE",
    "AnalyticsPlane",
    "JobSummary",
    "analytics_fact_schema",
    "create_analytics_table",
    "ingest_summaries",
    "summarize_schema",
    "summarize_series",
]
