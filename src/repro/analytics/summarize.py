"""SUPReMM-style job summarization: timeseries -> statistics -> score.

The paper's Job Viewer story stops at per-member drill-down of the raw
nine-metric timeseries; MPCDF-style monitoring (PAPERS.md) goes one step
further and derives *job-level insight* from them — roofline position,
"memory-bound" tags, efficiency classification.  This module is that
summarization stage: it folds each job's node timeseries
(``job_timeseries``) into

- per-job statistics (means, p05/p95 quantiles, temporal imbalance),
- categorical tags (``memory-bound``, ``idle-tail``, ``io-heavy``,
  ``low-cpu``), and
- a 0–1 efficiency score,

persisted in the ``fact_job_analytics`` fact table.  The fact table is
resource-scoped and replicates through the federation's SUPReMM summary
filter (:func:`repro.core.supremm_summary_filter`), so the hub can rank
jobs federation-wide while the storage-intensive raw series stay on the
satellite (Section II-C5).  All writes go through
:meth:`~repro.warehouse.engine.Table.upsert`, so re-summarizing a window
is idempotent and every mutation bumps ``Schema.data_version`` — the
serving cache's invalidation stamp stays correct for free.

Scoring formula (documented in docs/observability.md):

``score = clamp01(cpu_term * (1 - idle_tail_frac) * (0.35 + 0.65 * intensity_ratio))``

where ``cpu_term`` is the mean ``cpu_user`` relative to the application
profile's expected CPU fraction (clamped to 1), ``idle_tail_frac`` is the
trailing fraction of samples with ``cpu_user`` below the idle threshold,
and ``intensity_ratio`` is the measured arithmetic intensity
(FLOPS per unit memory bandwidth) relative to the application's expected
per-core intensity, clamped to 1.  A healthy job scores near 1; an
idle-tail job loses its tail factor and a cache-thrashing job loses most
of the intensity factor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..etl.star import DimensionCache
from ..obs import Observability
from ..obs.anomaly import SCORE_SERIES
from ..simulators.workload import DEFAULT_APPLICATIONS, ApplicationProfile
from ..warehouse import ColumnType, Schema, TableSchema, make_columns

C = ColumnType

__all__ = [
    "ANALYTICS_TABLE",
    "JobSummary",
    "analytics_fact_schema",
    "create_analytics_table",
    "ingest_summaries",
    "summarize_schema",
    "summarize_series",
]

#: The analytics fact table extending the SUPReMM realm.
ANALYTICS_TABLE = "fact_job_analytics"

#: ``cpu_user`` below this fraction counts as an idle sample.
IDLE_CPU_THRESHOLD = 0.15
#: Trailing idle fraction at or above this earns the ``idle-tail`` tag.
IDLE_TAIL_TAG_FRACTION = 0.2
#: Normalized intensity ratio below this earns ``memory-bound``.
MEMORY_BOUND_RATIO = 0.5
#: Combined read+write I/O average (MB/s) at or above this earns
#: ``io-heavy``.
IO_HEAVY_MBS = 200.0
#: ``cpu_term`` below this earns ``low-cpu``.
LOW_CPU_RATIO = 0.5
#: The simulator's nominal per-node memory bandwidth scale (GB/s at
#: ``mem_fraction == 1``); anchors the expected arithmetic intensity.
NOMINAL_MEM_BW_GBS = 40.0
#: Headroom multiplier on the expected per-core intensity: any node
#: running at least ~4 busy cores clears it, so nominal jobs saturate
#: the ratio at 1.0 regardless of application.
INTENSITY_HEADROOM = 4.0

_APP_INDEX: Mapping[str, ApplicationProfile] = {
    app.name: app for app in DEFAULT_APPLICATIONS
}


def _profile_for(application: str) -> ApplicationProfile:
    return _APP_INDEX.get(application, _APP_INDEX["uncategorized"])


def _clamp01(value: float) -> float:
    return min(1.0, max(0.0, value))


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    return sorted_values[lo] + (sorted_values[hi] - sorted_values[lo]) * (pos - lo)


@dataclass(frozen=True)
class JobSummary:
    """The summarized form of one job's performance timeseries."""

    job_id: int
    resource: str
    application: str
    efficiency_score: float
    tags: tuple[str, ...]
    cpu_user_avg: float
    cpu_user_p05: float
    cpu_user_p95: float
    cpu_imbalance: float
    idle_tail_frac: float
    mem_used_avg_gb: float
    mem_bw_avg_gbs: float
    flops_avg_gf: float
    io_avg_mbs: float
    intensity_ratio: float
    n_samples: int

    def row(self, resource_id: int) -> dict:
        """The ``fact_job_analytics`` row for this summary."""
        return {
            "job_id": self.job_id,
            "resource_id": resource_id,
            "application": self.application,
            "efficiency_score": self.efficiency_score,
            "tags": ",".join(self.tags),
            "cpu_user_avg": self.cpu_user_avg,
            "cpu_user_p05": self.cpu_user_p05,
            "cpu_user_p95": self.cpu_user_p95,
            "cpu_imbalance": self.cpu_imbalance,
            "idle_tail_frac": self.idle_tail_frac,
            "mem_used_avg_gb": self.mem_used_avg_gb,
            "mem_bw_avg_gbs": self.mem_bw_avg_gbs,
            "flops_avg_gf": self.flops_avg_gf,
            "io_avg_mbs": self.io_avg_mbs,
            "intensity_ratio": self.intensity_ratio,
            "n_samples": self.n_samples,
        }


def analytics_fact_schema() -> TableSchema:
    return TableSchema(
        ANALYTICS_TABLE,
        make_columns([
            ("job_id", C.INT, False),
            ("resource_id", C.INT, False),
            ("application", C.STR, False),
            ("efficiency_score", C.FLOAT, False),
            ("tags", C.STR, False),  # comma-joined; "" means untagged
            ("cpu_user_avg", C.FLOAT, False),
            ("cpu_user_p05", C.FLOAT, False),
            ("cpu_user_p95", C.FLOAT, False),
            ("cpu_imbalance", C.FLOAT, False),
            ("idle_tail_frac", C.FLOAT, False),
            ("mem_used_avg_gb", C.FLOAT, False),
            ("mem_bw_avg_gbs", C.FLOAT, False),
            ("flops_avg_gf", C.FLOAT, False),
            ("io_avg_mbs", C.FLOAT, False),
            ("intensity_ratio", C.FLOAT, False),
            ("n_samples", C.INT, False),
        ]),
        primary_key=("resource_id", "job_id"),
    )


def create_analytics_table(schema: Schema) -> None:
    if not schema.has_table(ANALYTICS_TABLE):
        schema.create_table(analytics_fact_schema())


def summarize_series(
    job_id: int,
    resource: str,
    application: str,
    series: Mapping[str, Sequence[float]],
) -> JobSummary:
    """Fold one job's nine-metric timeseries into a :class:`JobSummary`.

    Pure and deterministic: the same series always produce the same
    statistics, tags and score.
    """
    cpu = [float(v) for v in series.get("cpu_user", ())]
    n = len(cpu)
    app = _profile_for(application)

    cpu_avg = _mean(cpu)
    cpu_sorted = sorted(cpu)
    cpu_p05 = _quantile(cpu_sorted, 0.05)
    cpu_p95 = _quantile(cpu_sorted, 0.95)
    if cpu_avg > 0.0 and n > 1:
        variance = sum((v - cpu_avg) ** 2 for v in cpu) / n
        cpu_imbalance = math.sqrt(variance) / cpu_avg
    else:
        cpu_imbalance = 0.0

    idle_tail = 0
    for value in reversed(cpu):
        if value >= IDLE_CPU_THRESHOLD:
            break
        idle_tail += 1
    idle_tail_frac = idle_tail / n if n else 0.0

    mem_used_avg = _mean(series.get("mem_used_gb", ()))
    mem_bw_avg = _mean(series.get("mem_bw_gbs", ()))
    flops_avg = _mean(series.get("flops_gf", ()))
    io_avg = _mean(series.get("io_read_mbs", ())) + _mean(
        series.get("io_write_mbs", ())
    )

    # measured arithmetic intensity vs. the application's expected
    # per-core intensity (with INTENSITY_HEADROOM cores of headroom)
    expected = app.flops_per_core / max(
        app.mem_fraction * NOMINAL_MEM_BW_GBS, 1e-9
    )
    measured = flops_avg / max(mem_bw_avg, 1e-9)
    intensity_ratio = _clamp01(measured / (INTENSITY_HEADROOM * expected))

    cpu_term = _clamp01(cpu_avg / max(app.cpu_fraction, 1e-9))
    score = _clamp01(
        cpu_term * (1.0 - idle_tail_frac) * (0.35 + 0.65 * intensity_ratio)
    )

    tags: list[str] = []
    if intensity_ratio < MEMORY_BOUND_RATIO:
        tags.append("memory-bound")
    if idle_tail_frac >= IDLE_TAIL_TAG_FRACTION:
        tags.append("idle-tail")
    if io_avg >= IO_HEAVY_MBS:
        tags.append("io-heavy")
    if cpu_term < LOW_CPU_RATIO:
        tags.append("low-cpu")

    return JobSummary(
        job_id=job_id,
        resource=resource,
        application=application,
        efficiency_score=score,
        tags=tuple(tags),
        cpu_user_avg=cpu_avg,
        cpu_user_p05=cpu_p05,
        cpu_user_p95=cpu_p95,
        cpu_imbalance=cpu_imbalance,
        idle_tail_frac=idle_tail_frac,
        mem_used_avg_gb=mem_used_avg,
        mem_bw_avg_gbs=mem_bw_avg,
        flops_avg_gf=flops_avg,
        io_avg_mbs=io_avg,
        intensity_ratio=intensity_ratio,
        n_samples=n,
    )


def ingest_summaries(schema: Schema, summaries: Iterable[JobSummary]) -> int:
    """Upsert summaries into ``fact_job_analytics``; returns rows written."""
    create_analytics_table(schema)
    dims = DimensionCache(schema)
    fact = schema.table(ANALYTICS_TABLE)
    n = 0
    for summary in summaries:
        fact.upsert(summary.row(dims.resource_id(summary.resource)))
        n += 1
    return n


def summarize_schema(
    schema: Schema,
    *,
    obs: Observability | None = None,
    member: str = "",
) -> int:
    """Summarize every job with stored timeseries in one instance schema.

    The satellite-side analytics stage: joins ``job_timeseries`` to
    ``fact_job`` (composite ``(resource_id, job_id)`` key — job ids are
    only unique per resource), resolves the application dimension, and
    upserts one ``fact_job_analytics`` row per job.  With an
    observability bundle, bumps ``analytics_jobs_summarized_total`` and
    feeds each score into the metrics history under
    :data:`SCORE_SERIES` for the anomaly detector's baselines.
    """
    if not schema.has_table("job_timeseries"):
        return 0
    resources = {
        r["resource_id"]: r["name"] for r in schema.table("dim_resource").rows()
    }
    applications = {
        r["app_id"]: r["name"] for r in schema.table("dim_application").rows()
    }
    jobs_by_key = {
        (r["resource_id"], r["job_id"]): r
        for r in schema.table("fact_job").rows()
    }
    counter = None
    if obs is not None:
        counter = obs.registry.counter(
            "analytics_jobs_summarized_total",
            "Jobs folded into fact_job_analytics summaries",
            ("member",),
        ).labels(member=member or schema.name)
    summaries: list[JobSummary] = []
    for row in schema.table("job_timeseries").rows():
        job = jobs_by_key.get((row["resource_id"], row["job_id"]))
        application = (
            applications.get(job["app_id"], "uncategorized")
            if job is not None else "uncategorized"
        )
        summary = summarize_series(
            row["job_id"],
            resources.get(row["resource_id"], str(row["resource_id"])),
            application,
            row["series"],
        )
        summaries.append(summary)
        if counter is not None:
            counter.inc()
        if obs is not None:
            obs.history.observe(
                SCORE_SERIES,
                summary.efficiency_score,
                member=member or schema.name,
                app=summary.application,
            )
    return ingest_summaries(schema, summaries)
