"""Resource routing: directing resource data to different federation hubs.

Section II-C4: "We are developing a configuration strategy to individually
manage the destinations of resource data.  For instance, data from certain
resources managed by a member instance could be selectively excluded from a
federation...  Alternately, data from all resources could be replicated to
multiple federation hubs, to provide a live backup or load-balancing
strategy for XDMoD instance data."

A :class:`RoutingPolicy` maps resource names to the hubs that may receive
their data; :func:`filter_for_hub` compiles the policy into the
per-channel :class:`ReplicationFilter`, and :class:`FederationNetwork`
wires one satellite into any number of hubs under one policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .errors import MembershipError
from .federation import FederationHub, FederationMember, XdmodInstance
from .replicator import ReplicationFilter


@dataclass
class RoutingPolicy:
    """Per-resource destination rules.

    ``routes`` maps a resource name to the hub names allowed to receive its
    rows.  Resources absent from the map follow ``default``: ``"all"``
    (replicate everywhere) or ``"none"`` (sensitive by default, replicate
    nowhere).
    """

    routes: dict[str, set[str]] = field(default_factory=dict)
    default: str = "all"

    def __post_init__(self) -> None:
        if self.default not in ("all", "none"):
            raise MembershipError(f"bad routing default {self.default!r}")

    def allow(self, resource: str, hubs: Iterable[str]) -> "RoutingPolicy":
        self.routes.setdefault(resource, set()).update(hubs)
        return self

    def exclude(self, resource: str) -> "RoutingPolicy":
        """Mark a resource as never federated (sensitive data)."""
        self.routes[resource] = set()
        return self

    def destinations(self, resource: str) -> set[str] | None:
        """Hub names for ``resource``; None means "all hubs"."""
        if resource in self.routes:
            return self.routes[resource]
        return None if self.default == "all" else set()

    def admitted(self, resource: str, hub: str) -> bool:
        dests = self.destinations(resource)
        return True if dests is None else hub in dests


def filter_for_hub(
    policy: RoutingPolicy,
    hub_name: str,
    resource_names: Iterable[str],
    *,
    tables: tuple[str, ...] | None = None,
) -> ReplicationFilter:
    """Compile the routing policy into one hub's replication filter.

    ``resource_names`` enumerates the satellite's known resources so the
    exclusion list is explicit (unknown resources still follow the policy
    default through the include list when default is "none").
    """
    excluded = [
        name for name in resource_names if not policy.admitted(name, hub_name)
    ]
    include = None
    if policy.default == "none":
        include = [
            name for name in resource_names if policy.admitted(name, hub_name)
        ]
    kwargs: dict = {"exclude_resources": excluded, "include_resources": include}
    if tables is not None:
        return ReplicationFilter(tables, **kwargs)
    return ReplicationFilter(**kwargs)


class FederationNetwork:
    """Multiple hubs fed by overlapping satellite sets under one policy.

    Supports the paper's multi-hub use cases: live backup (every resource
    to two hubs) and selective federation (sensitive resources to none).
    """

    def __init__(self, policy: RoutingPolicy | None = None) -> None:
        self.policy = policy or RoutingPolicy()
        self._hubs: dict[str, FederationHub] = {}

    def add_hub(self, hub: FederationHub) -> FederationHub:
        if hub.name in self._hubs:
            raise MembershipError(f"hub {hub.name!r} already in network")
        self._hubs[hub.name] = hub
        return hub

    @property
    def hubs(self) -> list[FederationHub]:
        return [self._hubs[k] for k in sorted(self._hubs)]

    def connect(
        self,
        satellite: XdmodInstance,
        *,
        mode: str = "tight",
        hubs: Iterable[str] | None = None,
    ) -> dict[str, FederationMember]:
        """Join ``satellite`` to the named hubs (default: all), each channel
        carrying that hub's compiled routing filter."""
        resource_names = []
        if satellite.schema.has_table("dim_resource"):
            resource_names = [
                row["name"]
                for row in satellite.schema.table("dim_resource").rows()
            ]
        out: dict[str, FederationMember] = {}
        for hub_name in sorted(hubs) if hubs is not None else sorted(self._hubs):
            hub = self._hubs.get(hub_name)
            if hub is None:
                raise MembershipError(f"unknown hub {hub_name!r}")
            member = hub.join(
                satellite,
                mode=mode,
                filter=filter_for_hub(self.policy, hub_name, resource_names),
            )
            out[hub_name] = member
        return out

    def sync_all(self) -> dict[str, dict[str, int]]:
        """Pump every hub's channels; returns per-hub per-member counts."""
        return {hub.name: hub.sync() for hub in self.hubs}
