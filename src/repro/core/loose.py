"""Loose federation: periodic dump shipping instead of live replication.

"Instead, log files or database dumps could be periodically shipped to the
federation hub, and batch processed there to make their data available to
the federation.  This latter method would be considered 'loose' federation.
A heterogeneous model could also be employed, in which a federation hub is
provided with data using loose federation from some member instances and
tight federation from others." (Section II-C2)

A :class:`LooseChannel` snapshots the satellite schema (filtered the same
way tight replication filters — realm selection and resource routing apply
identically) and loads it into the hub's per-instance schema, replacing the
previous shipment.  The dump records the satellite binlog head at snapshot
time, so :meth:`LooseChannel.to_tight` can hand over to a live channel with
no gap or overlap.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from ..obs import Observability, TraceContext
from ..warehouse import (
    Database,
    Schema,
    dump_schema,
    load_schema,
    read_dump_file,
    write_dump_file,
)
from ..warehouse.dump import dump_checksum
from .replicator import (
    RESOURCE_SCOPED_TABLES,
    ReplicationChannel,
    ReplicationFilter,
)


def _filtered_dump(source: Schema, filter: ReplicationFilter) -> dict[str, Any]:
    """Dump ``source`` with the channel filter applied to tables and rows."""
    full = dump_schema(source)
    resource_names: dict[int, str] = {}
    if source.has_table("dim_resource"):
        for row in source.table("dim_resource").rows():
            resource_names[row["resource_id"]] = row["name"]

    def row_allowed(table_name: str, row: dict[str, Any]) -> bool:
        if table_name == "dim_resource":
            if not filter.drop_excluded_dim_rows:
                return True
            return not filter._resource_excluded(row["name"])
        if table_name in RESOURCE_SCOPED_TABLES:
            name = resource_names.get(row.get("resource_id"))
            if name is not None and filter._resource_excluded(name):
                return False
        return True

    tables = []
    for entry in full["tables"]:
        name = entry["schema"]["name"]
        if not filter.table_allowed(name):
            continue
        columns = [c["name"] for c in entry["schema"]["columns"]]
        rows = [
            row
            for row in entry["rows"]
            if row_allowed(name, dict(zip(columns, row)))
        ]
        tables.append({"schema": entry["schema"], "rows": rows})
    full["tables"] = tables
    # the original checksum covered the unfiltered content; recompute it
    # over the filtered document so the hub can verify exactly what ships
    full["checksum"] = dump_checksum(full)
    return full


class LooseChannel:
    """Batch dump shipping from one satellite schema into the hub."""

    def __init__(
        self,
        source: Schema,
        hub_database: Database,
        target_schema_name: str,
        *,
        filter: ReplicationFilter | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.source = source
        self.hub_database = hub_database
        self.target_schema_name = target_schema_name
        self.filter = filter or ReplicationFilter()
        self.obs = obs
        self.last_shipped_lsn: int | None = None
        self.shipments = 0

    def export(self) -> dict[str, Any]:
        """Produce the (filtered) dump document to ship.

        The dump carries the trace context recorded with the newest
        satellite binlog event (key ``trace``, outside the checksummed
        table content), so the hub-side load re-parents into the trace
        that produced the data.
        """
        dump = _filtered_dump(self.source, self.filter)
        context = self.source.binlog.trace_context(
            self.source.binlog.head_lsn - 1
        )
        if context is not None:
            dump["trace"] = context.to_payload()
        return dump

    def ship(self) -> Schema:
        """Snapshot the satellite and load it into the hub, replacing the
        previous shipment.  Returns the hub-side schema."""
        dump = self.export()
        schema = self._load(dump)
        self.last_shipped_lsn = dump["binlog_head"]
        self.shipments += 1
        return schema

    def ship_via_file(self, path: str | Path) -> Schema:
        """Ship through an on-disk dump file (the literal paper mechanism:
        'database dumps could be periodically shipped to the federation
        hub').

        The received file is checksum-verified before loading: a dump
        corrupted or truncated in transit raises
        :class:`~repro.warehouse.DumpError` and the previous shipment (if
        any) stays in place on the hub.
        """
        write_dump_file(self.export(), path)
        received = read_dump_file(path)
        schema = self._load(received)
        self.last_shipped_lsn = received["binlog_head"]
        self.shipments += 1
        return schema

    def _load(self, dump: dict[str, Any]) -> Schema:
        """Verified load into the hub's per-instance schema.

        Re-parents a ``loose_load`` span under the shipped trace context
        when the hub carries a tracer, so even batch shipments appear in
        the federated trace.
        """
        context = TraceContext.from_payload(dump.get("trace"))
        if self.obs is not None and context is not None:
            with self.obs.tracer.span(
                "loose_load",
                remote=context,
                member=self.source.name,
                target=self.target_schema_name,
            ):
                return self._load_verified(dump)
        return self._load_verified(dump)

    def _load_verified(self, dump: dict[str, Any]) -> Schema:
        return load_schema(
            self.hub_database,
            dump,
            rename_to=self.target_schema_name,
            replace=True,
            verify_checksum=True,
        )

    @property
    def staleness(self) -> int:
        """Satellite binlog events committed since the last shipment.

        The loose-federation freshness cost the A1 ablation measures.
        """
        if self.last_shipped_lsn is None:
            return self.source.binlog.head_lsn
        return self.source.binlog.head_lsn - self.last_shipped_lsn

    def to_tight(self) -> ReplicationChannel:
        """Convert to live replication, resuming from the last shipment.

        Must ship at least once first, so the hub schema exists and the
        binlog position is known.
        """
        if self.last_shipped_lsn is None:
            raise RuntimeError("cannot convert to tight before first shipment")
        target = self.hub_database.schema(self.target_schema_name)
        return ReplicationChannel(
            self.source,
            target,
            filter=self.filter,
            start_lsn=self.last_shipped_lsn,
            obs=self.obs,
        )
