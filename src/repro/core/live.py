"""Live replication: the always-on pump behind tight federation.

"Once data is ingested on the individual XDMoD instances, it undergoes
live replication to the central federation hub database."  Tungsten runs
as a daemon; :class:`LiveReplicator` is the equivalent — a background
thread that drains every tight channel of a hub on a short interval, so
satellite commits appear on the hub without anyone calling
:meth:`~repro.core.FederationHub.sync`.

Thread-safety: binlogs are lock-protected, and appliers touch only the
hub-side schemas this thread owns while it runs.  Call :meth:`stop` (or
use the context manager) before querying the hub from another thread.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..obs import Clock
from .federation import FederationHub


@dataclass
class LiveStats:
    """Counters observable while the daemon runs."""

    cycles: int = 0
    events_applied: int = 0
    errors: int = 0
    last_error: str = ""


class LiveReplicator:
    """Background sync loop over one hub's tight channels."""

    def __init__(
        self,
        hub: FederationHub,
        *,
        interval_s: float = 0.05,
        clock: Clock | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        self.hub = hub
        self.interval_s = interval_s
        # deadline bookkeeping goes through the injectable clock so this
        # module needs no wall-clock reads of its own
        self._clock = clock if clock is not None else hub.obs.clock
        self.stats = LiveStats()
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _loop(self) -> None:
        while not self._stop_event.is_set():
            try:
                applied = self.hub.sync()
                self.stats.events_applied += sum(applied.values())
            # repolint: ignore[overbroad-except] -- daemon loop must survive any sync failure; error is surfaced via LiveStats
            except Exception as exc:
                self.stats.errors += 1
                self.stats.last_error = str(exc)
            self.stats.cycles += 1
            self._stop_event.wait(self.interval_s)

    def start(self) -> "LiveReplicator":
        if self.running:
            raise RuntimeError("live replicator already running")
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._loop, name=f"live-replicator-{self.hub.name}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, *, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop the loop; with ``drain`` do one final catch-up so the hub
        is current at the moment of shutdown."""
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        if drain:
            applied = self.hub.sync()
            self.stats.events_applied += sum(applied.values())

    def wait_until_current(self, *, timeout: float = 10.0) -> bool:
        """Block until every tight channel reports zero lag (or timeout)."""
        waiter = threading.Event()
        end = self._clock.now() + timeout
        while self._clock.now() < end:
            if all(lag == 0 for lag in self.hub.lag().values()):
                return True
            waiter.wait(self.interval_s / 2)
        return all(lag == 0 for lag in self.hub.lag().values())

    def __enter__(self) -> "LiveReplicator":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
