"""Cross-instance user identity mapping (Section II-D4, future work).

"We do not yet offer any automated means of mapping or de-duplicating users
from different XDMoD satellite instances in the federated master hub...
the user would appear twice in the federation; once as the CCR user, once
as the XSEDE user.  The work necessary to federate such user identities
must be performed separately on the federation database; it is not yet
handled by the Federation module, though this is a goal for a future
release."

We implement both behaviours: the default federated identity is the
*qualified* ``username@instance`` pair (so the same human appears once per
instance, exactly as the paper describes), and :class:`IdentityMap` is the
future-work extension — an explicit mapping, optionally seeded by matching
heuristics, that merges qualified identities into canonical people.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from .errors import IdentityError


def qualified_identity(instance: str, username: str) -> str:
    """The hub's default (unmapped) identity for a satellite user."""
    return f"{username}@{instance}"


@dataclass
class IdentityMap:
    """Explicit mapping of qualified identities to canonical persons."""

    #: qualified identity -> canonical person label
    mapping: dict[str, str] = field(default_factory=dict)

    def link(self, canonical: str, *identities: str) -> "IdentityMap":
        """Declare that the given qualified identities are one person."""
        for identity in identities:
            if "@" not in identity:
                raise IdentityError(
                    f"identity {identity!r} must be 'username@instance'"
                )
            existing = self.mapping.get(identity)
            if existing is not None and existing != canonical:
                raise IdentityError(
                    f"{identity!r} already mapped to {existing!r}"
                )
            self.mapping[identity] = canonical
        return self

    def resolve(self, instance: str, username: str) -> str:
        """Canonical person for a satellite user (falls back to qualified)."""
        qualified = qualified_identity(instance, username)
        return self.mapping.get(qualified, qualified)

    def canonical_count(self, identities: Iterable[str]) -> int:
        """Distinct people among a set of qualified identities."""
        return len({self.mapping.get(i, i) for i in identities})

    @classmethod
    def from_username_match(
        cls, users_by_instance: Mapping[str, Iterable[str]]
    ) -> "IdentityMap":
        """Heuristic seeding: same username on several instances == same
        person.  Real deployments would verify via institutional identity
        (ORCID, email); this is the opt-in automation the paper defers.
        """
        by_username: dict[str, list[str]] = {}
        for instance, usernames in users_by_instance.items():
            for username in usernames:
                by_username.setdefault(username, []).append(
                    qualified_identity(instance, username)
                )
        idmap = cls()
        for username, qualified in by_username.items():
            if len(qualified) > 1:
                idmap.link(username, *qualified)
        return idmap


def federated_user_counts(hub, idmap: IdentityMap | None = None) -> dict[str, int]:
    """Count users across a federation with and without identity mapping.

    Returns ``{"qualified": n_unmapped, "canonical": n_mapped}``; when no
    map is supplied both numbers equal the unmapped count (the paper's
    current behaviour).
    """
    identities: set[str] = set()
    for name, schema in hub.federated_schemas().items():
        if not schema.has_table("dim_person"):
            continue
        for row in schema.table("dim_person").rows():
            identities.add(qualified_identity(name, row["username"]))
    qualified = len(identities)
    canonical = (
        idmap.canonical_count(identities) if idmap is not None else qualified
    )
    return {"qualified": qualified, "canonical": canonical}
