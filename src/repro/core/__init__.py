"""Federation: the paper's primary contribution.

- :class:`XdmodInstance` / :class:`FederationHub` — instances and the
  fan-in hub (Figures 2-3)
- :class:`ReplicationChannel` / :class:`ReplicationFilter` — tight
  federation (Tungsten-equivalent binlog shipping, Section II-C1)
- :class:`LooseChannel` — loose federation via dump shipping (II-C2)
- :class:`RoutingPolicy` / :class:`FederationNetwork` — per-resource hub
  destinations, multi-hub backup (II-C4)
- :mod:`~repro.core.standardize` — XD SU conversion across members (II-C6)
- :class:`IdentityMap` — cross-instance user mapping (II-D4, future work)
- :mod:`~repro.core.backup` — hub-as-backup regeneration (II-E4)
- :mod:`~repro.core.consistency` — "hub never alters raw data" checks
"""

from .backup import (
    RegenerationReport,
    backup_member_to_file,
    regenerate_satellite,
    restore_satellite_from_file,
    verify_regeneration,
)
from .consistency import (
    FederationCheck,
    MemberCheck,
    TableCheck,
    check_federation,
    check_member,
)
from .errors import (
    CircuitOpenError,
    ConsistencyError,
    FederationError,
    IdentityError,
    MembershipError,
    ReplicationError,
    VersionMismatchError,
)
from .faults import (
    FaultPlan,
    FaultySchema,
    InjectedFault,
    PoisonApplyFault,
    StalledCursor,
    TransientApplyFault,
    corrupt_dump_file,
    inject_apply_faults,
    stall_binlog,
    truncate_dump_file,
)
from .federation import (
    FED_SCHEMA_PREFIX,
    XDMOD_VERSION,
    FederationAggregationReport,
    FederationHub,
    FederationMember,
    XdmodInstance,
)
from .resilience import (
    CircuitBreaker,
    CircuitState,
    DeadLetter,
    DeadLetterQueue,
    MemberSyncOutcome,
    RetryPolicy,
)
from .identity import (
    IdentityMap,
    federated_user_counts,
    qualified_identity,
)
from .live import LiveReplicator, LiveStats
from .loose import LooseChannel
from .monitor import FederationMonitor, FederationStatus, MemberStatus
from .replicator import (
    RESOURCE_SCOPED_TABLES,
    USER_PROFILE_TABLES,
    ChannelStats,
    ReplicationChannel,
    ReplicationFilter,
    supremm_summary_filter,
)
from .routing import FederationNetwork, RoutingPolicy, filter_for_hub
from .standardize import (
    StandardizationReport,
    federation_resource_names,
    standardization_report,
    standardize_federation,
)

__all__ = [
    "ChannelStats",
    "CircuitBreaker",
    "CircuitOpenError",
    "CircuitState",
    "ConsistencyError",
    "DeadLetter",
    "DeadLetterQueue",
    "FED_SCHEMA_PREFIX",
    "FaultPlan",
    "FaultySchema",
    "FederationAggregationReport",
    "FederationCheck",
    "FederationError",
    "FederationHub",
    "FederationMember",
    "FederationNetwork",
    "IdentityError",
    "IdentityMap",
    "InjectedFault",
    "FederationMonitor",
    "FederationStatus",
    "LiveReplicator",
    "LiveStats",
    "LooseChannel",
    "MemberStatus",
    "MemberSyncOutcome",
    "MemberCheck",
    "MembershipError",
    "PoisonApplyFault",
    "RetryPolicy",
    "StalledCursor",
    "TransientApplyFault",
    "RESOURCE_SCOPED_TABLES",
    "RegenerationReport",
    "ReplicationChannel",
    "ReplicationError",
    "ReplicationFilter",
    "RoutingPolicy",
    "StandardizationReport",
    "TableCheck",
    "USER_PROFILE_TABLES",
    "VersionMismatchError",
    "XDMOD_VERSION",
    "XdmodInstance",
    "check_federation",
    "check_member",
    "corrupt_dump_file",
    "federated_user_counts",
    "federation_resource_names",
    "filter_for_hub",
    "inject_apply_faults",
    "qualified_identity",
    "regenerate_satellite",
    "restore_satellite_from_file",
    "backup_member_to_file",
    "stall_binlog",
    "standardization_report",
    "standardize_federation",
    "supremm_summary_filter",
    "truncate_dump_file",
    "verify_regeneration",
]
