"""Federation: the paper's primary contribution.

- :class:`XdmodInstance` / :class:`FederationHub` — instances and the
  fan-in hub (Figures 2-3)
- :class:`ReplicationChannel` / :class:`ReplicationFilter` — tight
  federation (Tungsten-equivalent binlog shipping, Section II-C1)
- :class:`LooseChannel` — loose federation via dump shipping (II-C2)
- :class:`RoutingPolicy` / :class:`FederationNetwork` — per-resource hub
  destinations, multi-hub backup (II-C4)
- :mod:`~repro.core.standardize` — XD SU conversion across members (II-C6)
- :class:`IdentityMap` — cross-instance user mapping (II-D4, future work)
- :mod:`~repro.core.backup` — hub-as-backup regeneration (II-E4)
- :mod:`~repro.core.consistency` — "hub never alters raw data" checks
"""

from .backup import (
    RegenerationReport,
    regenerate_satellite,
    verify_regeneration,
)
from .consistency import (
    FederationCheck,
    MemberCheck,
    TableCheck,
    check_federation,
    check_member,
)
from .errors import (
    ConsistencyError,
    FederationError,
    IdentityError,
    MembershipError,
    ReplicationError,
    VersionMismatchError,
)
from .federation import (
    FED_SCHEMA_PREFIX,
    XDMOD_VERSION,
    FederationHub,
    FederationMember,
    XdmodInstance,
)
from .identity import (
    IdentityMap,
    federated_user_counts,
    qualified_identity,
)
from .live import LiveReplicator, LiveStats
from .loose import LooseChannel
from .monitor import FederationMonitor, FederationStatus, MemberStatus
from .replicator import (
    RESOURCE_SCOPED_TABLES,
    USER_PROFILE_TABLES,
    ChannelStats,
    ReplicationChannel,
    ReplicationFilter,
    supremm_summary_filter,
)
from .routing import FederationNetwork, RoutingPolicy, filter_for_hub
from .standardize import (
    StandardizationReport,
    federation_resource_names,
    standardization_report,
    standardize_federation,
)

__all__ = [
    "ChannelStats",
    "ConsistencyError",
    "FED_SCHEMA_PREFIX",
    "FederationCheck",
    "FederationError",
    "FederationHub",
    "FederationMember",
    "FederationNetwork",
    "IdentityError",
    "IdentityMap",
    "FederationMonitor",
    "FederationStatus",
    "LiveReplicator",
    "LiveStats",
    "LooseChannel",
    "MemberStatus",
    "MemberCheck",
    "MembershipError",
    "RESOURCE_SCOPED_TABLES",
    "RegenerationReport",
    "ReplicationChannel",
    "ReplicationError",
    "ReplicationFilter",
    "RoutingPolicy",
    "StandardizationReport",
    "TableCheck",
    "USER_PROFILE_TABLES",
    "VersionMismatchError",
    "XDMOD_VERSION",
    "XdmodInstance",
    "check_federation",
    "check_member",
    "federated_user_counts",
    "federation_resource_names",
    "filter_for_hub",
    "qualified_identity",
    "regenerate_satellite",
    "standardization_report",
    "standardize_federation",
    "supremm_summary_filter",
    "verify_regeneration",
]
