"""Fault injection for federation testing and benchmarking.

Resilience claims are untestable without a way to make things break on
purpose.  This module injects the failure modes a real federation sees —
transient apply errors, poison events, stalled binlogs, corrupted or
truncated dump files — *deterministically*: every decision derives from a
seed and the event's LSN, never from call order, so a failing scenario
replays identically under a debugger.

The injectors wrap existing objects rather than patching them:

- :class:`FaultySchema` wraps a hub-side :class:`~repro.warehouse.Schema`
  and makes ``apply_event`` fail according to a :class:`FaultPlan`;
- :class:`StalledCursor` wraps a :class:`~repro.warehouse.BinlogCursor`
  and returns nothing from ``poll`` for a configured number of cycles;
- :func:`corrupt_dump_file` / :func:`truncate_dump_file` damage loose
  federation shipments on disk.

Injected errors subclass :class:`InjectedFault` so tests can tell
manufactured failures from real bugs.
"""

from __future__ import annotations

import gzip
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..warehouse import BinlogCursor, BinlogEvent, Schema


class InjectedFault(Exception):
    """Base class for all manufactured failures."""


class TransientApplyFault(InjectedFault):
    """An apply error that clears after a bounded number of attempts."""


class PoisonApplyFault(InjectedFault):
    """An apply error that never clears until the operator heals it."""


@dataclass
class FaultPlan:
    """Deterministic description of which applies fail, and how.

    Parameters
    ----------
    seed:
        Root of all randomness; same seed + same LSNs => same faults.
    transient_rate:
        Probability (per LSN) that the event fails transiently.
    transient_lsns:
        Specific LSNs that fail transiently regardless of the rate —
        tests use this for exact scenarios, benchmarks use the rate.
    transient_burst:
        How many total failed attempts a transient LSN accumulates before
        it applies cleanly (1 means: fails once, succeeds on any retry).
    poison_lsns:
        LSNs that fail every attempt until :meth:`heal` is called.
    """

    seed: int = 0
    transient_rate: float = 0.0
    transient_lsns: frozenset[int] | set[int] = field(default_factory=frozenset)
    transient_burst: int = 1
    poison_lsns: frozenset[int] | set[int] = field(default_factory=frozenset)
    _healed: set[int] = field(default_factory=set, repr=False)

    def is_transient(self, lsn: int) -> bool:
        """Whether this LSN is in the transient-failure population."""
        if lsn in self.transient_lsns:
            return True
        if self.transient_rate <= 0:
            return False
        # seeded per-LSN: independent of the order in which LSNs are seen
        return random.Random(f"{self.seed}:t:{lsn}").random() < self.transient_rate

    def is_poison(self, lsn: int) -> bool:
        return lsn in self.poison_lsns and lsn not in self._healed

    def heal(self, *lsns: int) -> None:
        """Clear poison faults (the operator fixed the underlying cause).

        With no arguments, heals every poison LSN.
        """
        self._healed.update(lsns or self.poison_lsns)

    def should_fail(self, lsn: int, attempt: int) -> Exception | None:
        """The error attempt number ``attempt`` (0-based) of ``lsn`` hits,
        or ``None`` for a clean apply."""
        if self.is_poison(lsn):
            return PoisonApplyFault(f"injected poison event at LSN {lsn}")
        if self.is_transient(lsn) and attempt < self.transient_burst:
            return TransientApplyFault(
                f"injected transient fault at LSN {lsn} (attempt {attempt})"
            )
        return None


class FaultySchema:
    """A :class:`~repro.warehouse.Schema` proxy whose ``apply_event`` fails
    per a :class:`FaultPlan`.

    Everything else delegates to the wrapped schema, so a replication
    channel (or anything downstream) cannot tell the difference.  Attempt
    counts are tracked per LSN so transient bursts clear exactly as the
    plan specifies, including across separate ``pump()`` calls.
    """

    def __init__(self, target: Schema, plan: FaultPlan) -> None:
        self._target = target
        self.plan = plan
        self.attempts: dict[int, int] = {}
        self.faults_raised = 0

    def apply_event(self, event: BinlogEvent) -> None:
        attempt = self.attempts.get(event.lsn, 0)
        self.attempts[event.lsn] = attempt + 1
        error = self.plan.should_fail(event.lsn, attempt)
        if error is not None:
            self.faults_raised += 1
            raise error
        self._target.apply_event(event)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._target, name)


def inject_apply_faults(channel: "Any", plan: FaultPlan) -> FaultySchema:
    """Wrap ``channel.target`` in a :class:`FaultySchema` in place.

    Works on any object with a ``target`` schema attribute (a
    :class:`~repro.core.ReplicationChannel`).  Returns the wrapper so the
    caller can heal or inspect it.
    """
    wrapper = FaultySchema(channel.target, plan)
    channel.target = wrapper
    return wrapper


class StalledCursor:
    """A :class:`~repro.warehouse.BinlogCursor` proxy that yields nothing
    for the first ``stall_polls`` polls — a satellite whose binlog tailer
    has wedged.  Lag keeps growing while stalled; replication resumes (and
    catches up) once the stall clears."""

    def __init__(self, cursor: BinlogCursor, stall_polls: int) -> None:
        self._cursor = cursor
        self.stall_polls = stall_polls
        self.polls_seen = 0

    @property
    def stalled(self) -> bool:
        return self.polls_seen < self.stall_polls

    def poll(self, max_events: int | None = None) -> list[BinlogEvent]:
        self.polls_seen += 1
        if self.polls_seen <= self.stall_polls:
            return []
        return self._cursor.poll(max_events)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._cursor, name)


def stall_binlog(channel: "Any", polls: int) -> StalledCursor:
    """Wrap ``channel.cursor`` so the next ``polls`` polls return nothing."""
    wrapper = StalledCursor(channel.cursor, polls)
    channel.cursor = wrapper
    return wrapper


# -- dump-file damage ---------------------------------------------------------


def corrupt_dump_file(
    path: str | Path, *, seed: int = 0, mode: str = "payload"
) -> Path:
    """Flip one byte of a dump file, deterministically.

    ``mode="payload"`` flips a byte of the decompressed JSON document and
    recompresses — the file still *parses*, so only content verification
    (the dump checksum) can catch it.  ``mode="raw"`` flips a byte of the
    file as stored, which breaks the gzip framing or the JSON syntax —
    the parse/decompress layer must catch that.
    """
    path = Path(path)
    raw = path.read_bytes()
    rng = random.Random(f"{seed}:{path.name}")
    if mode == "payload":
        compressed = raw[:2] == b"\x1f\x8b"
        payload = bytearray(gzip.decompress(raw) if compressed else raw)
        # flip a digit inside the row data so the JSON stays syntactically
        # valid but the content checksum no longer matches
        digits = [i for i, b in enumerate(payload) if chr(b).isdigit()]
        if not digits:  # pragma: no cover - dumps always carry numbers
            raise ValueError(f"no numeric payload to corrupt in {path}")
        pos = rng.choice(digits)
        payload[pos] = ord(str((int(chr(payload[pos])) + 1) % 10))
        out = bytes(payload)
        path.write_bytes(gzip.compress(out) if compressed else out)
    elif mode == "raw":
        body = bytearray(raw)
        pos = rng.randrange(len(body))
        body[pos] ^= 0xFF
        path.write_bytes(bytes(body))
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    return path


def truncate_dump_file(path: str | Path, *, keep_fraction: float = 0.5) -> Path:
    """Cut a dump file short — a shipment interrupted mid-transfer."""
    if not 0 <= keep_fraction < 1:
        raise ValueError("keep_fraction must be in [0, 1)")
    path = Path(path)
    raw = path.read_bytes()
    path.write_bytes(raw[: int(len(raw) * keep_fraction)])
    return path
