"""Federation operations monitoring.

Operators of a federation need the hub's view of its own plumbing: which
members are connected, how far behind each channel is, how much data each
replicated schema holds, and whether the consistency invariants currently
hold.  :class:`FederationMonitor` assembles that status snapshot and
renders it as the text panel an ops dashboard (or a cron email) would show.

With the resilience layer, the snapshot also carries each member's failure
posture: circuit-breaker state, retry totals, dead-letter depth, and the
last error seen — the numbers an operator needs to decide between waiting
(transient), replaying the dead-letter queue (poison fixed), and paging
someone (member down, circuit open).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..obs import (
    DEFAULT_ALERT_RULES,
    AlertEngine,
    AlertRule,
    Observability,
    alert_rule,
)
from ..ui.ascii import render_sparkline
from .consistency import check_federation
from .federation import FederationHub
from .resilience import CircuitState


@dataclass(frozen=True)
class MemberStatus:
    """One member's health snapshot.

    The rate/latency fields (``syncs``, ``sync_seconds``,
    ``events_per_second``) come from the hub's metrics registry — the
    accumulated ``replication_pump_seconds`` histogram — rather than
    point-in-time channel state, so they describe the member's lifetime
    throughput, not just the current cursor position.
    """

    name: str
    mode: str  # tight | loose
    lag_events: int
    fed_schema: str
    tables: int
    fact_job_rows: int
    events_applied: int
    events_filtered: int
    consistent: bool
    circuit_state: str = CircuitState.CLOSED.value
    retries: int = 0
    dead_letters: int = 0
    last_error: str = ""
    syncs: int = 0
    sync_seconds: float = 0.0
    events_per_second: float = 0.0

    @property
    def avg_sync_seconds(self) -> float:
        return self.sync_seconds / self.syncs if self.syncs else 0.0

    @property
    def health(self) -> str:
        """One-word operator verdict for this member."""
        if self.circuit_state == CircuitState.OPEN.value:
            return "CIRCUIT-OPEN"
        if self.dead_letters:
            return "quarantined"
        if not self.consistent:
            return "INCONSISTENT"
        if self.circuit_state == CircuitState.HALF_OPEN.value:
            return "probing"
        if self.lag_events:
            return "lagging"
        return "ok"


@dataclass(frozen=True)
class FederationStatus:
    """Whole-federation health snapshot."""

    hub: str
    members: tuple[MemberStatus, ...]
    totals: Mapping[str, float]
    all_consistent: bool

    @property
    def max_lag(self) -> int:
        return max((m.lag_events for m in self.members), default=0)

    @property
    def degraded_members(self) -> tuple[str, ...]:
        return tuple(
            m.name for m in self.members if m.health != "ok"
        )


class FederationMonitor:
    """Status collection over one hub."""

    def __init__(
        self,
        hub: FederationHub,
        *,
        obs: Observability | None = None,
        alert_rules: tuple[AlertRule, ...] = DEFAULT_ALERT_RULES,
        analytics=None,
    ) -> None:
        self.hub = hub
        self.obs = obs if obs is not None else hub.obs
        self.alerts = AlertEngine(
            self.obs.history, alert_rules, fleet=getattr(hub, "fleet", None)
        )
        # duck-typed AnalyticsPlane (repro.analytics) — kept untyped so the
        # core monitor never imports the analytics package
        self.analytics = analytics

    def evaluate_alerts(self):
        """Run the SLO rule catalog over every current member.

        Called by ``GET /alerts`` and ``GET /health``; callable from cron
        too.  Returns all known alert states (see
        :meth:`repro.obs.AlertEngine.evaluate`).
        """
        return self.alerts.evaluate([m.name for m in self.hub.members])

    def _pump_figures(self, member_name: str, applied: int) -> tuple[int, float, float]:
        """(syncs, total pump seconds, events/s) from the registry."""
        count, total = self.obs.registry.histogram_stats(
            "replication_pump_seconds", channel=member_name
        )
        rate = applied / total if total > 0 else 0.0
        return count, total, rate

    def status(self) -> FederationStatus:
        lag = self.hub.lag()
        check = check_federation(self.hub)
        by_member = {m.member: m for m in check.members}
        members = []
        for member in self.hub.members:
            has_schema = self.hub.database.has_schema(member.fed_schema)
            schema = (
                self.hub.database.schema(member.fed_schema)
                if has_schema else None
            )
            stats = member.channel.stats if member.channel else None
            member_check = by_member.get(member.name)
            consistent = bool(
                member_check and (member_check.ok or member_check.filtered)
            )
            syncs, sync_seconds, rate = self._pump_figures(
                member.name, stats.events_applied if stats else 0
            )
            members.append(
                MemberStatus(
                    name=member.name,
                    mode=member.mode,
                    lag_events=lag.get(member.name, 0),
                    fed_schema=member.fed_schema,
                    tables=len(schema.table_names()) if schema else 0,
                    fact_job_rows=(
                        len(schema.table("fact_job"))
                        if schema and schema.has_table("fact_job") else 0
                    ),
                    events_applied=stats.events_applied if stats else 0,
                    events_filtered=stats.events_filtered if stats else 0,
                    consistent=consistent,
                    circuit_state=member.breaker.state.value,
                    retries=stats.retries if stats else 0,
                    dead_letters=member.dead_letter_depth,
                    last_error=(
                        stats.last_error if stats and stats.last_error
                        else member.last_error
                    ),
                    syncs=syncs,
                    sync_seconds=sync_seconds,
                    events_per_second=rate,
                )
            )
        return FederationStatus(
            hub=self.hub.name,
            members=tuple(members),
            totals=check.federation_totals(),
            all_consistent=check.ok,
        )

    def render(self) -> str:
        """Human status panel."""
        status = self.status()
        name_w = max([len("member")] + [len(m.name) for m in status.members]) + 2
        lines = [
            f"Federation hub: {status.hub}",
            "=" * (17 + len(status.hub)),
            f"{'member':<{name_w}}{'mode':<7}{'lag':>6}{'jobs':>9}"
            f"{'applied':>9}{'filtered':>9}{'retries':>9}{'dlq':>5}  state",
        ]
        for member in status.members:
            lines.append(
                f"{member.name:<{name_w}}{member.mode:<7}{member.lag_events:>6}"
                f"{member.fact_job_rows:>9}{member.events_applied:>9}"
                f"{member.events_filtered:>9}{member.retries:>9}"
                f"{member.dead_letters:>5}  {member.health}"
            )
            if member.last_error:
                lines.append(f"{'':<{name_w}}  last error: {member.last_error}")
        totals = status.totals
        lines.append(
            f"federation totals: {totals.get('n_jobs', 0):,.0f} jobs, "
            f"{totals.get('cpu_hours', 0):,.0f} CPU hours, "
            f"{totals.get('xdsu', 0):,.0f} XD SUs"
        )
        lines.append(
            "consistency: " + ("OK" if status.all_consistent else "VIOLATED")
        )
        rated = [m for m in status.members if m.syncs]
        if rated:
            lines.append(
                "replication rates: " + ", ".join(
                    f"{m.name}={m.events_per_second:,.0f} ev/s "
                    f"(avg pump {m.avg_sync_seconds * 1000:.2f} ms "
                    f"over {m.syncs} pumps)"
                    for m in rated
                )
            )
        history = self.obs.history
        if history.enabled:
            spark: list[str] = []
            for member in status.members:
                lag = [v for _, v in history.samples(
                    "replication_lag_rows", member=member.name
                )]
                if lag:
                    spark.append(
                        f"  {member.name:<{name_w}}lag {render_sparkline(lag)}"
                    )
                dlq = [v for _, v in history.samples(
                    "federation_dead_letters_rows", member=member.name
                )]
                if any(dlq):
                    spark.append(
                        f"  {member.name:<{name_w}}dlq {render_sparkline(dlq)}"
                    )
            if spark:
                lines.append("history (oldest -> newest):")
                lines.extend(spark)
        plane = self.analytics
        if plane is not None and plane.last_scores:
            scores = sorted(job.score for job in plane.last_scores)
            lines.append(
                f"efficiency scores (n={len(scores)}, worst -> best): "
                f"{render_sparkline(scores)}"
            )
            lines.append(
                "least efficient jobs: " + ", ".join(
                    f"{job.member}/{job.resource}#{job.job_id} "
                    f"{job.application} {job.score:.2f}"
                    + (f" [{','.join(job.tags)}]" if job.tags else "")
                    for job in plane.worst_jobs(3)
                )
            )
            if plane.anomalies:
                lines.append(
                    f"anomalies open: {len(plane.anomalies)} (" + ", ".join(
                        f"{a.job.member}#{a.job.job_id}:{a.kind}"
                        for a in plane.anomalies
                    ) + ")"
                )
        if self.alerts.evaluations:
            firing = self.alerts.firing()
            lines.append(
                f"alerts: {len(firing)} firing"
                + (
                    " (" + ", ".join(
                        f"{s.rule.id}[{s.member}]" for s in firing
                    ) + ")"
                    if firing else ""
                )
            )
        report = self.hub.last_aggregation
        if report.skipped or report.quarantined:
            parts = []
            if report.skipped:
                parts.append(
                    "skipped: " + ", ".join(
                        f"{name} ({why})"
                        for name, why in sorted(report.skipped.items())
                    )
                )
            if report.quarantined:
                parts.append(
                    "quarantined events: " + ", ".join(
                        f"{name}={n}"
                        for name, n in sorted(report.quarantined.items())
                    )
                )
            lines.append("last aggregation: " + "; ".join(parts))
        return "\n".join(lines)

    def render_fleet(self, *, at: float | None = None) -> str:
        """Fleet telemetry dashboard over the hub's merged TSDB.

        Per member: last shipment sequence, stored series, staleness,
        ETL ingest rate and cache hit-ratio *as the satellite reported
        them*, hub-side replication lag, and the fleet-scoped alerts
        currently firing (evaluate first via :meth:`evaluate_alerts`).

        Deterministic: one clock read (or the explicit ``at``) anchors
        every windowed query, so the panel is byte-identical across runs
        of the same FakeClock-driven scenario.
        """
        hub = self.hub
        fleet = getattr(hub, "fleet", None)
        title = f"Fleet telemetry: {hub.name}"
        lines = [title, "=" * len(title)]
        if fleet is None or not fleet.member_names():
            lines.append("(no telemetry shipments ingested)")
            return "\n".join(lines)
        now = float(self.obs.clock.now() if at is None else at)
        stale_after = alert_rule("fleet_telemetry_stale").max_age_s
        window = 600.0
        lag = hub.lag()
        names = fleet.member_names()
        name_w = max([len("member")] + [len(n) for n in names]) + 2
        lines.append(
            f"{'member':<{name_w}}{'seq':>6}{'series':>8}{'age_s':>8}"
            f"{'ingest/s':>10}{'lag':>6}{'cache':>7}  state"
        )
        for name in names:
            seq = fleet.last_seq(name) or 0
            age = fleet.staleness(name, at=now)
            rate = fleet.history.rate(
                "etl_ingest_records_total", window, at=now, member=name
            )
            hits = fleet.history.last(
                "serving_cache_lookups_total", member=name, result="hit"
            )
            lookups = fleet.history.last(
                "serving_cache_lookups_total", member=name
            )
            cache = (
                f"{hits / lookups * 100:.0f}%"
                if hits is not None and lookups else "-"
            )
            state = "STALE" if age is not None and age > stale_after else "fresh"
            lines.append(
                f"{name:<{name_w}}{seq:>6}{fleet.series_count(name):>8}"
                f"{(f'{age:.0f}' if age is not None else '-'):>8}"
                f"{(f'{rate:.2f}' if rate is not None else '-'):>10}"
                f"{lag.get(name, 0):>6}{cache:>7}  {state}"
            )
        spark: list[str] = []
        for name in names:
            seqs = [
                v for _, v in fleet.history.samples(
                    "fleet_shipment_seq_rows", member=name
                )
            ]
            if len(seqs) > 1:
                spark.append(f"  {name:<{name_w}}seq {render_sparkline(seqs)}")
        if spark:
            lines.append("shipments (oldest -> newest):")
            lines.extend(spark)
        stale_members = fleet.stale_members(stale_after, at=now)
        if stale_members:
            lines.append("stale members: " + ", ".join(stale_members))
        if self.alerts.evaluations:
            firing = [
                s for s in self.alerts.firing() if s.rule.scope == "fleet"
            ]
            lines.append(
                f"fleet alerts: {len(firing)} firing"
                + (
                    " (" + ", ".join(
                        f"{s.rule.id}[{s.member}]" for s in firing
                    ) + ")"
                    if firing else ""
                )
            )
        return "\n".join(lines)
