"""Metric standardization across a federation (Section II-C6).

"In order to make a federation of XDMoD instances useful and meaningful,
the metrics being reported must be standardized by including
benchmarking-based conversions."  XSEDE's answer is the XD SU: every
resource's CPU-hour is scaled by an HPL-derived conversion factor.

:func:`standardize_federation` builds one :class:`ConversionTable` from
synthetic HPL runs on every resource of every federation member, and
:func:`standardization_report` audits a federation for unstandardized
resources — the paper's warning that comparing raw CPU-hours across
differently-provisioned systems is not a fair comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..simulators.cluster import ResourceSpec
from ..simulators.hpl import ConversionTable, HplResult, run_hpl


@dataclass(frozen=True)
class StandardizationReport:
    """Audit of which federated resources carry conversion factors."""

    standardized: tuple[str, ...]
    unstandardized: tuple[str, ...]

    @property
    def is_fully_standardized(self) -> bool:
        return not self.unstandardized


def standardize_federation(
    resources: Mapping[str, ResourceSpec], *, seed: int = 0
) -> tuple[ConversionTable, dict[str, HplResult]]:
    """Benchmark every resource and derive the federation-wide table.

    Returns the conversion table plus the raw HPL results (sites keep these
    for audit).  Deterministic given ``seed``.
    """
    results = {
        name: run_hpl(spec, seed=seed + i)
        for i, (name, spec) in enumerate(sorted(resources.items()))
    }
    return ConversionTable.from_benchmarks(results), results


def standardization_report(
    conversion: ConversionTable, resource_names: Iterable[str]
) -> StandardizationReport:
    """Check a set of federated resources against the conversion table."""
    standardized = []
    unstandardized = []
    for name in sorted(set(resource_names)):
        if conversion.is_standardized(name):
            standardized.append(name)
        else:
            unstandardized.append(name)
    return StandardizationReport(tuple(standardized), tuple(unstandardized))


def federation_resource_names(hub) -> list[str]:
    """All resource names present in a hub's replicated schemas."""
    names: set[str] = set()
    for schema in hub.federated_schemas().values():
        if schema.has_table("dim_resource"):
            for row in schema.table("dim_resource").rows():
                names.add(row["name"])
    return sorted(names)
