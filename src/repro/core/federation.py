"""Federation orchestration: XDMoD instances, satellites, and the hub.

The federation model (Sections II-A, II-B): independent XDMoD instances,
each ingesting and aggregating its own resources' data, replicate raw HPC
Jobs realm data into uniquely-named schemas on a central federated hub in a
fan-in topology.  The hub re-aggregates the raw data under its own
aggregation levels and offers a unified view; satellites retain full local
functionality and need no knowledge of one another.  The only membership
requirement is that every instance runs the same XDMoD version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..aggregation import AggregationConfig, Aggregator
from ..etl.pipeline import WAREHOUSE_SCHEMA, IngestPipeline
from ..etl.star import PersonInfo
from ..simulators.hpl import ConversionTable
from ..warehouse import Database, Schema
from .errors import MembershipError, VersionMismatchError
from .loose import LooseChannel
from .replicator import ReplicationChannel, ReplicationFilter

#: The XDMoD release this codebase models (Open XDMoD contemporary with
#: the paper; SSO shipped in 6.5, federation developed against 8.0).
XDMOD_VERSION = "8.0.0"

#: Hub-side schema naming convention: one renamed schema per instance.
FED_SCHEMA_PREFIX = "fed_"


class XdmodInstance:
    """One Open XDMoD installation: warehouse + ETL + aggregation.

    This is the unit of federation — satellites and hubs are both
    instances.  ``name`` doubles as the instance's identity inside a
    federation.
    """

    def __init__(
        self,
        name: str,
        *,
        version: str = XDMOD_VERSION,
        aggregation: AggregationConfig | None = None,
        conversion: ConversionTable | None = None,
        directory: Mapping[str, PersonInfo] | None = None,
        science_fields: Mapping[str, str] | None = None,
    ) -> None:
        self.name = name
        self.version = version
        self.database = Database(name)
        self.pipeline = IngestPipeline(
            self.database,
            conversion=conversion,
            directory=directory,
            science_fields=science_fields,
        )
        self.aggregator = Aggregator(self.schema, aggregation)

    @property
    def schema(self) -> Schema:
        """The instance's primary warehouse schema (``modw``)."""
        return self.database.schema(WAREHOUSE_SCHEMA)

    @property
    def aggregation(self) -> AggregationConfig:
        return self.aggregator.config

    def aggregate(self, periods: Sequence[str] | None = None) -> dict[str, int]:
        """Run the nightly aggregation step locally."""
        return self.aggregator.aggregate_all(periods)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"XdmodInstance({self.name!r}, version={self.version!r})"


@dataclass
class FederationMember:
    """Hub-side registration of one satellite."""

    instance: XdmodInstance
    mode: str  # "tight" | "loose"
    fed_schema: str
    channel: ReplicationChannel | None = None
    loose_channel: LooseChannel | None = None

    @property
    def name(self) -> str:
        return self.instance.name


class FederationHub(XdmodInstance):
    """The central federated hub: an XDMoD instance that also accumulates
    one replicated schema per satellite and aggregates them all under its
    own aggregation levels."""

    def __init__(
        self,
        name: str = "federation_hub",
        *,
        version: str = XDMOD_VERSION,
        aggregation: AggregationConfig | None = None,
        conversion: ConversionTable | None = None,
    ) -> None:
        super().__init__(
            name, version=version, aggregation=aggregation, conversion=conversion
        )
        self._members: dict[str, FederationMember] = {}

    # -- membership -----------------------------------------------------------

    def join(
        self,
        satellite: XdmodInstance,
        *,
        mode: str = "tight",
        filter: ReplicationFilter | None = None,
        initial_sync: bool = True,
    ) -> FederationMember:
        """Add a satellite to the federation.

        Enforces the version requirement, provisions the hub-side schema,
        and (for tight mode) opens a replication channel from the
        satellite's binlog position 0 so all historical data replicates.
        """
        if satellite.version != self.version:
            raise VersionMismatchError(
                f"satellite {satellite.name!r} runs XDMoD {satellite.version}, "
                f"federation requires {self.version}"
            )
        if satellite.name in self._members:
            raise MembershipError(f"{satellite.name!r} is already a member")
        if satellite.name == self.name:
            raise MembershipError("the hub cannot federate itself")
        if mode not in ("tight", "loose"):
            raise MembershipError(f"unknown federation mode {mode!r}")

        fed_schema_name = FED_SCHEMA_PREFIX + satellite.name
        member = FederationMember(
            instance=satellite, mode=mode, fed_schema=fed_schema_name
        )
        if mode == "tight":
            target = self.database.ensure_schema(fed_schema_name)
            member.channel = ReplicationChannel(
                satellite.schema, target, filter=filter
            )
            if initial_sync:
                member.channel.catch_up()
        else:
            member.loose_channel = LooseChannel(
                satellite.schema,
                self.database,
                fed_schema_name,
                filter=filter,
            )
            if initial_sync:
                member.loose_channel.ship()
        self._members[satellite.name] = member
        return member

    def leave(self, name: str, *, drop_data: bool = False) -> None:
        """Remove a member; optionally drop its replicated schema."""
        member = self._members.pop(name, None)
        if member is None:
            raise MembershipError(f"{name!r} is not a member")
        if drop_data and self.database.has_schema(member.fed_schema):
            self.database.drop_schema(member.fed_schema)

    def member(self, name: str) -> FederationMember:
        try:
            return self._members[name]
        except KeyError:
            raise MembershipError(f"{name!r} is not a member") from None

    @property
    def members(self) -> list[FederationMember]:
        return [self._members[k] for k in sorted(self._members)]

    # -- data movement ------------------------------------------------------------

    def sync(self, *, batch: int | None = None) -> dict[str, int]:
        """Pump every channel once; returns events/rows applied per member.

        Tight members stream binlog events; loose members re-ship their
        dump only when called through :meth:`ship_loose` (live sync leaves
        them stale, as the real mechanism would).
        """
        out: dict[str, int] = {}
        for member in self.members:
            if member.channel is not None:
                out[member.name] = (
                    member.channel.catch_up()
                    if batch is None
                    else member.channel.pump(batch)
                )
            else:
                out[member.name] = 0
        return out

    def ship_loose(self) -> dict[str, int]:
        """Re-ship every loose member's dump; returns rows loaded."""
        out: dict[str, int] = {}
        for member in self.members:
            if member.loose_channel is not None:
                schema = member.loose_channel.ship()
                out[member.name] = sum(
                    len(schema.table(t)) for t in schema.table_names()
                )
        return out

    def lag(self) -> dict[str, int]:
        """Replication lag (tight: binlog events; loose: staleness)."""
        out: dict[str, int] = {}
        for member in self.members:
            if member.channel is not None:
                out[member.name] = member.channel.lag
            elif member.loose_channel is not None:
                out[member.name] = member.loose_channel.staleness
        return out

    # -- hub-side aggregation -----------------------------------------------------

    def federated_schemas(self, *, include_local: bool = False) -> dict[str, Schema]:
        """Instance name -> hub-side schema holding its replicated data."""
        out: dict[str, Schema] = {}
        if include_local and len(self.schema.table_names()) > 1:
            out[self.name] = self.schema
        for member in self.members:
            if self.database.has_schema(member.fed_schema):
                out[member.name] = self.database.schema(member.fed_schema)
        return out

    def aggregate_federation(
        self, periods: Sequence[str] | None = None
    ) -> dict[str, dict[str, int]]:
        """Aggregate every replicated schema under the HUB's levels.

        "All raw instance data are fully replicated to the master, then
        aggregated there, according to the federation hub's aggregation
        levels, so no data are lost or changed."
        """
        out: dict[str, dict[str, int]] = {}
        for name, schema in self.federated_schemas().items():
            aggregator = Aggregator(schema, self.aggregation)
            out[name] = aggregator.aggregate_all(periods)
        return out

    def reaggregate_federation(
        self,
        aggregation: AggregationConfig,
        periods: Sequence[str] | None = None,
    ) -> dict[str, dict[str, int]]:
        """Change the hub's levels and re-aggregate all raw federation data
        (the Table I new-satellite scenario)."""
        self.aggregator.config = aggregation
        return self.aggregate_federation(periods)
