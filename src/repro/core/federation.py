"""Federation orchestration: XDMoD instances, satellites, and the hub.

The federation model (Sections II-A, II-B): independent XDMoD instances,
each ingesting and aggregating its own resources' data, replicate raw HPC
Jobs realm data into uniquely-named schemas on a central federated hub in a
fan-in topology.  The hub re-aggregates the raw data under its own
aggregation levels and offers a unified view; satellites retain full local
functionality and need no knowledge of one another.  The only membership
requirement is that every instance runs the same XDMoD version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..aggregation import AggregationConfig, Aggregator
from ..etl.pipeline import WAREHOUSE_SCHEMA, IngestPipeline
from ..etl.star import PersonInfo
from ..obs import Observability
from ..obs.fleet import FleetTSDB, ShipmentError, TelemetryShipper
from ..simulators.hpl import ConversionTable
from ..warehouse import Database, Schema
from .errors import MembershipError, VersionMismatchError
from .loose import LooseChannel
from .replicator import ReplicationChannel, ReplicationFilter
from .resilience import (
    CircuitBreaker,
    CircuitState,
    MemberSyncOutcome,
    RetryPolicy,
)

#: The XDMoD release this codebase models (Open XDMoD contemporary with
#: the paper; SSO shipped in 6.5, federation developed against 8.0).
XDMOD_VERSION = "8.0.0"

#: Hub-side schema naming convention: one renamed schema per instance.
FED_SCHEMA_PREFIX = "fed_"


class XdmodInstance:
    """One Open XDMoD installation: warehouse + ETL + aggregation.

    This is the unit of federation — satellites and hubs are both
    instances.  ``name`` doubles as the instance's identity inside a
    federation.
    """

    def __init__(
        self,
        name: str,
        *,
        version: str = XDMOD_VERSION,
        aggregation: AggregationConfig | None = None,
        conversion: ConversionTable | None = None,
        directory: Mapping[str, PersonInfo] | None = None,
        science_fields: Mapping[str, str] | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.name = name
        self.version = version
        #: telemetry bundle shared by every layer of this instance;
        #: inject Observability(clock=FakeClock(...)) for determinism or
        #: Observability.disabled() to strip the overhead
        self.obs = obs if obs is not None else Observability.default()
        if not self.obs.tracer.name:
            # trace ids and span references are qualified by instance name
            self.obs.tracer.name = name
        self.database = Database(
            name,
            metrics=self.obs.registry,
            trace_provider=self.obs.tracer.current_context,
        )
        self.pipeline = IngestPipeline(
            self.database,
            conversion=conversion,
            directory=directory,
            science_fields=science_fields,
            obs=self.obs,
        )
        self.aggregator = Aggregator(self.schema, aggregation, obs=self.obs)

    @property
    def schema(self) -> Schema:
        """The instance's primary warehouse schema (``modw``)."""
        return self.database.schema(WAREHOUSE_SCHEMA)

    @property
    def aggregation(self) -> AggregationConfig:
        return self.aggregator.config

    def aggregate(
        self,
        periods: Sequence[str] | None = None,
        *,
        incremental: bool = False,
    ) -> dict[str, int]:
        """Run the nightly aggregation step locally.

        With ``incremental=True`` only newly ingested facts are folded
        into the existing aggregates (seen-table bookkeeping) instead of
        rebuilding every realm from scratch.
        """
        if incremental:
            return self.aggregator.aggregate_all_incremental(periods)
        return self.aggregator.aggregate_all(periods)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"XdmodInstance({self.name!r}, version={self.version!r})"


@dataclass
class FederationMember:
    """Hub-side registration of one satellite.

    Every member carries a :class:`CircuitBreaker`: repeated sync
    failures stop the member from consuming sync cycles (OPEN), and the
    breaker automatically re-probes it after a cooldown (HALF_OPEN).
    """

    instance: XdmodInstance
    mode: str  # "tight" | "loose"
    fed_schema: str
    channel: ReplicationChannel | None = None
    loose_channel: LooseChannel | None = None
    breaker: CircuitBreaker = field(default_factory=CircuitBreaker)
    last_error: str = ""
    telemetry: TelemetryShipper | None = None

    @property
    def name(self) -> str:
        return self.instance.name

    @property
    def dead_letter_depth(self) -> int:
        return len(self.channel.dead_letters) if self.channel else 0


@dataclass(frozen=True)
class FederationAggregationReport:
    """What the last :meth:`FederationHub.aggregate_federation` covered.

    The unified view can proceed over healthy members while being honest
    about the rest: ``skipped`` members contributed nothing this round
    (and why), ``stale`` members contributed data that lags their
    satellite, ``quarantined`` members have dead-lettered events excluded
    from their contribution.
    """

    aggregated: tuple[str, ...] = ()
    skipped: Mapping[str, str] = field(default_factory=dict)
    stale: Mapping[str, int] = field(default_factory=dict)
    quarantined: Mapping[str, int] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """True when every member contributed fresh, whole data."""
        return not (self.skipped or self.stale or self.quarantined)


class FederationHub(XdmodInstance):
    """The central federated hub: an XDMoD instance that also accumulates
    one replicated schema per satellite and aggregates them all under its
    own aggregation levels."""

    def __init__(
        self,
        name: str = "federation_hub",
        *,
        version: str = XDMOD_VERSION,
        aggregation: AggregationConfig | None = None,
        conversion: ConversionTable | None = None,
        obs: Observability | None = None,
    ) -> None:
        super().__init__(
            name, version=version, aggregation=aggregation,
            conversion=conversion, obs=obs,
        )
        self._members: dict[str, FederationMember] = {}
        self.last_aggregation = FederationAggregationReport()
        self._post_aggregation_hooks: list[Callable[[], object]] = []
        registry = self.obs.registry
        self._m_sync_cycles = registry.counter(
            "federation_sync_cycles_total",
            "Sync cycles run by the hub",
            ("hub",),
        ).labels(hub=name)
        self._m_transitions = registry.counter(
            "federation_circuit_transitions_total",
            "Circuit-breaker state changes observed per member",
            ("member", "state"),
        )
        self._m_loose_ships = registry.counter(
            "federation_loose_ship_total",
            "Successful loose-mode dump shipments per member",
            ("member",),
        )
        self._g_lag = registry.gauge(
            "replication_lag_rows",
            "Unreplicated events (tight) or staleness (loose) per member",
            ("member",),
        )
        self._g_dead_letters = registry.gauge(
            "federation_dead_letters_rows",
            "Quarantined events currently held per member",
            ("member",),
        )
        self._m_member_syncs = registry.counter(
            "federation_member_syncs_total",
            "Per-member sync/shipment outcomes by status",
            ("member", "status"),
        )
        #: merged TSDB over every member's shipped telemetry; disabled in
        #: lockstep with the hub's own observability bundle
        self.fleet = FleetTSDB(self.obs.clock, enabled=self.obs.enabled)
        self._m_fleet_ships = registry.counter(
            "fleet_shipments_total",
            "Telemetry shipments ingested into the fleet TSDB by outcome",
            ("member", "status"),
        )
        self._g_fleet_bytes = registry.gauge(
            "fleet_shipment_bytes",
            "Wire size of the member's most recent telemetry shipment",
            ("member",),
        )
        self._g_fleet_series = registry.gauge(
            "fleet_series_rows",
            "Fleet TSDB series currently held per member",
            ("member",),
        )
        self._g_fleet_staleness = registry.gauge(
            "fleet_staleness_seconds",
            "Seconds since the member's last fresh telemetry shipment",
            ("member",),
        )

    def _record_outcomes(self, out: Mapping[str, MemberSyncOutcome]) -> None:
        """Count outcomes, ship telemetry, refresh gauges, snapshot."""
        for name, outcome in out.items():
            self._m_member_syncs.labels(member=name, status=outcome.status).inc()
            # telemetry rides the sync machinery: a member the hub could
            # not reach this cycle (failed / circuit open) ships nothing,
            # so its fleet series go stale exactly when its data does
            if outcome.status not in ("failed", "circuit_open"):
                self._ship_telemetry(self._members.get(name))
        self._record_member_gauges()
        self.obs.history.record()

    def _ship_telemetry(self, member: FederationMember | None) -> None:
        """Snapshot one member's registry into the fleet TSDB."""
        if member is None or member.telemetry is None or not self.fleet.enabled:
            return
        shipment = member.telemetry.snapshot()
        try:
            status = self.fleet.ingest(shipment)
        except ShipmentError:
            self._m_fleet_ships.labels(member=member.name, status="corrupt").inc()
            return
        self._m_fleet_ships.labels(member=member.name, status=status).inc()
        self._g_fleet_bytes.labels(member=member.name).set(
            member.telemetry.last_bytes
        )

    def _note_transition(self, member: FederationMember, before: CircuitState) -> None:
        after = member.breaker.state
        if after is not before:
            self._m_transitions.labels(
                member=member.name, state=after.name.lower()
            ).inc()

    def _record_member_gauges(self) -> None:
        lag = self.lag()
        at = self.obs.clock.now() if self.fleet.enabled else 0.0
        for member in self.members:
            self._g_lag.labels(member=member.name).set(lag.get(member.name, 0))
            self._g_dead_letters.labels(member=member.name).set(
                member.dead_letter_depth
            )
            if member.telemetry is None:
                continue
            staleness = self.fleet.staleness(member.name, at=at)
            if staleness is not None:
                self._g_fleet_staleness.labels(member=member.name).set(staleness)
            self._g_fleet_series.labels(member=member.name).set(
                self.fleet.series_count(member.name)
            )

    # -- membership -----------------------------------------------------------

    def join(
        self,
        satellite: XdmodInstance,
        *,
        mode: str = "tight",
        filter: ReplicationFilter | None = None,
        initial_sync: bool = True,
        retry_policy: RetryPolicy | None = None,
        quarantine: bool = False,
        breaker: CircuitBreaker | None = None,
    ) -> FederationMember:
        """Add a satellite to the federation.

        Enforces the version requirement, provisions the hub-side schema,
        and (for tight mode) opens a replication channel from the
        satellite's binlog position 0 so all historical data replicates.

        ``retry_policy`` and ``quarantine`` configure the member's tight
        channel (see :class:`~repro.core.ReplicationChannel`); ``breaker``
        overrides the member's default circuit breaker.
        """
        if satellite.version != self.version:
            raise VersionMismatchError(
                f"satellite {satellite.name!r} runs XDMoD {satellite.version}, "
                f"federation requires {self.version}"
            )
        if satellite.name in self._members:
            raise MembershipError(f"{satellite.name!r} is already a member")
        if satellite.name == self.name:
            raise MembershipError("the hub cannot federate itself")
        if mode not in ("tight", "loose"):
            raise MembershipError(f"unknown federation mode {mode!r}")

        fed_schema_name = FED_SCHEMA_PREFIX + satellite.name
        member = FederationMember(
            instance=satellite, mode=mode, fed_schema=fed_schema_name
        )
        if breaker is not None:
            member.breaker = breaker
        if self.fleet.enabled:
            # telemetry remote-write: the member's local registry ships
            # into the hub's fleet TSDB after every healthy sync cycle
            member.telemetry = TelemetryShipper(
                satellite.obs.registry,
                member=satellite.name,
                clock=satellite.obs.clock,
            )
        if mode == "tight":
            target = self.database.ensure_schema(fed_schema_name)
            member.channel = ReplicationChannel(
                satellite.schema,
                target,
                filter=filter,
                retry_policy=retry_policy,
                quarantine=quarantine,
                obs=self.obs,
                name=satellite.name,
            )
            if initial_sync:
                member.channel.catch_up()
        else:
            member.loose_channel = LooseChannel(
                satellite.schema,
                self.database,
                fed_schema_name,
                filter=filter,
                obs=self.obs,
            )
            if initial_sync:
                member.loose_channel.ship()
        self._members[satellite.name] = member
        return member

    def leave(self, name: str, *, drop_data: bool = False) -> None:
        """Remove a member; optionally drop its replicated schema.

        The departed member's telemetry is removed everywhere it lives:
        its per-member registry children (otherwise the last
        ``replication_lag_rows`` value would sit in every later scrape as
        a phantom member and keep feeding the lag alert), its
        ``MetricsHistory`` series (otherwise partial-label queries like
        ``quantile_over_time(..., )`` would keep pooling them), and its
        fleet TSDB state and shipped series.
        """
        member = self._members.pop(name, None)
        if member is None:
            raise MembershipError(f"{name!r} is not a member")
        if drop_data and self.database.has_schema(member.fed_schema):
            self.database.drop_schema(member.fed_schema)
        for metric in (
            "replication_lag_rows",
            "federation_dead_letters_rows",
            "federation_member_syncs_total",
            "federation_circuit_transitions_total",
            "federation_loose_ship_total",
            "fleet_shipments_total",
            "fleet_shipment_bytes",
            "fleet_series_rows",
            "fleet_staleness_seconds",
        ):
            self.obs.registry.remove_labels(metric, member=name)
        self.obs.history.purge_labels(member=name)
        self.fleet.purge_member(name)

    def member(self, name: str) -> FederationMember:
        try:
            return self._members[name]
        except KeyError:
            raise MembershipError(f"{name!r} is not a member") from None

    @property
    def members(self) -> list[FederationMember]:
        return [self._members[k] for k in sorted(self._members)]

    # -- data movement ------------------------------------------------------------

    def sync(self, *, batch: int | None = None) -> dict[str, MemberSyncOutcome]:
        """Pump every channel once; returns a per-member outcome.

        Tight members stream binlog events; loose members re-ship their
        dump only when called through :meth:`ship_loose` (live sync leaves
        them stale, as the real mechanism would).

        Failures are isolated per member: one satellite's broken channel
        never stops the others from replicating.  A failing member's
        outcome carries the error, its circuit breaker is notified, and —
        once the breaker opens — subsequent cycles skip the member
        (``circuit_open``) until the cooldown elapses and a probe either
        recovers it or re-opens the circuit.  The outcomes compare as the
        number of events applied, so ``sync()["site"] > 0`` and
        ``sum(sync().values())`` behave as before.
        """
        out: dict[str, MemberSyncOutcome] = {}
        self._m_sync_cycles.inc()
        for member in self.members:
            if member.channel is None:
                out[member.name] = MemberSyncOutcome(member.name, "idle", 0)
                continue
            breaker_before = member.breaker.state
            if not member.breaker.allow():
                self._note_transition(member, breaker_before)
                out[member.name] = MemberSyncOutcome(
                    member.name, "circuit_open", 0,
                    error=member.breaker.last_error,
                )
                continue
            stats = member.channel.stats
            retries_before = stats.retries
            quarantined_before = stats.events_quarantined
            try:
                applied = (
                    member.channel.catch_up()
                    if batch is None
                    else member.channel.pump(batch)
                )
            # repolint: ignore[overbroad-except] -- degraded-mode boundary: any member failure is recorded per-member and sync continues
            except Exception as exc:
                member.breaker.record_failure(str(exc))
                member.last_error = str(exc)
                self._note_transition(member, breaker_before)
                out[member.name] = MemberSyncOutcome(
                    member.name, "failed", 0,
                    retried=stats.retries - retries_before,
                    error=str(exc),
                )
                continue
            member.breaker.record_success()
            member.last_error = ""
            self._note_transition(member, breaker_before)
            retried = stats.retries - retries_before
            quarantined = stats.events_quarantined - quarantined_before
            status = (
                "quarantined" if quarantined
                else "retried" if retried
                else "applied"
            )
            out[member.name] = MemberSyncOutcome(
                member.name, status, applied,
                retried=retried, quarantined=quarantined,
            )
        self._record_outcomes(out)
        return out

    def ship_loose(self) -> dict[str, MemberSyncOutcome]:
        """Re-ship every loose member's dump; returns per-member outcomes
        whose value is the number of rows loaded.

        Like :meth:`sync`, failures (e.g. a corrupt dump file rejected by
        checksum verification) are isolated per member and feed the
        member's circuit breaker; the previous good shipment stays live
        on the hub.
        """
        out: dict[str, MemberSyncOutcome] = {}
        for member in self.members:
            if member.loose_channel is None:
                continue
            breaker_before = member.breaker.state
            if not member.breaker.allow():
                self._note_transition(member, breaker_before)
                out[member.name] = MemberSyncOutcome(
                    member.name, "circuit_open", 0,
                    error=member.breaker.last_error,
                )
                continue
            try:
                schema = member.loose_channel.ship()
            # repolint: ignore[overbroad-except] -- degraded-mode boundary: a failed shipment marks the member failed, others proceed
            except Exception as exc:
                member.breaker.record_failure(str(exc))
                member.last_error = str(exc)
                self._note_transition(member, breaker_before)
                out[member.name] = MemberSyncOutcome(
                    member.name, "failed", 0, error=str(exc)
                )
                continue
            member.breaker.record_success()
            member.last_error = ""
            self._note_transition(member, breaker_before)
            self._m_loose_ships.labels(member=member.name).inc()
            rows = sum(len(schema.table(t)) for t in schema.table_names())
            out[member.name] = MemberSyncOutcome(member.name, "applied", rows)
        self._record_outcomes(out)
        return out

    def lag(self) -> dict[str, int]:
        """Replication lag (tight: binlog events; loose: staleness)."""
        out: dict[str, int] = {}
        for member in self.members:
            if member.channel is not None:
                out[member.name] = member.channel.lag
            elif member.loose_channel is not None:
                out[member.name] = member.loose_channel.staleness
        return out

    # -- hub-side aggregation -----------------------------------------------------

    def federated_schemas(self, *, include_local: bool = False) -> dict[str, Schema]:
        """Instance name -> hub-side schema holding its replicated data."""
        out: dict[str, Schema] = {}
        if include_local and len(self.schema.table_names()) > 1:
            out[self.name] = self.schema
        for member in self.members:
            if self.database.has_schema(member.fed_schema):
                out[member.name] = self.database.schema(member.fed_schema)
        return out

    def aggregate_federation(
        self,
        periods: Sequence[str] | None = None,
        *,
        incremental: bool = False,
    ) -> dict[str, dict[str, int]]:
        """Aggregate every replicated schema under the HUB's levels.

        "All raw instance data are fully replicated to the master, then
        aggregated there, according to the federation hub's aggregation
        levels, so no data are lost or changed."

        With ``incremental=True`` each member schema folds in only its
        newly replicated facts (seen-table bookkeeping per realm) instead
        of rebuilding every aggregate; the result tables are identical to
        a full rebuild over the same facts.  Level changes still require
        :meth:`reaggregate_federation`, which always rebuilds.

        Degraded mode: members whose circuit is open, whose schema never
        replicated, or whose aggregation raises are *skipped* — the
        healthy members still aggregate — and the skip reasons, along
        with stale (lagging) and quarantined members, are recorded in
        :attr:`last_aggregation` for the monitor to surface.
        """
        out: dict[str, dict[str, int]] = {}
        skipped: dict[str, str] = {}
        stale: dict[str, int] = {}
        quarantined: dict[str, int] = {}
        lag = self.lag()
        schemas = self.federated_schemas()
        for member in self.members:
            if member.name not in schemas:
                skipped[member.name] = "no replicated schema on hub"
        for name, schema in schemas.items():
            member = self._members.get(name)
            if member is not None and member.breaker.state is CircuitState.OPEN:
                skipped[name] = "circuit open"
                continue
            try:
                aggregator = Aggregator(schema, self.aggregation, obs=self.obs)
                if incremental:
                    out[name] = aggregator.aggregate_all_incremental(periods)
                else:
                    out[name] = aggregator.aggregate_all(periods)
            # repolint: ignore[overbroad-except] -- degraded-mode boundary: aggregation failure for one member is reported as skipped
            except Exception as exc:
                skipped[name] = str(exc)
                continue
            if lag.get(name, 0) > 0:
                stale[name] = lag[name]
            if member is not None and member.dead_letter_depth:
                quarantined[name] = member.dead_letter_depth
        self.last_aggregation = FederationAggregationReport(
            aggregated=tuple(sorted(out)),
            skipped=skipped,
            stale=stale,
            quarantined=quarantined,
        )
        for hook in self._post_aggregation_hooks:
            hook()
        return out

    def add_post_aggregation_hook(self, hook: Callable[[], object]) -> None:
        """Run ``hook()`` after every :meth:`aggregate_federation`.

        This is how the serving layer keeps its pre-materialized views
        warm (``hub.add_post_aggregation_hook(service.materialize)``)
        without ``repro.core`` importing ``repro.ui``: the hub only sees
        an opaque callable, invoked once fresh aggregates have landed.
        """
        self._post_aggregation_hooks.append(hook)

    def reaggregate_federation(
        self,
        aggregation: AggregationConfig,
        periods: Sequence[str] | None = None,
    ) -> dict[str, dict[str, int]]:
        """Change the hub's levels and re-aggregate all raw federation data
        (the Table I new-satellite scenario)."""
        self.aggregator.config = aggregation
        return self.aggregate_federation(periods)
