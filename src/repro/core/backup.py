"""Hub-as-backup: regenerating a satellite from the federation hub.

Section II-E4: "The act of federation can also be regarded as a backup
procedure.  Since the XDMoD federation hub does not summarize or reduce the
data it acquires from the member instances, the hub itself could be used to
regenerate the databases for the member instances."

:func:`regenerate_satellite` rebuilds a satellite's warehouse schema from
its replicated copy on the hub; :func:`verify_regeneration` confirms
fidelity with table checksums.  Fidelity is exact when the member's channel
used an unfiltered jobs-realm filter; with resource routing the regenerated
satellite necessarily lacks the excluded rows, which the verifier reports
rather than hides.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..etl.pipeline import WAREHOUSE_SCHEMA
from ..warehouse import Database, Schema, dump_schema, load_schema
from .errors import ConsistencyError, MembershipError
from .federation import FederationHub


def regenerate_satellite(
    hub: FederationHub,
    member_name: str,
    *,
    target_database: Database | None = None,
    schema_name: str = WAREHOUSE_SCHEMA,
) -> Database:
    """Rebuild a satellite database from its hub-side replicated schema.

    Returns a database containing ``schema_name`` with the member's raw
    replicated tables.  ``agg_*`` tables are not restored — the regenerated
    instance re-runs its own aggregation, exactly as after any restore.
    """
    member = hub.member(member_name)
    if not hub.database.has_schema(member.fed_schema):
        raise MembershipError(
            f"hub holds no replicated schema for {member_name!r}"
        )
    source = hub.database.schema(member.fed_schema)
    dump = dump_schema(source)
    dump["tables"] = [
        entry
        for entry in dump["tables"]
        if not entry["schema"]["name"].startswith("agg_")
    ]
    dump.pop("checksum", None)  # subset of tables; recompute meaningless
    database = target_database or Database(f"{member_name}_restored")
    load_schema(
        database,
        dump,
        rename_to=schema_name,
        replace=True,
        verify_checksum=False,
    )
    return database


@dataclass(frozen=True)
class RegenerationReport:
    """Outcome of a backup-fidelity check."""

    tables_checked: tuple[str, ...]
    matching: tuple[str, ...]
    mismatched: tuple[str, ...]
    missing: tuple[str, ...]

    @property
    def exact(self) -> bool:
        return not self.mismatched and not self.missing


def verify_regeneration(
    original: Schema,
    regenerated: Schema,
    *,
    tables: tuple[str, ...] | None = None,
    strict: bool = False,
) -> RegenerationReport:
    """Compare a regenerated schema against the original, per table.

    ``tables`` defaults to the original's non-aggregate, non-bookkeeping
    tables.  With ``strict=True`` any mismatch raises
    :class:`ConsistencyError`.
    """
    if tables is None:
        tables = tuple(
            t
            for t in original.table_names()
            if not t.startswith("agg_") and t != "etl_markers"
        )
    matching: list[str] = []
    mismatched: list[str] = []
    missing: list[str] = []
    for name in tables:
        if not regenerated.has_table(name):
            missing.append(name)
            continue
        if original.table(name).checksum() == regenerated.table(name).checksum():
            matching.append(name)
        else:
            mismatched.append(name)
    report = RegenerationReport(
        tuple(tables), tuple(matching), tuple(mismatched), tuple(missing)
    )
    if strict and not report.exact:
        raise ConsistencyError(
            f"regeneration mismatch: mismatched={report.mismatched} "
            f"missing={report.missing}"
        )
    return report
