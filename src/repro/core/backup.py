"""Hub-as-backup: regenerating a satellite from the federation hub.

Section II-E4: "The act of federation can also be regarded as a backup
procedure.  Since the XDMoD federation hub does not summarize or reduce the
data it acquires from the member instances, the hub itself could be used to
regenerate the databases for the member instances."

:func:`regenerate_satellite` rebuilds a satellite's warehouse schema from
its replicated copy on the hub; :func:`verify_regeneration` confirms
fidelity with table checksums.  Fidelity is exact when the member's channel
used an unfiltered jobs-realm filter; with resource routing the regenerated
satellite necessarily lacks the excluded rows, which the verifier reports
rather than hides.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..etl.pipeline import WAREHOUSE_SCHEMA
from ..warehouse import (
    Database,
    Schema,
    dump_schema,
    load_schema,
    read_dump_file,
    write_dump_file,
)
from ..warehouse.dump import dump_checksum
from .errors import ConsistencyError, MembershipError
from .federation import FederationHub


def _member_dump(hub: FederationHub, member_name: str) -> dict[str, Any]:
    """Dump a member's hub-side schema, aggregates stripped, re-checksummed."""
    member = hub.member(member_name)
    if not hub.database.has_schema(member.fed_schema):
        raise MembershipError(
            f"hub holds no replicated schema for {member_name!r}"
        )
    source = hub.database.schema(member.fed_schema)
    dump = dump_schema(source)
    dump["tables"] = [
        entry
        for entry in dump["tables"]
        if not entry["schema"]["name"].startswith("agg_")
    ]
    # subset of tables: recompute the checksum over what actually ships
    dump["checksum"] = dump_checksum(dump)
    return dump


def _restore(
    dump: dict[str, Any],
    member_name: str,
    target_database: Database | None,
    schema_name: str,
) -> Database:
    database = target_database or Database(f"{member_name}_restored")
    load_schema(
        database,
        dump,
        rename_to=schema_name,
        replace=True,
        verify_checksum=True,
    )
    return database


def regenerate_satellite(
    hub: FederationHub,
    member_name: str,
    *,
    target_database: Database | None = None,
    schema_name: str = WAREHOUSE_SCHEMA,
) -> Database:
    """Rebuild a satellite database from its hub-side replicated schema.

    Returns a database containing ``schema_name`` with the member's raw
    replicated tables.  ``agg_*`` tables are not restored — the regenerated
    instance re-runs its own aggregation, exactly as after any restore.
    """
    dump = _member_dump(hub, member_name)
    return _restore(dump, member_name, target_database, schema_name)


def backup_member_to_file(
    hub: FederationHub, member_name: str, path: str | Path
) -> Path:
    """Write a member's hub-side backup dump to disk (gzip JSON).

    The on-disk artifact is exactly what :func:`restore_satellite_from_file`
    consumes, checksummed so damage in storage is detected at restore time.
    """
    return write_dump_file(_member_dump(hub, member_name), path)


def restore_satellite_from_file(
    path: str | Path,
    member_name: str,
    *,
    target_database: Database | None = None,
    schema_name: str = WAREHOUSE_SCHEMA,
) -> Database:
    """Rebuild a satellite from a :func:`backup_member_to_file` artifact.

    A corrupted backup file raises :class:`~repro.warehouse.DumpError`
    instead of materializing a damaged warehouse.
    """
    dump = read_dump_file(path)
    return _restore(dump, member_name, target_database, schema_name)


@dataclass(frozen=True)
class RegenerationReport:
    """Outcome of a backup-fidelity check."""

    tables_checked: tuple[str, ...]
    matching: tuple[str, ...]
    mismatched: tuple[str, ...]
    missing: tuple[str, ...]

    @property
    def exact(self) -> bool:
        return not self.mismatched and not self.missing


def verify_regeneration(
    original: Schema,
    regenerated: Schema,
    *,
    tables: tuple[str, ...] | None = None,
    strict: bool = False,
) -> RegenerationReport:
    """Compare a regenerated schema against the original, per table.

    ``tables`` defaults to the original's non-aggregate, non-bookkeeping
    tables.  With ``strict=True`` any mismatch raises
    :class:`ConsistencyError`.
    """
    if tables is None:
        tables = tuple(
            t
            for t in original.table_names()
            if not t.startswith("agg_") and t != "etl_markers"
        )
    matching: list[str] = []
    mismatched: list[str] = []
    missing: list[str] = []
    for name in tables:
        if not regenerated.has_table(name):
            missing.append(name)
            continue
        if original.table(name).checksum() == regenerated.table(name).checksum():
            matching.append(name)
        else:
            mismatched.append(name)
    report = RegenerationReport(
        tuple(tables), tuple(matching), tuple(mismatched), tuple(missing)
    )
    if strict and not report.exact:
        raise ConsistencyError(
            f"regeneration mismatch: mismatched={report.mismatched} "
            f"missing={report.missing}"
        )
    return report
