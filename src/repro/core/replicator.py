"""Tight federation: the Tungsten-Replicator-equivalent binlog shipper.

"The technology we chose for replicating XDMoD instance data into the
federation master hub is Continuent's Tungsten Replicator... Tungsten reads
binary logs on the XDMoD instance databases, copying their tables into new,
uniquely named schemas (one schema per XDMoD instance) on the XDMoD
federation hub's database.  Tungsten supports renaming the data schema
during transfer, and selective replication of data from satellite
instances, both of which we have opted to do for federation."

:class:`ReplicationChannel` tails one satellite schema's binlog through a
:class:`~repro.warehouse.binlog.BinlogCursor` and applies events to the
hub's per-instance schema (``fed_<instance>`` by convention).  A
:class:`ReplicationFilter` implements the selective part:

- **table selection** — the initial federation release replicates only the
  HPC Jobs realm; user-profile and heavy SUPReMM timeseries tables are
  excluded (Sections II-C1, II-C5);
- **resource routing** — rows belonging to excluded resources are dropped
  before they ever reach the hub, "which could ensure that potentially
  sensitive data does not ever get replicated" (Section II-C4).  The filter
  learns the resource_id -> name mapping by watching ``dim_resource``
  inserts stream past, so it needs no out-of-band catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..etl.perfingest import HEAVY_TABLES
from ..etl.star import JOBS_REALM_TABLES
from ..warehouse import BinlogCursor, BinlogEvent, EventType, Schema
from .errors import ReplicationError

#: Tables holding user-profile data, never replicated (Section II-C1:
#: "user profile information [is] presently excluded").
USER_PROFILE_TABLES = ("users", "user_profiles", "sessions", "acls")

#: Fact tables whose rows carry a ``resource_id`` subject to routing.
RESOURCE_SCOPED_TABLES = (
    "fact_job", "fact_job_perf", "fact_storage", "fact_vm", "fact_vm_interval",
)


def supremm_summary_filter(**kwargs) -> "ReplicationFilter":
    """The paper's planned next release (Section II-C5): replicate the
    jobs realm *plus summarized* performance data (``fact_job_perf``),
    still never the storage-intensive raw timeseries."""
    return ReplicationFilter(
        tables=tuple(JOBS_REALM_TABLES) + ("fact_job_perf",), **kwargs
    )


class ReplicationFilter:
    """Stateful event filter for one replication channel.

    Parameters
    ----------
    tables:
        Whitelist of table names to replicate.  ``None`` means "all except
        the standing exclusions" (user profiles, heavy timeseries, ETL
        bookkeeping, and ``agg_*`` tables — the hub re-aggregates raw data
        itself, so satellite aggregates are never shipped).
    exclude_resources:
        Resource *names* whose fact rows must not reach the hub.
    include_resources:
        If given, only these resource names' fact rows replicate (an
        allowlist; combines with ``exclude_resources``).
    """

    def __init__(
        self,
        tables: Sequence[str] | None = tuple(JOBS_REALM_TABLES),
        *,
        exclude_resources: Iterable[str] = (),
        include_resources: Iterable[str] | None = None,
        drop_excluded_dim_rows: bool = True,
    ) -> None:
        self.tables = tuple(tables) if tables is not None else None
        self.exclude_resources = set(exclude_resources)
        self.include_resources = (
            set(include_resources) if include_resources is not None else None
        )
        self.drop_excluded_dim_rows = drop_excluded_dim_rows
        #: learned from dim_resource events flowing through the channel
        self._resource_names: dict[int, str] = {}

    # -- table-level selection -------------------------------------------------

    def table_allowed(self, table: str) -> bool:
        if table in USER_PROFILE_TABLES or table in HEAVY_TABLES:
            return False
        if table == "etl_markers" or table.startswith("agg_"):
            return False
        if self.tables is None:
            return True
        return table in self.tables

    # -- row-level routing ------------------------------------------------------

    def _resource_excluded(self, name: str) -> bool:
        if name in self.exclude_resources:
            return True
        if self.include_resources is not None and name not in self.include_resources:
            return True
        return False

    def _row_allowed(self, event: BinlogEvent) -> bool:
        row = event.data.get("row") or {}
        if event.table == "dim_resource":
            rid = row.get("resource_id")
            name = row.get("name")
            if rid is not None and name is not None:
                self._resource_names[rid] = name
            if name is not None and self.drop_excluded_dim_rows:
                return not self._resource_excluded(name)
            return True
        if event.table in RESOURCE_SCOPED_TABLES:
            rid = row.get("resource_id")
            if rid is None and event.etype is EventType.DELETE:
                # key-only delete: key order matches the PK; resource_id is
                # the first PK component on all resource-scoped tables
                key = event.data.get("key")
                if key:
                    rid = key[0]
            name = self._resource_names.get(rid)
            if name is not None and self._resource_excluded(name):
                return False
        return True

    def admit(self, event: BinlogEvent) -> bool:
        """True when ``event`` should be applied to the hub."""
        if not self.table_allowed(event.table):
            return False
        if event.etype in (
            EventType.CREATE_TABLE, EventType.DROP_TABLE, EventType.TRUNCATE
        ):
            return True
        return self._row_allowed(event)


@dataclass
class ChannelStats:
    """Lifetime counters for one channel (exposed for monitoring)."""

    events_seen: int = 0
    events_applied: int = 0
    events_filtered: int = 0
    syncs: int = 0


class ReplicationChannel:
    """One satellite schema -> one hub schema, with resumable position."""

    def __init__(
        self,
        source: Schema,
        target: Schema,
        *,
        filter: ReplicationFilter | None = None,
        start_lsn: int = 0,
    ) -> None:
        self.source = source
        self.target = target
        self.filter = filter or ReplicationFilter()
        self.cursor = BinlogCursor(source.binlog, start_lsn)
        self.stats = ChannelStats()

    @property
    def lag(self) -> int:
        """Unreplicated events waiting in the source binlog."""
        return self.cursor.lag

    def pump(self, max_events: int | None = None) -> int:
        """Apply pending events to the hub; returns events applied.

        Event application is wrapped so a poison event surfaces as
        :class:`ReplicationError` naming the LSN — the cursor is NOT
        advanced past it (at-least-once delivery; appliers are idempotent).
        """
        events = self.cursor.poll(max_events)
        applied = 0
        for event in events:
            self.stats.events_seen += 1
            if self.filter.admit(event):
                try:
                    self.target.apply_event(event)
                except Exception as exc:
                    raise ReplicationError(
                        f"channel {self.source.name!r}->{self.target.name!r}: "
                        f"failed applying LSN {event.lsn}: {exc}"
                    ) from exc
                self.stats.events_applied += 1
                applied += 1
            else:
                self.stats.events_filtered += 1
            self.cursor.commit(event.lsn)
        self.stats.syncs += 1
        return applied

    def catch_up(self, batch: int = 1000) -> int:
        """Pump until no lag remains; returns total events applied."""
        total = 0
        while self.lag:
            total += self.pump(batch)
        return total
