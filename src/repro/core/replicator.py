"""Tight federation: the Tungsten-Replicator-equivalent binlog shipper.

"The technology we chose for replicating XDMoD instance data into the
federation master hub is Continuent's Tungsten Replicator... Tungsten reads
binary logs on the XDMoD instance databases, copying their tables into new,
uniquely named schemas (one schema per XDMoD instance) on the XDMoD
federation hub's database.  Tungsten supports renaming the data schema
during transfer, and selective replication of data from satellite
instances, both of which we have opted to do for federation."

:class:`ReplicationChannel` tails one satellite schema's binlog through a
:class:`~repro.warehouse.binlog.BinlogCursor` and applies events to the
hub's per-instance schema (``fed_<instance>`` by convention).  A
:class:`ReplicationFilter` implements the selective part:

- **table selection** — the initial federation release replicates only the
  HPC Jobs realm; user-profile and heavy SUPReMM timeseries tables are
  excluded (Sections II-C1, II-C5);
- **resource routing** — rows belonging to excluded resources are dropped
  before they ever reach the hub, "which could ensure that potentially
  sensitive data does not ever get replicated" (Section II-C4).  The filter
  learns the resource_id -> name mapping by watching ``dim_resource``
  inserts stream past, so it needs no out-of-band catalog.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..etl.perfingest import HEAVY_TABLES
from ..etl.star import JOBS_REALM_TABLES
from ..obs import Observability
from ..warehouse import BinlogCursor, BinlogEvent, EventType, Schema
from .errors import ReplicationError
from .resilience import DeadLetterQueue, RetryPolicy

#: Tables holding user-profile data, never replicated (Section II-C1:
#: "user profile information [is] presently excluded").
USER_PROFILE_TABLES = ("users", "user_profiles", "sessions", "acls")

#: Fact tables whose rows carry a ``resource_id`` subject to routing.
RESOURCE_SCOPED_TABLES = (
    "fact_job", "fact_job_perf", "fact_job_analytics", "fact_storage",
    "fact_vm", "fact_vm_interval",
)

_NULL_CONTEXT = contextlib.nullcontext()


def supremm_summary_filter(**kwargs) -> "ReplicationFilter":
    """The paper's planned next release (Section II-C5): replicate the
    jobs realm *plus summarized* performance data (``fact_job_perf`` and
    the ``fact_job_analytics`` efficiency summaries), still never the
    storage-intensive raw timeseries."""
    return ReplicationFilter(
        tables=tuple(JOBS_REALM_TABLES)
        + ("fact_job_perf", "fact_job_analytics"),
        **kwargs,
    )


class ReplicationFilter:
    """Stateful event filter for one replication channel.

    Parameters
    ----------
    tables:
        Whitelist of table names to replicate.  ``None`` means "all except
        the standing exclusions" (user profiles, heavy timeseries, ETL
        bookkeeping, and ``agg_*`` tables — the hub re-aggregates raw data
        itself, so satellite aggregates are never shipped).
    exclude_resources:
        Resource *names* whose fact rows must not reach the hub.
    include_resources:
        If given, only these resource names' fact rows replicate (an
        allowlist; combines with ``exclude_resources``).
    """

    def __init__(
        self,
        tables: Sequence[str] | None = tuple(JOBS_REALM_TABLES),
        *,
        exclude_resources: Iterable[str] = (),
        include_resources: Iterable[str] | None = None,
        drop_excluded_dim_rows: bool = True,
    ) -> None:
        self.tables = tuple(tables) if tables is not None else None
        self.exclude_resources = set(exclude_resources)
        self.include_resources = (
            set(include_resources) if include_resources is not None else None
        )
        self.drop_excluded_dim_rows = drop_excluded_dim_rows
        #: learned from dim_resource events flowing through the channel
        self._resource_names: dict[int, str] = {}

    # -- table-level selection -------------------------------------------------

    def table_allowed(self, table: str) -> bool:
        if table in USER_PROFILE_TABLES or table in HEAVY_TABLES:
            return False
        if table == "etl_markers" or table.startswith("agg_"):
            return False
        if self.tables is None:
            return True
        return table in self.tables

    # -- row-level routing ------------------------------------------------------

    def _resource_excluded(self, name: str) -> bool:
        if name in self.exclude_resources:
            return True
        if self.include_resources is not None and name not in self.include_resources:
            return True
        return False

    def _row_allowed(self, event: BinlogEvent) -> bool:
        row = event.data.get("row") or {}
        if event.table == "dim_resource":
            rid = row.get("resource_id")
            name = row.get("name")
            if rid is not None and name is not None:
                self._resource_names[rid] = name
            if name is not None and self.drop_excluded_dim_rows:
                return not self._resource_excluded(name)
            return True
        if event.table in RESOURCE_SCOPED_TABLES:
            rid = row.get("resource_id")
            if rid is None and event.etype is EventType.DELETE:
                # key-only delete: key order matches the PK; resource_id is
                # the first PK component on all resource-scoped tables
                key = event.data.get("key")
                if key:
                    rid = key[0]
            name = self._resource_names.get(rid)
            if name is not None and self._resource_excluded(name):
                return False
        return True

    def admit(self, event: BinlogEvent) -> bool:
        """True when ``event`` should be applied to the hub."""
        if not self.table_allowed(event.table):
            return False
        if event.etype in (
            EventType.CREATE_TABLE, EventType.DROP_TABLE, EventType.TRUNCATE
        ):
            return True
        return self._row_allowed(event)


@dataclass
class ChannelStats:
    """Lifetime counters for one channel (exposed for monitoring).

    ``events_seen`` counts events whose processing *finished* (applied,
    filtered, or quarantined) — an event whose apply fails and will be
    re-polled is not counted until it resolves, so the counters add up
    under partial batches: ``events_seen == events_applied +
    events_filtered + events_quarantined``.  ``syncs`` counts every pump,
    including ones that raised.
    """

    events_seen: int = 0
    events_applied: int = 0
    events_filtered: int = 0
    events_quarantined: int = 0
    syncs: int = 0
    retries: int = 0
    apply_failures: int = 0
    backoff_s: float = 0.0
    last_error: str = ""


class ReplicationChannel:
    """One satellite schema -> one hub schema, with resumable position.

    The resilience knobs (both off by default, preserving strict
    fail-stop semantics):

    retry_policy:
        When set, a failed apply is retried per the policy's backoff
        schedule before being treated as a hard failure — transient hub
        errors never surface at all.
    quarantine:
        When true, an event that still fails after retries is moved to
        :attr:`dead_letters` and the cursor advances past it, so one
        poison event cannot wedge the channel forever.  Quarantined
        events are re-applied later through :meth:`replay`.
    """

    def __init__(
        self,
        source: Schema,
        target: Schema,
        *,
        filter: ReplicationFilter | None = None,
        start_lsn: int = 0,
        retry_policy: RetryPolicy | None = None,
        quarantine: bool = False,
        obs: Observability | None = None,
        name: str | None = None,
    ) -> None:
        self.source = source
        self.target = target
        self.filter = filter or ReplicationFilter()
        self.cursor = BinlogCursor(source.binlog, start_lsn)
        self.stats = ChannelStats()
        self.retry_policy = retry_policy
        self.quarantine = quarantine
        self.dead_letters = DeadLetterQueue()
        self.obs = obs
        self.name = name if name is not None else source.name
        if obs is not None:
            registry = obs.registry
            label = {"channel": self.name}
            self._m_applied = registry.counter(
                "replication_events_applied_total",
                "Events applied to the hub per channel",
                ("channel",),
            ).labels(**label)
            self._m_filtered = registry.counter(
                "replication_events_filtered_total",
                "Events dropped by the replication filter per channel",
                ("channel",),
            ).labels(**label)
            self._m_retries = registry.counter(
                "replication_retries_total",
                "Apply retries per channel",
                ("channel",),
            ).labels(**label)
            self._m_quarantined = registry.counter(
                "replication_quarantined_total",
                "Events dead-lettered per channel",
                ("channel",),
            ).labels(**label)
            self._h_pump = registry.histogram(
                "replication_pump_seconds",
                "Wall time of one pump over this channel",
                ("channel",),
            ).labels(**label)

    @property
    def lag(self) -> int:
        """Unreplicated events waiting in the source binlog."""
        return self.cursor.lag

    def _try_apply(self, event: BinlogEvent) -> Exception | None:
        """Apply one event with retries; returns the final error, if any."""
        policy = self.retry_policy
        attempts = policy.attempts() if policy else iter((0,))
        last_exc: Exception | None = None
        for attempt in attempts:
            if attempt:
                self.stats.retries += 1
                if policy is not None:
                    self.stats.backoff_s += policy.delay(attempt - 1)
            try:
                self.target.apply_event(event)
                return None
            # repolint: ignore[overbroad-except] -- quarantine boundary: poison events must capture any failure for the dead-letter queue
            except Exception as exc:
                last_exc = exc
                self.stats.apply_failures += 1
                self.stats.last_error = str(exc)
        return last_exc

    def pump(self, max_events: int | None = None) -> int:
        """Apply pending events to the hub; returns events applied.

        An event whose apply fails (after any configured retries) either
        raises :class:`ReplicationError` naming the LSN — the cursor is
        NOT advanced past it (at-least-once delivery; appliers are
        idempotent) — or, with ``quarantine`` enabled, is dead-lettered
        and skipped so the rest of the batch still replicates.
        """
        if self.obs is None:
            return self._pump(max_events)
        # telemetry is batch-level: snapshot the lifetime counters, run
        # the pump, publish the deltas — one histogram observation and at
        # most four counter bumps per batch, never per event
        stats = self.stats
        applied0 = stats.events_applied
        filtered0 = stats.events_filtered
        retries0 = stats.retries
        quarantined0 = stats.events_quarantined
        start = self.obs.clock.now()
        with self.obs.tracer.span("replication_pump", channel=self.name):
            try:
                return self._pump(max_events)
            finally:
                self._h_pump.observe(self.obs.clock.now() - start)
                if stats.events_applied != applied0:
                    self._m_applied.inc(stats.events_applied - applied0)
                if stats.events_filtered != filtered0:
                    self._m_filtered.inc(stats.events_filtered - filtered0)
                if stats.retries != retries0:
                    self._m_retries.inc(stats.retries - retries0)
                if stats.events_quarantined != quarantined0:
                    self._m_quarantined.inc(
                        stats.events_quarantined - quarantined0
                    )

    def _pump(self, max_events: int | None = None) -> int:
        events = self.cursor.poll(max_events)
        applied = 0
        # cross-member propagation: each event carries the trace context
        # captured at satellite append time; contiguous runs sharing one
        # (context, table) open a single re-parented hub_apply span, so
        # span volume is bounded by context transitions, not event count
        tracer = self.obs.tracer if self.obs is not None else None
        trace_of = self.source.binlog.trace_context
        group_span = None
        group_key = None
        group_n = 0

        def close_group() -> None:
            nonlocal group_span, group_key, group_n
            if group_span is not None:
                group_span.annotate(events=group_n)
                group_span.__exit__(None, None, None)
            group_span = None
            group_key = None
            group_n = 0

        try:
            for event in events:
                context = trace_of(event.lsn) if tracer is not None else None
                if self.filter.admit(event):
                    if tracer is not None:
                        key = (context, event.table)
                        if key != group_key:
                            close_group()
                            if context is not None:
                                group_span = tracer.span(
                                    "hub_apply",
                                    remote=context,
                                    channel=self.name,
                                    table=event.table,
                                ).__enter__()
                                group_key = key
                        group_n += 1
                    error = self._try_apply(event)
                    if error is not None:
                        attempts = 1 + (
                            self.retry_policy.max_retries if self.retry_policy else 0
                        )
                        if not self.quarantine:
                            close_group()
                            raise ReplicationError(
                                f"channel {self.source.name!r}->"
                                f"{self.target.name!r}: failed applying "
                                f"LSN {event.lsn}: {error}"
                            ) from error
                        self.dead_letters.add(
                            event, str(error), attempts, trace=context
                        )
                        self.stats.events_quarantined += 1
                    else:
                        self.stats.events_applied += 1
                        applied += 1
                else:
                    self.stats.events_filtered += 1
                self.stats.events_seen += 1
                self.cursor.commit(event.lsn)
        finally:
            close_group()
            self.stats.syncs += 1
        return applied

    def replay(self, lsns: Sequence[int] | None = None) -> int:
        """Re-apply dead-lettered events (after the cause is fixed).

        ``lsns`` selects specific letters (default: all, in LSN order).
        Events that apply cleanly leave the queue and count as applied;
        events that fail again stay quarantined.  Returns the number
        successfully replayed.
        """
        targets = list(lsns) if lsns is not None else self.dead_letters.lsns()
        tracer = self.obs.tracer if self.obs is not None else None
        replayed = 0
        for lsn in targets:
            if lsn not in self.dead_letters:
                continue
            letter = self.dead_letters.get(lsn)
            if tracer is not None and letter.trace is not None:
                # re-link the replay to the trace the event originally
                # carried, so the federated view shows quarantine + replay
                # as one story
                span = tracer.span(
                    "dead_letter_replay",
                    remote=letter.trace,
                    channel=self.name,
                    lsn=lsn,
                )
            else:
                span = _NULL_CONTEXT
            with span:
                ok = self._try_apply(letter.event) is None
            if ok:
                self.dead_letters.remove(lsn)
                self.stats.events_applied += 1
                self.stats.events_quarantined -= 1
                replayed += 1
        return replayed

    def catch_up(self, batch: int = 1000) -> int:
        """Pump until no lag remains; returns total events applied.

        Bails out (rather than spinning) if a pump makes no forward
        progress — a stalled binlog tailer leaves lag in place without
        delivering events.
        """
        total = 0
        while self.lag:
            position = self.cursor.position
            total += self.pump(batch)
            if self.cursor.position == position:
                break
        return total
