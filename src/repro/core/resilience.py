"""Federation resilience primitives: retry, circuit breaking, dead letters.

Production replication stacks (Tungsten included) assume member databases
will misbehave: transient apply errors, poison events that can never apply,
satellites that disappear for hours.  The paper's federation hub is only
useful if such failures degrade the aggregate view instead of destroying
it, so the reproduction gets the same three defensive layers:

- :class:`RetryPolicy` — exponential backoff with deterministic, seeded
  jitter.  Delays are *computed*, not slept, unless a ``sleep`` callable is
  supplied; the simulation cares about schedules and attempt counts, a real
  deployment would pass ``time.sleep``.
- :class:`CircuitBreaker` — the classic closed / open / half-open machine,
  measured in sync cycles rather than wall-clock time.  A member whose
  channel keeps failing stops consuming sync work, then gets re-probed
  automatically after a cooldown.
- :class:`DeadLetterQueue` — LSN-addressed quarantine for poison events.
  A quarantined event is skipped (the cursor advances past it) but never
  forgotten: :meth:`ReplicationChannel.replay` re-applies it once the
  operator has fixed the cause.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from ..warehouse import BinlogEvent


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with bounded, deterministically seeded jitter.

    Parameters
    ----------
    max_retries:
        Re-attempts after the first failure (total attempts =
        ``max_retries + 1``).
    base_delay / multiplier / max_delay:
        Classic exponential schedule: attempt ``n`` waits
        ``min(base_delay * multiplier**n, max_delay)`` seconds.
    jitter:
        Fraction of the computed delay randomized away (0 disables).  The
        jitter stream is seeded so two policies built with the same seed
        produce identical schedules — tests and benchmarks are repeatable.
    sleep:
        Optional callable invoked with each delay.  ``None`` (default)
        records the schedule without waiting, which is what the in-memory
        simulation wants; pass ``time.sleep`` for real deployments.
    """

    max_retries: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.5
    seed: int = 0
    sleep: Callable[[float], None] | None = None

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based), jitter applied."""
        raw = min(self.base_delay * (self.multiplier ** attempt), self.max_delay)
        if not self.jitter:
            return raw
        rng = random.Random(f"{self.seed}:{attempt}")
        return raw * (1.0 - self.jitter * rng.random())

    def schedule(self) -> list[float]:
        """The full backoff schedule this policy would follow."""
        return [self.delay(i) for i in range(self.max_retries)]

    def attempts(self) -> Iterator[int]:
        """Yield attempt numbers, invoking ``sleep`` between them."""
        for attempt in range(self.max_retries + 1):
            if attempt and self.sleep is not None:
                self.sleep(self.delay(attempt - 1))
            yield attempt


class CircuitState(enum.Enum):
    """Breaker states, in the canonical closed -> open -> half-open cycle."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-member circuit breaker, clocked in sync cycles.

    ``allow()`` is asked once per sync cycle.  While CLOSED every cycle is
    allowed; ``failure_threshold`` consecutive failures trip the breaker
    OPEN, after which ``cooldown`` cycles are refused outright (the member
    consumes no sync work).  The next cycle after cooldown runs HALF_OPEN:
    one probe is allowed, and its outcome either closes the breaker
    (recovery) or re-opens it for another cooldown.
    """

    def __init__(self, *, failure_threshold: int = 3, cooldown: int = 2) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown < 1:
            raise ValueError("cooldown must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.state = CircuitState.CLOSED
        self.consecutive_failures = 0
        self.total_failures = 0
        self.times_opened = 0
        self.last_error: str = ""
        self._cooldown_left = 0

    def allow(self) -> bool:
        """May this sync cycle touch the member?  (Advances the cooldown.)"""
        if self.state is not CircuitState.OPEN:
            return True
        self._cooldown_left -= 1
        if self._cooldown_left > 0:
            return False
        self.state = CircuitState.HALF_OPEN
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = CircuitState.CLOSED

    def record_failure(self, error: str = "") -> None:
        self.total_failures += 1
        self.last_error = error
        if self.state is CircuitState.HALF_OPEN:
            self._trip()
            return
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self.state = CircuitState.OPEN
        self.times_opened += 1
        self.consecutive_failures = 0
        self._cooldown_left = self.cooldown + 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker(state={self.state.value}, "
            f"failures={self.total_failures}, opened={self.times_opened})"
        )


@dataclass(frozen=True)
class DeadLetter:
    """One quarantined event: the event, why it failed, how hard we tried.

    ``trace`` keeps the propagation context the event carried when it was
    quarantined (a :class:`~repro.obs.propagation.TraceContext`, or None),
    so a later :meth:`ReplicationChannel.replay` re-links to the original
    federated trace.
    """

    lsn: int
    event: BinlogEvent
    error: str
    attempts: int
    trace: Any = None


class DeadLetterQueue:
    """LSN-addressed store of quarantined events for one channel."""

    def __init__(self) -> None:
        self._letters: dict[int, DeadLetter] = {}

    def add(
        self, event: BinlogEvent, error: str, attempts: int, *, trace: Any = None
    ) -> DeadLetter:
        letter = DeadLetter(event.lsn, event, error, attempts, trace)
        self._letters[event.lsn] = letter
        return letter

    def lsns(self) -> list[int]:
        return sorted(self._letters)

    def get(self, lsn: int) -> DeadLetter:
        return self._letters[lsn]

    def remove(self, lsn: int) -> DeadLetter:
        return self._letters.pop(lsn)

    def clear(self) -> None:
        self._letters.clear()

    def __len__(self) -> int:
        return len(self._letters)

    def __contains__(self, lsn: int) -> bool:
        return lsn in self._letters

    def __iter__(self) -> Iterator[DeadLetter]:
        return iter(self._letters[lsn] for lsn in self.lsns())


class MemberSyncOutcome:
    """Per-member result of one :meth:`FederationHub.sync` cycle.

    Backwards-compatible with the historical ``dict[str, int]`` return:
    comparisons, ``int()`` and addition all see the number of events (or
    rows) applied, so ``sum(hub.sync().values())`` and
    ``hub.sync()["site0"] > 0`` keep working while the resilience layer
    reports *why* a member applied nothing.

    ``status`` is one of ``applied`` (clean), ``retried`` (applied after
    transient failures), ``quarantined`` (events were dead-lettered this
    cycle), ``circuit_open`` (member skipped, breaker open), ``failed``
    (channel error, breaker notified), or ``idle`` (loose member during a
    live sync — they only move on :meth:`FederationHub.ship_loose`).
    """

    __slots__ = ("member", "status", "applied", "retried", "quarantined", "error")

    def __init__(
        self,
        member: str,
        status: str,
        applied: int = 0,
        *,
        retried: int = 0,
        quarantined: int = 0,
        error: str = "",
    ) -> None:
        self.member = member
        self.status = status
        self.applied = applied
        self.retried = retried
        self.quarantined = quarantined
        self.error = error

    def __int__(self) -> int:
        return self.applied

    def __index__(self) -> int:
        return self.applied

    def __add__(self, other: Any) -> Any:
        return self.applied + other

    __radd__ = __add__

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, MemberSyncOutcome):
            return (
                self.member == other.member
                and self.status == other.status
                and self.applied == other.applied
            )
        if isinstance(other, (int, float)):
            return self.applied == other
        return NotImplemented

    def __lt__(self, other: Any) -> bool:
        return self.applied < other

    def __le__(self, other: Any) -> bool:
        return self.applied <= other

    def __gt__(self, other: Any) -> bool:
        return self.applied > other

    def __ge__(self, other: Any) -> bool:
        return self.applied >= other

    def __hash__(self) -> int:
        return hash((self.member, self.status, self.applied))

    def __repr__(self) -> str:
        extra = ""
        if self.retried:
            extra += f", retried={self.retried}"
        if self.quarantined:
            extra += f", quarantined={self.quarantined}"
        if self.error:
            extra += f", error={self.error!r}"
        return (
            f"MemberSyncOutcome({self.member!r}, {self.status!r}, "
            f"applied={self.applied}{extra})"
        )
