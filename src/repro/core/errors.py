"""Federation-specific exceptions."""

from __future__ import annotations


class FederationError(Exception):
    """Base class for federation failures."""


class VersionMismatchError(FederationError):
    """A satellite runs a different XDMoD version than the federation.

    "The only requirement is that each individual XDMoD instance must run
    the same version of XDMoD."
    """


class MembershipError(FederationError):
    """Joining/leaving the federation failed (duplicate, unknown member)."""


class ReplicationError(FederationError):
    """A replication channel failed to apply events."""


class CircuitOpenError(FederationError):
    """An operation was refused because the member's circuit breaker is
    open (the member failed repeatedly and is cooling down)."""


class ConsistencyError(FederationError):
    """A hub/satellite consistency invariant was violated."""


class IdentityError(FederationError):
    """Identity-mapping configuration is invalid."""
