"""Federation consistency checking.

"The federation hub does not alter the raw, replicated data from the
individual instances" — these checks make that claim falsifiable.  They
verify, for every member:

1. **replication fidelity** — each replicated table's contents checksum
   equals the satellite's (modulo the channel's configured filtering);
2. **metric equivalence** — additive jobs-realm totals (job count, CPU
   hours, XD SUs) on the hub equal the satellite's totals; and federation-
   wide totals equal the sum over members (the fan-in equivalence
   invariant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..warehouse import Schema
from .errors import ConsistencyError
from .federation import FederationHub


@dataclass(frozen=True)
class TableCheck:
    table: str
    satellite_rows: int
    hub_rows: int
    checksums_match: bool

    @property
    def ok(self) -> bool:
        return self.checksums_match and self.satellite_rows == self.hub_rows


@dataclass(frozen=True)
class MemberCheck:
    member: str
    tables: tuple[TableCheck, ...]
    filtered: bool  # channel filters rows; count mismatch may be expected

    @property
    def ok(self) -> bool:
        return all(t.ok for t in self.tables)


def _jobs_totals(schema: Schema) -> dict[str, float]:
    if not schema.has_table("fact_job"):
        return {"n_jobs": 0.0, "cpu_hours": 0.0, "xdsu": 0.0}
    n = 0
    cpu = 0.0
    xdsu = 0.0
    for row in schema.table("fact_job").rows():
        n += 1
        cpu += row["cpu_hours"]
        xdsu += row["xdsu"]
    return {"n_jobs": float(n), "cpu_hours": cpu, "xdsu": xdsu}


def check_member(hub: FederationHub, member_name: str) -> MemberCheck:
    """Table-level fidelity check for one member.

    A member whose schema never replicated (e.g. its first loose shipment
    failed) yields an empty, non-failing check — the monitor reports it
    degraded through lag and circuit state instead of crashing here.
    """
    member = hub.member(member_name)
    satellite = member.instance.schema
    if not hub.database.has_schema(member.fed_schema):
        return MemberCheck(member_name, (), False)
    hub_schema = hub.database.schema(member.fed_schema)
    channel_filter = (
        member.channel.filter
        if member.channel is not None
        else member.loose_channel.filter if member.loose_channel else None
    )
    filtered = bool(
        channel_filter
        and (
            channel_filter.exclude_resources
            or channel_filter.include_resources is not None
        )
    )
    checks: list[TableCheck] = []
    for table_name in hub_schema.table_names():
        if not satellite.has_table(table_name):
            continue
        sat_table = satellite.table(table_name)
        hub_table = hub_schema.table(table_name)
        checks.append(
            TableCheck(
                table=table_name,
                satellite_rows=len(sat_table),
                hub_rows=len(hub_table),
                checksums_match=sat_table.checksum() == hub_table.checksum(),
            )
        )
    return MemberCheck(member_name, tuple(checks), filtered)


@dataclass(frozen=True)
class FederationCheck:
    members: tuple[MemberCheck, ...]
    satellite_totals: Mapping[str, Mapping[str, float]]
    hub_totals: Mapping[str, Mapping[str, float]]

    @property
    def ok(self) -> bool:
        if not all(m.ok for m in self.members if not m.filtered):
            return False
        for name, sat in self.satellite_totals.items():
            hub = self.hub_totals.get(name, {})
            for metric, value in sat.items():
                if abs(hub.get(metric, 0.0) - value) > 1e-6 * max(1.0, abs(value)):
                    return False
        return True

    def federation_totals(self) -> dict[str, float]:
        """Fan-in totals over all members' hub-side data."""
        out: dict[str, float] = {"n_jobs": 0.0, "cpu_hours": 0.0, "xdsu": 0.0}
        for totals in self.hub_totals.values():
            for metric, value in totals.items():
                out[metric] += value
        return out


def check_federation(
    hub: FederationHub, *, strict: bool = False
) -> FederationCheck:
    """Run all consistency checks across the federation.

    With ``strict=True`` a failed unfiltered-member check raises
    :class:`ConsistencyError`.  Members with routing filters are verified
    on totals only when their filters are empty; otherwise their table
    checks are informational (``filtered`` flag set).
    """
    member_checks = []
    satellite_totals: dict[str, dict[str, float]] = {}
    hub_totals: dict[str, dict[str, float]] = {}
    for member in hub.members:
        check = check_member(hub, member.name)
        member_checks.append(check)
        if not hub.database.has_schema(member.fed_schema):
            hub_totals[member.name] = {
                "n_jobs": 0.0, "cpu_hours": 0.0, "xdsu": 0.0,
            }
            continue
        if not check.filtered:
            satellite_totals[member.name] = _jobs_totals(member.instance.schema)
        hub_totals[member.name] = _jobs_totals(
            hub.database.schema(member.fed_schema)
        )
    result = FederationCheck(
        tuple(member_checks), satellite_totals, hub_totals
    )
    if strict and not result.ok:
        failing = [
            f"{m.member}:{t.table}"
            for m in result.members
            if not m.filtered
            for t in m.tables
            if not t.ok
        ]
        raise ConsistencyError(f"federation consistency failed: {failing}")
    return result
