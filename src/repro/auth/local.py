"""Local password authentication.

"Users retain the ability to authenticate directly on the XDMoD instance"
(Figure 4, user group R).  Passwords are salted and stretched with
PBKDF2-HMAC-SHA256 from the standard library; verification is constant-
time.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass

from .accounts import AccountStore, AuthError, Session

PBKDF2_ITERATIONS = 60_000
_SALT_BYTES = 16


@dataclass(frozen=True)
class PasswordRecord:
    salt: bytes
    digest: bytes
    iterations: int


def hash_password(password: str, *, iterations: int = PBKDF2_ITERATIONS) -> PasswordRecord:
    salt = secrets.token_bytes(_SALT_BYTES)
    digest = hashlib.pbkdf2_hmac(
        "sha256", password.encode(), salt, iterations
    )
    return PasswordRecord(salt=salt, digest=digest, iterations=iterations)


def verify_password(password: str, record: PasswordRecord) -> bool:
    candidate = hashlib.pbkdf2_hmac(
        "sha256", password.encode(), record.salt, record.iterations
    )
    return hmac.compare_digest(candidate, record.digest)


class LocalAuthenticator:
    """Password login against one instance's account store."""

    def __init__(self, accounts: AccountStore) -> None:
        self.accounts = accounts
        self._passwords: dict[str, PasswordRecord] = {}

    def set_password(self, username: str, password: str) -> None:
        if not self.accounts.has(username):
            raise AuthError(f"no account {username!r}")
        if len(password) < 8:
            raise AuthError("password must be at least 8 characters")
        self._passwords[username] = hash_password(password)

    def login(self, username: str, password: str) -> Session:
        """Authenticate and open a session; failures are indistinguishable
        (unknown user vs wrong password) to avoid user enumeration."""
        record = self._passwords.get(username)
        if record is None or not verify_password(password, record):
            raise AuthError("invalid credentials")
        return self.accounts.open_session(username, method="local")
