"""SSO provider personalities and per-instance sign-on management.

Section II-D: XSEDE XDMoD uses Globus Auth (users must first link their
Globus account to XSEDE credentials); Open XDMoD at CCR uses Shibboleth
(whose attribute metadata pre-populates user fields); Keycloak and LDAP are
also deployed in the field.  "Presently, an installation can specify only a
single SSO authentication source"; multi-source configuration is the
flexible future-work mode (II-D3), which we implement behind an explicit
flag.  Users can always *also* sign on with their local XDMoD password
(Figures 4 and 5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping

from .accounts import Account, AccountStore, AuthError, Role, Session
from .local import LocalAuthenticator
from .saml import IdentityProvider, SamlAssertion, SamlError, ServiceProvider


class SsoKind(enum.Enum):
    """Identity-provider products the paper names."""

    SHIBBOLETH = "shibboleth"
    GLOBUS = "globus"
    LDAP = "ldap"
    KEYCLOAK = "keycloak"


#: Shibboleth releases rich eduPerson attributes; others are sparser.
_DEFAULT_ATTRIBUTES: dict[SsoKind, tuple[str, ...]] = {
    SsoKind.SHIBBOLETH: (
        "eduPersonPrincipalName", "givenName", "surname", "mail",
        "departmentNumber", "organizationName",
    ),
    SsoKind.GLOBUS: ("identity_id", "mail"),
    SsoKind.LDAP: ("uid", "cn", "mail"),
    SsoKind.KEYCLOAK: ("preferred_username", "email"),
}


@dataclass
class SsoProvider:
    """One configured identity provider (an IdP plus its personality)."""

    kind: SsoKind
    idp: IdentityProvider

    @property
    def name(self) -> str:
        return self.idp.issuer

    def register_user(
        self, subject: str, attributes: Mapping[str, str] | None = None
    ) -> None:
        attrs = dict(attributes or {})
        for key in _DEFAULT_ATTRIBUTES[self.kind]:
            attrs.setdefault(key, "")
        self.idp.register(subject, attrs)


class GlobusLinkage:
    """Globus account linking (XSEDE's prerequisite for SSO).

    "Before they can utilize SSO, XSEDE users must simply link their Globus
    account with their XSEDE credentials."
    """

    def __init__(self) -> None:
        self._links: dict[str, str] = {}  # globus identity -> portal username

    def link(self, globus_identity: str, username: str) -> None:
        self._links[globus_identity] = username

    def resolve(self, globus_identity: str) -> str:
        try:
            return self._links[globus_identity]
        except KeyError:
            raise AuthError(
                f"Globus identity {globus_identity!r} is not linked to a "
                "portal account"
            ) from None


class SsoManager:
    """Sign-on front door for one XDMoD instance.

    Wraps the instance's account store, its local password authenticator,
    and its configured SSO source(s).  ``allow_multiple_sources=False`` is
    the paper's present-day constraint; pass True for the future-work
    multi-IdP configuration (II-D3).
    """

    def __init__(
        self,
        instance: str,
        *,
        allow_multiple_sources: bool = False,
        auto_provision: bool = True,
    ) -> None:
        self.instance = instance
        self.accounts = AccountStore(instance)
        self.local = LocalAuthenticator(self.accounts)
        self.sp = ServiceProvider(audience=instance)
        self.allow_multiple_sources = allow_multiple_sources
        self.auto_provision = auto_provision
        self._providers: dict[str, SsoProvider] = {}
        self.globus_links = GlobusLinkage()

    # -- configuration -----------------------------------------------------

    def configure_sso(self, provider: SsoProvider) -> SsoProvider:
        if self._providers and not self.allow_multiple_sources:
            raise AuthError(
                "an installation can specify only a single SSO source "
                "(enable allow_multiple_sources for the multi-IdP mode)"
            )
        if provider.name in self._providers:
            raise AuthError(f"SSO source {provider.name!r} already configured")
        self._providers[provider.name] = provider
        self.sp.trust(provider.idp)
        return provider

    @property
    def sso_sources(self) -> list[str]:
        return sorted(self._providers)

    # -- sign-on paths -------------------------------------------------------

    def login_local(self, username: str, password: str) -> Session:
        """Figure 4, user group R: direct password sign-on."""
        return self.local.login(username, password)

    def login_sso(self, assertion: SamlAssertion) -> Session:
        """Figure 4, user group S: sign-on with a SAML assertion.

        Validates the assertion, maps the subject to a portal account
        (through Globus linkage when the issuing provider is Globus),
        auto-provisions first-time users, and pre-populates account
        metadata from the released attributes (the Shibboleth nicety the
        paper highlights).
        """
        self.sp.validate(assertion)
        provider = self._providers.get(assertion.issuer)
        if provider is None:  # trusted key but unregistered personality
            raise SamlError(f"no SSO source named {assertion.issuer!r}")

        if provider.kind is SsoKind.GLOBUS:
            username = self.globus_links.resolve(assertion.subject)
        else:
            username = assertion.subject

        if not self.accounts.has(username):
            if not self.auto_provision:
                raise AuthError(f"no account {username!r} and auto-provision off")
            self.accounts.add(Account(username=username, roles={Role.USER}))
        account = self.accounts.get(username)
        # attribute pre-population (first wins; local edits are not clobbered)
        for key, value in assertion.attributes.items():
            account.sso_attributes.setdefault(key, value)
        if not account.full_name:
            given = assertion.attributes.get("givenName", "")
            sur = assertion.attributes.get("surname", "")
            if given or sur:
                account.full_name = f"{given} {sur}".strip()
        if not account.email:
            account.email = assertion.attributes.get(
                "mail", assertion.attributes.get("email", "")
            )
        return self.accounts.open_session(
            username, method=provider.kind.value
        )


def make_provider(
    kind: SsoKind, issuer: str, *, assertion_ttl_s: float = 300.0
) -> SsoProvider:
    """Construct an SSO provider of the given personality."""
    return SsoProvider(
        kind=kind,
        idp=IdentityProvider(issuer, assertion_ttl_s=assertion_ttl_s),
    )


@dataclass
class FederatedAuthConfig:
    """Who authenticates users of a federation (Section II-D3).

    ``mode="service_provider"``: each satellite validates its own users
    (the hub merely trusts member sessions).  ``mode="identity_provider"``:
    "the federation hub can do the job of authenticating users of the
    federation's satellite instances" — the hub runs the IdP and satellites
    trust it.
    """

    mode: str = "service_provider"

    def __post_init__(self) -> None:
        if self.mode not in ("service_provider", "identity_provider"):
            raise AuthError(f"unknown federated auth mode {self.mode!r}")


def hub_as_identity_provider(
    hub_instance: str, satellites: list[SsoManager], *, kind: SsoKind = SsoKind.KEYCLOAK
) -> SsoProvider:
    """Wire the hub-as-IdP topology: one provider trusted by every satellite."""
    provider = make_provider(kind, f"idp.{hub_instance}")
    for satellite in satellites:
        satellite.configure_sso(
            SsoProvider(kind=kind, idp=provider.idp)
        )
    return provider
