"""Authentication: local passwords, mini-SAML SSO, roles and ACLs.

Reproduces the paper's Figures 4-5 flows: users sign onto an SSO-enabled
XDMoD instance with either their local XDMoD password or their SSO
credentials; federations may centralize authentication at the hub
(identity-provider mode) or leave it with satellites (service-provider
mode).
"""

from .accounts import (
    ROLE_CAPABILITIES,
    Account,
    AccountStore,
    AuthError,
    Role,
    Session,
    job_viewer_allowed,
)
from .local import (
    PBKDF2_ITERATIONS,
    LocalAuthenticator,
    PasswordRecord,
    hash_password,
    verify_password,
)
from .saml import (
    IdentityProvider,
    SamlAssertion,
    SamlError,
    ServiceProvider,
)
from .sso import (
    FederatedAuthConfig,
    GlobusLinkage,
    SsoKind,
    SsoManager,
    SsoProvider,
    hub_as_identity_provider,
    make_provider,
)

__all__ = [
    "Account",
    "AccountStore",
    "AuthError",
    "FederatedAuthConfig",
    "GlobusLinkage",
    "IdentityProvider",
    "LocalAuthenticator",
    "PBKDF2_ITERATIONS",
    "PasswordRecord",
    "ROLE_CAPABILITIES",
    "Role",
    "SamlAssertion",
    "SamlError",
    "ServiceProvider",
    "Session",
    "SsoKind",
    "SsoManager",
    "SsoProvider",
    "hash_password",
    "hub_as_identity_provider",
    "job_viewer_allowed",
    "make_provider",
    "verify_password",
]
