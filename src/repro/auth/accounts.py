"""User accounts, roles, and ACLs.

"Users must sign on to XDMoD to use most of its advanced features, to see
their individual job-level performance data, and to access certain
metrics."  Open XDMoD ships role-based ACLs; this module models the roles
that matter for federation scenarios and the capability checks the UI layer
enforces (e.g. only a user, their PI, or center staff may open a job in the
Job Viewer).
"""

from __future__ import annotations

import enum
import secrets
import time
from dataclasses import dataclass, field

class Role(enum.Enum):
    """XDMoD ACL roles (Open XDMoD's acls.json equivalents)."""

    PUBLIC = "pub"
    USER = "usr"
    PI = "pi"
    CENTER_STAFF = "cs"
    CENTER_DIRECTOR = "cd"
    MANAGER = "mgr"


#: Capabilities granted per role.  Higher roles include lower capabilities.
ROLE_CAPABILITIES: dict[Role, frozenset[str]] = {
    Role.PUBLIC: frozenset({"view_public_charts"}),
    Role.USER: frozenset({"view_public_charts", "view_own_jobs", "export_own_data"}),
    Role.PI: frozenset(
        {"view_public_charts", "view_own_jobs", "export_own_data", "view_group_jobs"}
    ),
    Role.CENTER_STAFF: frozenset(
        {
            "view_public_charts", "view_own_jobs", "export_own_data",
            "view_group_jobs", "view_all_jobs", "job_viewer_all",
        }
    ),
    Role.CENTER_DIRECTOR: frozenset(
        {
            "view_public_charts", "view_own_jobs", "export_own_data",
            "view_group_jobs", "view_all_jobs", "job_viewer_all",
            "custom_reports",
        }
    ),
    Role.MANAGER: frozenset(
        {
            "view_public_charts", "view_own_jobs", "export_own_data",
            "view_group_jobs", "view_all_jobs", "job_viewer_all",
            "custom_reports", "administer_instance",
        }
    ),
}


class AuthError(Exception):
    """Authentication or authorization failure."""


@dataclass
class Account:
    """One portal account on one XDMoD instance."""

    username: str
    full_name: str = ""
    email: str = ""
    roles: set[Role] = field(default_factory=lambda: {Role.USER})
    pi: str = ""  # the account's PI group, for view_group_jobs scoping
    #: attributes pre-populated from SSO metadata (Shibboleth etc.)
    sso_attributes: dict[str, str] = field(default_factory=dict)

    def capabilities(self) -> frozenset[str]:
        caps: set[str] = set()
        for role in self.roles:
            caps |= ROLE_CAPABILITIES[role]
        return frozenset(caps)

    def can(self, capability: str) -> bool:
        return capability in self.capabilities()


@dataclass(frozen=True)
class Session:
    """An authenticated session on one instance.

    ``method`` records how the user signed on ("local" or the SSO provider
    kind) — per the paper, either path must yield the same capabilities for
    the same account (tested as invariant 7).
    """

    token: str
    username: str
    instance: str
    method: str
    issued_at: float
    expires_at: float
    capabilities: frozenset[str]

    @property
    def expired(self) -> bool:
        return time.time() >= self.expires_at

    def require(self, capability: str) -> None:
        if self.expired:
            raise AuthError(f"session for {self.username!r} has expired")
        if capability not in self.capabilities:
            raise AuthError(
                f"{self.username!r} lacks capability {capability!r}"
            )


class AccountStore:
    """Account registry for one XDMoD instance."""

    def __init__(self, instance: str) -> None:
        self.instance = instance
        self._accounts: dict[str, Account] = {}

    def add(self, account: Account) -> Account:
        if account.username in self._accounts:
            raise AuthError(f"account {account.username!r} already exists")
        self._accounts[account.username] = account
        return account

    def get(self, username: str) -> Account:
        try:
            return self._accounts[username]
        except KeyError:
            raise AuthError(f"no account {username!r}") from None

    def has(self, username: str) -> bool:
        return username in self._accounts

    def usernames(self) -> list[str]:
        return sorted(self._accounts)

    def ensure(self, username: str, **kwargs) -> Account:
        """Get-or-create, used by SSO first-login provisioning."""
        if username in self._accounts:
            return self._accounts[username]
        return self.add(Account(username=username, **kwargs))

    def open_session(
        self, username: str, method: str, *, ttl_s: float = 8 * 3600.0
    ) -> Session:
        account = self.get(username)
        now = time.time()
        return Session(
            token=secrets.token_hex(16),
            username=username,
            instance=self.instance,
            method=method,
            issued_at=now,
            expires_at=now + ttl_s,
            capabilities=account.capabilities(),
        )


def job_viewer_allowed(
    session: Session, *, job_owner: str, job_pi: str, owner_pi: str = ""
) -> bool:
    """May this session open a given job in the Job Viewer?

    Users see their own jobs; PIs see their group's; staff see all.
    """
    if session.expired:
        return False
    if "job_viewer_all" in session.capabilities:
        return True
    if "view_group_jobs" in session.capabilities and job_pi == session.username:
        return True
    return (
        "view_own_jobs" in session.capabilities
        and job_owner == session.username
    )
