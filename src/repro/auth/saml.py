"""Miniature SAML: signed assertions between IdP and SP.

"We have enabled web-browser Single-Sign On (SSO) for XDMoD by means of
Security Assertion Markup Language (SAML), a common standard for
exchanging user authentication and authorization data on the web."

The real protocol's XML and x509 machinery is replaced by a JSON assertion
signed with HMAC-SHA256 over a canonical serialization.  The security
properties the paper's flows rely on are preserved: an assertion binds a
subject and attribute set to an issuer and an audience with a validity
window; any tampering (subject, attributes, audience, expiry) invalidates
the signature; a service provider accepts assertions only from issuers it
explicitly trusts.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import time
from dataclasses import dataclass, replace
from typing import Any, Mapping

from .accounts import AuthError


class SamlError(AuthError):
    """Assertion validation failure."""


def _canonical(payload: Mapping[str, Any]) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


@dataclass(frozen=True)
class SamlAssertion:
    """One signed authentication statement."""

    subject: str
    issuer: str
    audience: str
    attributes: Mapping[str, str]
    issued_at: float
    expires_at: float
    signature: str = ""

    def payload(self) -> dict[str, Any]:
        return {
            "subject": self.subject,
            "issuer": self.issuer,
            "audience": self.audience,
            "attributes": dict(self.attributes),
            "issued_at": self.issued_at,
            "expires_at": self.expires_at,
        }

    def to_dict(self) -> dict[str, Any]:
        out = self.payload()
        out["signature"] = self.signature
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SamlAssertion":
        return cls(
            subject=data["subject"],
            issuer=data["issuer"],
            audience=data["audience"],
            attributes=dict(data.get("attributes", {})),
            issued_at=float(data["issued_at"]),
            expires_at=float(data["expires_at"]),
            signature=data.get("signature", ""),
        )


class IdentityProvider:
    """Issues signed assertions for its registered principals."""

    def __init__(
        self,
        issuer: str,
        *,
        key: bytes | None = None,
        assertion_ttl_s: float = 300.0,
    ) -> None:
        self.issuer = issuer
        self.key = key if key is not None else hashlib.sha256(issuer.encode()).digest()
        self.assertion_ttl_s = assertion_ttl_s
        #: principal -> attribute statement released on authentication
        self._principals: dict[str, dict[str, str]] = {}

    def register(self, subject: str, attributes: Mapping[str, str] | None = None) -> None:
        self._principals[subject] = dict(attributes or {})

    def knows(self, subject: str) -> bool:
        return subject in self._principals

    def _sign(self, payload: Mapping[str, Any]) -> str:
        return hmac.new(self.key, _canonical(payload), hashlib.sha256).hexdigest()

    def issue(self, subject: str, audience: str, *, now: float | None = None) -> SamlAssertion:
        """Authenticate ``subject`` and issue an assertion for ``audience``."""
        if subject not in self._principals:
            raise SamlError(f"IdP {self.issuer!r} has no principal {subject!r}")
        now = time.time() if now is None else now
        assertion = SamlAssertion(
            subject=subject,
            issuer=self.issuer,
            audience=audience,
            attributes=dict(self._principals[subject]),
            issued_at=now,
            expires_at=now + self.assertion_ttl_s,
        )
        return replace(assertion, signature=self._sign(assertion.payload()))


class ServiceProvider:
    """Validates assertions from explicitly trusted issuers."""

    def __init__(self, audience: str) -> None:
        self.audience = audience
        self._trusted_keys: dict[str, bytes] = {}

    def trust(self, idp: IdentityProvider) -> None:
        self._trusted_keys[idp.issuer] = idp.key

    def trust_key(self, issuer: str, key: bytes) -> None:
        self._trusted_keys[issuer] = key

    @property
    def trusted_issuers(self) -> list[str]:
        return sorted(self._trusted_keys)

    def validate(
        self, assertion: SamlAssertion, *, now: float | None = None
    ) -> SamlAssertion:
        """Full validation: issuer trust, signature, audience, window."""
        key = self._trusted_keys.get(assertion.issuer)
        if key is None:
            raise SamlError(f"untrusted issuer {assertion.issuer!r}")
        expected = hmac.new(
            key, _canonical(assertion.payload()), hashlib.sha256
        ).hexdigest()
        if not hmac.compare_digest(expected, assertion.signature):
            raise SamlError("assertion signature invalid")
        if assertion.audience != self.audience:
            raise SamlError(
                f"assertion audience {assertion.audience!r} is not "
                f"{self.audience!r}"
            )
        now = time.time() if now is None else now
        if not (assertion.issued_at <= now < assertion.expires_at):
            raise SamlError("assertion outside its validity window")
        return assertion
