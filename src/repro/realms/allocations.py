"""The Allocations realm: grants, charges, burn rate.

The paper's Section III notes XDMoD supports "Jobs, Performance, and
Allocations data".  An allocation grants a project a budget of service
units on a resource over a validity window; jobs charge against it in
XD SUs.  This module provides the allocation store, the charge
reconciliation (joining ``fact_job`` to the covering allocation), and an
aggregate-table-backed realm with the metrics resource managers watch:
SUs granted / charged / remaining, and utilization of the grant.

Charges use the standardized XD SU column, so allocations on
differently-provisioned resources are directly comparable — the same
argument Section II-C6 makes for federation metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..timeutil import overlap_seconds, period_label, period_range, period_start
from ..warehouse import ColumnType, Schema, TableSchema, make_columns
from .base import DimensionSpec, Metric, Realm

C = ColumnType

ALLOCATIONS_REALM_TABLES = ("dim_allocation", "fact_allocation_charge")


@dataclass(frozen=True)
class Allocation:
    """One service-unit grant."""

    allocation_id: int
    project: str  # PI username / account the grant belongs to
    resource: str
    su_granted: float
    start_ts: int
    end_ts: int

    def active_at(self, ts: int) -> bool:
        return self.start_ts <= ts < self.end_ts


def allocation_schemas() -> list[TableSchema]:
    return [
        TableSchema(
            "dim_allocation",
            make_columns([
                ("allocation_id", C.INT, False),
                ("project", C.STR, False),
                ("resource", C.STR, False),
                ("su_granted", C.FLOAT, False),
                ("start_ts", C.TIMESTAMP, False),
                ("end_ts", C.TIMESTAMP, False),
            ]),
            primary_key=("allocation_id",),
            indexes=("project",),
        ),
        TableSchema(
            "fact_allocation_charge",
            make_columns([
                ("charge_id", C.INT, False),
                ("allocation_id", C.INT, False),
                ("job_id", C.INT, False),
                ("resource_id", C.INT, False),
                ("project", C.STR, False),
                ("end_ts", C.TIMESTAMP, False),
                ("xdsu_charged", C.FLOAT, False),
            ]),
            primary_key=("charge_id",),
            indexes=("allocation_id",),
        ),
    ]


def create_allocations_realm(schema: Schema) -> None:
    for table_schema in allocation_schemas():
        if not schema.has_table(table_schema.name):
            schema.create_table(table_schema)


def register_allocations(schema: Schema, allocations: Iterable[Allocation]) -> int:
    """Store allocation grants; returns count registered (upsert by id)."""
    create_allocations_realm(schema)
    table = schema.table("dim_allocation")
    n = 0
    for allocation in allocations:
        if allocation.end_ts <= allocation.start_ts:
            raise ValueError(
                f"allocation {allocation.allocation_id}: empty validity window"
            )
        if allocation.su_granted < 0:
            raise ValueError(
                f"allocation {allocation.allocation_id}: negative grant"
            )
        table.upsert(
            {
                "allocation_id": allocation.allocation_id,
                "project": allocation.project,
                "resource": allocation.resource,
                "su_granted": allocation.su_granted,
                "start_ts": allocation.start_ts,
                "end_ts": allocation.end_ts,
            }
        )
        n += 1
    return n


def reconcile_charges(schema: Schema) -> tuple[int, int]:
    """(Re)build ``fact_allocation_charge`` from ``fact_job``.

    A job charges the allocation whose (project == the job's PI, resource,
    window covering the job's end time) matches.  Returns
    ``(charged_jobs, uncovered_jobs)`` — uncovered jobs ran without an
    active allocation, a condition centers audit for.
    """
    create_allocations_realm(schema)
    charges = schema.table("fact_allocation_charge")
    charges.truncate()
    if not schema.has_table("fact_job"):
        return 0, 0

    resource_names = {
        row["resource_id"]: row["name"]
        for row in schema.table("dim_resource").rows()
    }
    pi_names = {
        row["pi_id"]: row["username"] for row in schema.table("dim_pi").rows()
    }
    allocations = [
        Allocation(
            allocation_id=row["allocation_id"],
            project=row["project"],
            resource=row["resource"],
            su_granted=row["su_granted"],
            start_ts=row["start_ts"],
            end_ts=row["end_ts"],
        )
        for row in schema.table("dim_allocation").rows()
    ]
    by_key: dict[tuple[str, str], list[Allocation]] = {}
    for allocation in allocations:
        by_key.setdefault(
            (allocation.project, allocation.resource), []
        ).append(allocation)

    charged = uncovered = 0
    next_id = 1
    for job in schema.table("fact_job").rows():
        project = pi_names.get(job["pi_id"], "")
        resource = resource_names.get(job["resource_id"], "")
        candidates = by_key.get((project, resource), ())
        match = next(
            (a for a in candidates if a.active_at(job["end_ts"])), None
        )
        if match is None:
            uncovered += 1
            continue
        charges.insert(
            {
                "charge_id": next_id,
                "allocation_id": match.allocation_id,
                "job_id": job["job_id"],
                "resource_id": job["resource_id"],
                "project": project,
                "end_ts": job["end_ts"],
                "xdsu_charged": job["xdsu"],
            }
        )
        next_id += 1
        charged += 1
    return charged, uncovered


def agg_allocation_schema(period: str) -> TableSchema:
    return TableSchema(
        f"agg_allocation_{period}",
        make_columns([
            ("period_start", C.TIMESTAMP, False),
            ("period_label", C.STR, False),
            ("allocation_id", C.INT, False),
            ("project", C.STR, False),
            ("resource_id", C.INT, False),
            ("xdsu_charged", C.FLOAT, False),
            ("n_jobs_charged", C.INT, False),
            ("su_granted", C.FLOAT, False),
        ]),
        primary_key=("period_start", "allocation_id"),
        indexes=("period_start",),
    )


def aggregate_allocations(schema: Schema, period: str) -> int:
    """Build ``agg_allocation_<period>`` from the charge facts.

    ``su_granted`` is apportioned across the allocation's validity window
    (pro-rated per period) so utilization-per-period is meaningful.
    """
    name = f"agg_allocation_{period}"
    if schema.has_table(name):
        schema.drop_table(name)
    schema.create_table(agg_allocation_schema(period))
    if not schema.has_table("fact_allocation_charge"):
        return 0
    agg = schema.table(name)
    buckets: dict[tuple[int, int], dict] = {}
    alloc_rows = {
        row["allocation_id"]: row
        for row in schema.table("dim_allocation").rows()
    }
    resource_ids = (
        {
            row["name"]: row["resource_id"]
            for row in schema.table("dim_resource").rows()
        }
        if schema.has_table("dim_resource")
        else {}
    )
    for charge in schema.table("fact_allocation_charge").rows():
        key = (period_start(period, charge["end_ts"]), charge["allocation_id"])
        entry = buckets.setdefault(
            key, {"xdsu": 0.0, "n": 0, "project": charge["project"],
                  "resource_id": charge["resource_id"]}
        )
        entry["xdsu"] += charge["xdsu_charged"]
        entry["n"] += 1
    # pro-rate grants over the allocation windows (even with no charges)
    for allocation_id, row in alloc_rows.items():
        span = row["end_ts"] - row["start_ts"]
        for p_start, p_end in period_range(period, row["start_ts"], row["end_ts"]):
            ov = overlap_seconds(row["start_ts"], row["end_ts"], p_start, p_end)
            if ov <= 0:
                continue
            key = (p_start, allocation_id)
            entry = buckets.setdefault(
                key, {"xdsu": 0.0, "n": 0, "project": row["project"],
                      "resource_id": resource_ids.get(row["resource"], 0)}
            )
            entry["granted"] = row["su_granted"] * ov / span
    for (p_start, allocation_id) in sorted(buckets):
        entry = buckets[(p_start, allocation_id)]
        agg.insert(
            {
                "period_start": p_start,
                "period_label": period_label(period, p_start),
                "allocation_id": allocation_id,
                "project": entry["project"],
                "resource_id": entry["resource_id"],
                "xdsu_charged": entry["xdsu"],
                "n_jobs_charged": entry["n"],
                "su_granted": entry.get("granted", 0.0),
            }
        )
    return len(agg)


ALLOCATIONS_METRICS = (
    Metric("xdsu_charged", "XD SUs Charged", "XD SU", "xdsu_charged"),
    Metric("su_granted", "SUs Granted (pro-rated)", "XD SU", "su_granted"),
    Metric("n_jobs_charged", "Jobs Charged", "jobs", "n_jobs_charged"),
    Metric(
        "grant_utilization", "Allocation Utilization", "fraction",
        "xdsu_charged", denominator="su_granted",
    ),
)

ALLOCATIONS_DIMENSIONS = (
    DimensionSpec("project", "Project", "project"),
    DimensionSpec(
        "resource", "Resource", "resource_id",
        dim_table="dim_resource", dim_key="resource_id", dim_label="name",
    ),
    DimensionSpec("allocation", "Allocation", "allocation_id"),
)


def allocations_realm() -> Realm:
    """Construct the Allocations realm."""
    return Realm(
        "allocations", "agg_allocation",
        ALLOCATIONS_METRICS, ALLOCATIONS_DIMENSIONS,
    )


def allocation_balances(schema: Schema) -> list[dict]:
    """Point-in-time remaining balance per allocation (ops report)."""
    create_allocations_realm(schema)
    charged: dict[int, float] = {}
    for charge in schema.table("fact_allocation_charge").rows():
        charged[charge["allocation_id"]] = (
            charged.get(charge["allocation_id"], 0.0) + charge["xdsu_charged"]
        )
    out = []
    for row in schema.table("dim_allocation").rows():
        used = charged.get(row["allocation_id"], 0.0)
        out.append(
            {
                "allocation_id": row["allocation_id"],
                "project": row["project"],
                "resource": row["resource"],
                "su_granted": row["su_granted"],
                "xdsu_charged": used,
                "remaining": row["su_granted"] - used,
                "overspent": used > row["su_granted"],
            }
        )
    out.sort(key=lambda r: r["allocation_id"])
    return out
