"""Data realms: Jobs, SUPReMM (performance), Storage, and Cloud.

Construct a realm with its factory and query it against one schema (a
single instance) or a mapping of instance-name -> schema (a federation
hub's replicated schemas)::

    realm = jobs_realm()
    result = realm.query(
        hub.federated_schemas(), "xdsu",
        start=t0, end=t1, period="month", group_by="resource",
    )
    result.top(3)   # Figure 1's ranking
"""

from .allocations import (
    ALLOCATIONS_DIMENSIONS,
    ALLOCATIONS_METRICS,
    Allocation,
    aggregate_allocations,
    allocation_balances,
    allocations_realm,
    create_allocations_realm,
    reconcile_charges,
    register_allocations,
)
from .base import (
    DimensionSpec,
    Metric,
    Realm,
    RealmQueryError,
    RealmResult,
    ResultRow,
)
from .cloud import CLOUD_DIMENSIONS, CLOUD_METRICS, cloud_realm
from .jobs import JOBS_DIMENSIONS, JOBS_METRICS, jobs_realm
from .storage import STORAGE_DIMENSIONS, STORAGE_METRICS, storage_realm
from .supremm import SUPREMM_METRIC_NAMES, SupremmQuery, SupremmRealm, supremm_realm

__all__ = [
    "ALLOCATIONS_DIMENSIONS",
    "ALLOCATIONS_METRICS",
    "Allocation",
    "aggregate_allocations",
    "allocation_balances",
    "allocations_realm",
    "create_allocations_realm",
    "reconcile_charges",
    "register_allocations",
    "CLOUD_DIMENSIONS",
    "CLOUD_METRICS",
    "DimensionSpec",
    "JOBS_DIMENSIONS",
    "JOBS_METRICS",
    "Metric",
    "Realm",
    "RealmQueryError",
    "RealmResult",
    "ResultRow",
    "STORAGE_DIMENSIONS",
    "STORAGE_METRICS",
    "SUPREMM_METRIC_NAMES",
    "SupremmQuery",
    "SupremmRealm",
    "cloud_realm",
    "jobs_realm",
    "storage_realm",
    "supremm_realm",
]
