"""The Storage realm (Section III-A, in development in the paper).

"The storage realm will assist centers in tracking storage utilization,
user quota utilization, and eventually, storage performance and metadata
measures as well."  Initial metrics: file count, logical and physical
usage, hard and soft quota thresholds, logical quota utilization, and user
count.  Dimensions: resource (filesystem), mountpoint, resource type,
user, PI, and system username.

Figure 6 charts monthly file count and physical storage usage.
"""

from __future__ import annotations

from .base import DimensionSpec, Metric, Realm

STORAGE_METRICS = (
    Metric("file_count", "File Count", "files", "avg_file_count"),
    Metric("logical_usage_gb", "Logical Usage", "GB", "avg_logical_gb"),
    Metric("physical_usage_gb", "Physical Usage", "GB", "avg_physical_gb"),
    Metric("logical_usage_tb", "Logical Usage", "TB", "avg_logical_gb", scale=1e-3),
    Metric("physical_usage_tb", "Physical Usage", "TB", "avg_physical_gb", scale=1e-3),
    Metric(
        "quota_utilization", "Logical Quota Utilization", "fraction",
        "sum_quota_utilization", denominator="n_quota_samples",
    ),
    Metric("user_count", "User Count", "users", "user_count"),
    Metric("soft_quota_gb", "Soft Quota Threshold", "GB", "avg_soft_quota_gb"),
    Metric("hard_quota_gb", "Hard Quota Threshold", "GB", "avg_hard_quota_gb"),
)

STORAGE_DIMENSIONS = (
    DimensionSpec(
        "resource", "Resource", "resource_id",
        dim_table="dim_resource", dim_key="resource_id", dim_label="name",
    ),
    DimensionSpec("filesystem", "Filesystem", "filesystem"),
    DimensionSpec("resource_type", "Resource Type", "resource_type"),
)


def storage_realm() -> Realm:
    """Construct the Storage realm."""
    return Realm("storage", "agg_storage", STORAGE_METRICS, STORAGE_DIMENSIONS)
