"""The SUPReMM (job performance) realm.

"The SUPReMM realm, meanwhile, contributes metrics describing individual
job-level performance data, such as total memory, CPU usage, memory
bandwidth, I/O bandwidth, block read and block write rates.  These
performance data are collected from system hardware counters, then
aggregated by XDMoD."

Unlike the accounting realms, SUPReMM queries run against the per-job fact
table (``fact_job_perf``) joined to ``fact_job`` — performance averages
are weighted by each job's CPU time, matching XDMoD's core-hour-weighted
statistics.  Note this realm is *not* federated in the initial release
(Section II-C5); :meth:`SupremmRealm.query_federated` implements the
paper's planned subsequent release, answering over hubs whose channels use
:func:`repro.core.supremm_summary_filter` (summaries only — the raw
timeseries never replicate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..simulators.perf import PERF_METRICS
from ..timeutil import period_label, period_start
from ..warehouse import Schema
from .base import RealmQueryError, RealmResult, ResultRow, Metric

#: Chartable SUPReMM statistics: core-hour-weighted averages of the
#: per-job average for each hardware-counter metric.
SUPREMM_METRIC_NAMES = tuple(f"avg_{m}" for m in PERF_METRICS)


@dataclass(frozen=True)
class SupremmQuery:
    """Parameters for one SUPReMM aggregate query."""

    metric: str
    start: int
    end: int
    period: str = "month"
    group_by: str | None = None  # resource | application | person


class SupremmRealm:
    """Fact-level performance queries for one XDMoD instance."""

    name = "supremm"

    def __init__(self) -> None:
        self.metrics = {
            name: Metric(
                name,
                f"Avg {name[4:].replace('_', ' ')} (core-hour weighted)",
                "",
                name,
            )
            for name in SUPREMM_METRIC_NAMES
        }

    def _group_label_map(self, schema: Schema, group_by: str) -> tuple[str, dict]:
        if group_by == "resource":
            return "resource_id", {
                r["resource_id"]: r["name"]
                for r in schema.table("dim_resource").rows()
            }
        if group_by == "application":
            return "app_id", {
                r["app_id"]: r["name"]
                for r in schema.table("dim_application").rows()
            }
        if group_by == "person":
            return "person_id", {
                r["person_id"]: r["username"]
                for r in schema.table("dim_person").rows()
            }
        raise RealmQueryError(f"supremm: unknown dimension {group_by!r}")

    def _accumulate(
        self,
        schema: Schema,
        metric: str,
        acc: dict[tuple[str, int], list[float]],
        *,
        start: int,
        end: int,
        period: str,
        group_by: str | None,
    ) -> None:
        """Fold one schema's weighted sums into ``acc`` (num, den per cell)."""
        if not schema.has_table("fact_job_perf"):
            return
        column = f"{metric[4:]}_avg"  # strip avg_ -> summary column prefix
        # composite-key join: job ids are only unique per resource
        jobs_by_key = {
            (r["resource_id"], r["job_id"]): r
            for r in schema.table("fact_job").rows()
        }
        gcol, labels = (
            self._group_label_map(schema, group_by) if group_by else (None, {})
        )
        for perf in schema.table("fact_job_perf").rows():
            job = jobs_by_key.get((perf["resource_id"], perf["job_id"]))
            if job is None or not (start <= job["end_ts"] < end):
                continue
            weight = job["cpu_hours"] or 0.0
            if weight <= 0:
                continue
            group = str(labels.get(job[gcol], job[gcol])) if gcol else "total"
            p = period_start(period, job["end_ts"])
            entry = acc.setdefault((group, p), [0.0, 0.0])
            entry[0] += perf[column] * weight
            entry[1] += weight

    def _finish(
        self,
        metric: str,
        group_by: str | None,
        period: str,
        acc: dict[tuple[str, int], list[float]],
    ) -> RealmResult:
        result = RealmResult(metric=self.metrics[metric], dimension=group_by)
        for (group, p) in sorted(acc):
            num, den = acc[(group, p)]
            result.rows.append(
                ResultRow(
                    group=group,
                    period_start=p,
                    period_label=period_label(period, p),
                    value=num / den if den else None,
                )
            )
        return result

    def query(
        self,
        schema: Schema,
        metric: str,
        *,
        start: int,
        end: int,
        period: str = "month",
        group_by: str | None = None,
    ) -> RealmResult:
        """Core-hour-weighted average of a per-job performance statistic."""
        if metric not in self.metrics:
            raise RealmQueryError(
                f"supremm: unknown metric {metric!r} "
                f"(have {sorted(self.metrics)})"
            )
        acc: dict[tuple[str, int], list[float]] = {}
        self._accumulate(
            schema, metric, acc,
            start=start, end=end, period=period, group_by=group_by,
        )
        return self._finish(metric, group_by, period, acc)

    def query_federated(
        self,
        sources: Mapping[str, Schema],
        metric: str,
        *,
        start: int,
        end: int,
        period: str = "month",
        group_by: str | None = None,
    ) -> RealmResult:
        """Federation-wide performance statistics (the II-C5 next release).

        Per-schema weighted sums merge their numerators and denominators
        *before* the division, so federation-wide averages remain exactly
        core-hour-weighted — never averages of averages.  Works against
        hubs whose channels use :func:`repro.core.supremm_summary_filter`.
        """
        if metric not in self.metrics:
            raise RealmQueryError(
                f"supremm: unknown metric {metric!r} "
                f"(have {sorted(self.metrics)})"
            )
        acc: dict[tuple[str, int], list[float]] = {}
        for schema in sources.values():
            self._accumulate(
                schema, metric, acc,
                start=start, end=end, period=period, group_by=group_by,
            )
        return self._finish(metric, group_by, period, acc)


    # -- job-level analytics (fact_job_analytics) ----------------------------

    def job_scores(
        self,
        sources: Schema | Mapping[str, Schema],
        *,
        start: int | None = None,
        end: int | None = None,
        application: str | None = None,
        member: str | None = None,
    ) -> list[dict]:
        """Per-job efficiency rows, ranked least efficient first.

        Reads the ``fact_job_analytics`` table the summarization stage
        (:mod:`repro.analytics.summarize`) maintains, joined to
        ``fact_job`` for the time filter.  Against a federated source
        mapping this is the "least efficient jobs federation-wide" view:
        one ranked list across every member, each row carrying the member
        name.  Ties rank deterministically (score, member, resource,
        job id).
        """
        source_map = (
            {"local": sources} if isinstance(sources, Schema) else sources
        )
        rows: list[dict] = []
        for name, schema in sorted(source_map.items()):
            if member is not None and name != member:
                continue
            if not schema.has_table("fact_job_analytics"):
                continue
            jobs_by_key = {
                (r["resource_id"], r["job_id"]): r
                for r in schema.table("fact_job").rows()
            }
            resources = {
                r["resource_id"]: r["name"]
                for r in schema.table("dim_resource").rows()
            }
            for fact in schema.table("fact_job_analytics").rows():
                if application is not None and fact["application"] != application:
                    continue
                job = jobs_by_key.get((fact["resource_id"], fact["job_id"]))
                end_ts = job["end_ts"] if job is not None else None
                if start is not None or end is not None:
                    if end_ts is None:
                        continue
                    if start is not None and end_ts < start:
                        continue
                    if end is not None and end_ts >= end:
                        continue
                rows.append(
                    {
                        "member": name,
                        "resource": resources.get(
                            fact["resource_id"], str(fact["resource_id"])
                        ),
                        "job_id": fact["job_id"],
                        "application": fact["application"],
                        "score": fact["efficiency_score"],
                        "tags": [t for t in fact["tags"].split(",") if t],
                        "end_ts": end_ts,
                        "cpu_user_avg": fact["cpu_user_avg"],
                        "idle_tail_frac": fact["idle_tail_frac"],
                        "intensity_ratio": fact["intensity_ratio"],
                        "n_samples": fact["n_samples"],
                    }
                )
        rows.sort(
            key=lambda r: (r["score"], r["member"], r["resource"], r["job_id"])
        )
        return rows

    def query_efficiency(
        self,
        sources: Schema | Mapping[str, Schema],
        *,
        start: int | None = None,
        end: int | None = None,
        limit: int | None = None,
        application: str | None = None,
        member: str | None = None,
    ) -> list[dict]:
        """The worst-first efficiency ranking (optionally truncated)."""
        rows = self.job_scores(
            sources, start=start, end=end,
            application=application, member=member,
        )
        return rows if limit is None else rows[:limit]


def supremm_realm() -> SupremmRealm:
    """Construct the SUPReMM realm."""
    return SupremmRealm()
