"""The Cloud realm (Section III-B, in development in the paper).

Initial metrics "acknowledge the contrasts with traditional HPC": average
cores per VM; average cores/disk/memory reserved (weighted by wall hours);
core or wall hours total; cores total; number of VMs ended, running, or
started.  Dimensions include instance type, project, resource, user, and
VM size by cores or memory.

Figure 7 charts **average core hours per VM, by VM memory size** with bins
<1 GB, 1-2 GB, 2-4 GB, 4-8 GB.
"""

from __future__ import annotations

from .base import DimensionSpec, Metric, Realm

CLOUD_METRICS = (
    Metric("core_hours", "Core Hours: Total", "core hours", "core_hours"),
    Metric("wall_hours", "Wall Hours: Total", "hours", "wall_hours"),
    Metric("cores_total", "Cores: Total", "cores", "total_cores"),
    Metric("n_vms_started", "Number of VMs Started", "VMs", "n_vms_started"),
    Metric("n_vms_ended", "Number of VMs Ended", "VMs", "n_vms_ended"),
    Metric("n_vms_running", "Number of VMs Running", "VMs", "n_vms_active"),
    Metric(
        "avg_core_hours_per_vm", "Average Core Hours per VM", "core hours",
        "core_hours", denominator="n_vms_active",
    ),
    Metric(
        "avg_cores_per_vm", "Average Cores per VM (weighted by wall hours)",
        "cores", "core_hours", denominator="wall_hours",
    ),
    Metric(
        "avg_wall_hours_per_vm", "Average Wall Hours per VM", "hours",
        "wall_hours", denominator="n_vms_active",
    ),
    Metric(
        "avg_mem_reserved_gb",
        "Average Memory Reserved (weighted by wall hours)", "GB",
        "mem_gb_hours", denominator="wall_hours",
    ),
    Metric(
        "avg_disk_reserved_gb",
        "Average Disk Reserved (weighted by wall hours)", "GB",
        "disk_gb_hours", denominator="wall_hours",
    ),
    # measures the paper lists as "considered for addition in subsequent
    # releases": VM events / state changes and time spent per state
    Metric("n_state_changes", "Count of State Changes", "changes",
           "n_state_changes"),
    Metric("stopped_hours", "Time Spent Stopped", "hours", "stopped_hours"),
    Metric("paused_hours", "Time Spent Paused", "hours", "paused_hours"),
)

CLOUD_DIMENSIONS = (
    DimensionSpec(
        "resource", "Resource", "resource_id",
        dim_table="dim_resource", dim_key="resource_id", dim_label="name",
    ),
    DimensionSpec("project", "Project", "project"),
    DimensionSpec("memory_level", "VM Size: Memory", "memory_level"),
    DimensionSpec("os", "Operating System", "os"),
    DimensionSpec("submission_venue", "Submission Venue", "submission_venue"),
)


def cloud_realm() -> Realm:
    """Construct the Cloud realm."""
    return Realm("cloud", "agg_cloud", CLOUD_METRICS, CLOUD_DIMENSIONS)
