"""The HPC Jobs realm: aggregate usage metrics from accounting data.

"The HPC Jobs realm metrics, describing aggregate usage, consist of
measures that are gleaned largely from job accounting data" — job counts,
CPU hours, wall times, wait times, job sizes, and the standardized XD SU
charge (Figure 1 plots total XD SUs charged per resource).
"""

from __future__ import annotations

from .base import DimensionSpec, Metric, Realm

JOBS_METRICS = (
    Metric("n_jobs_ended", "Number of Jobs Ended", "jobs", "n_jobs_ended"),
    Metric("n_jobs_started", "Number of Jobs Started", "jobs", "n_jobs_started"),
    Metric("cpu_hours", "CPU Hours: Total", "CPU hours", "cpu_hours"),
    Metric("node_hours", "Node Hours: Total", "node hours", "node_hours"),
    Metric("xdsu", "XD SUs Charged: Total", "XD SU", "xdsu"),
    Metric("wall_hours", "Wall Hours: Total", "hours", "wall_hours"),
    Metric(
        "avg_cpu_hours", "CPU Hours: Per Job", "CPU hours",
        "cpu_hours", denominator="n_jobs_ended",
    ),
    Metric(
        "avg_wall_hours", "Wall Hours: Per Job", "hours",
        "wall_hours", denominator="n_jobs_ended",
    ),
    Metric(
        "avg_wait_hours", "Wait Hours: Per Job", "hours",
        "wait_hours", denominator="n_jobs_started",
    ),
    Metric(
        "avg_job_size", "Job Size: Per Job (weighted by wall hours)", "cores",
        "cpu_hours", denominator="wall_hours",
    ),
)

JOBS_DIMENSIONS = (
    DimensionSpec(
        "resource", "Resource", "resource_id",
        dim_table="dim_resource", dim_key="resource_id", dim_label="name",
    ),
    DimensionSpec(
        "person", "User", "person_id",
        dim_table="dim_person", dim_key="person_id", dim_label="username",
        qualify=True,
    ),
    DimensionSpec(
        "pi", "PI", "pi_id",
        dim_table="dim_pi", dim_key="pi_id", dim_label="username",
        qualify=True,
    ),
    DimensionSpec(
        "application", "Application", "app_id",
        dim_table="dim_application", dim_key="app_id", dim_label="name",
    ),
    # institutional hierarchy (Open XDMoD's hierarchy.json) and science
    # field drill-downs resolve through the same star joins
    DimensionSpec(
        "decanal_unit", "Decanal Unit", "person_id",
        dim_table="dim_person", dim_key="person_id", dim_label="decanal_unit",
    ),
    DimensionSpec(
        "department", "Department", "person_id",
        dim_table="dim_person", dim_key="person_id", dim_label="department",
    ),
    DimensionSpec(
        "science_field", "Field of Science", "app_id",
        dim_table="dim_application", dim_key="app_id", dim_label="science_field",
    ),
    DimensionSpec(
        "gateway", "Science Gateway", "person_id",
        dim_table="dim_person", dim_key="person_id", dim_label="gateway_label",
    ),
    DimensionSpec(
        "queue", "Queue", "queue_id",
        dim_table="dim_queue", dim_key="queue_id", dim_label="name",
    ),
    DimensionSpec("walltime_level", "Job Wall Time", "walltime_level"),
    DimensionSpec("jobsize_level", "Job Size (cores)", "jobsize_level"),
)


def jobs_realm() -> Realm:
    """Construct the HPC Jobs realm."""
    return Realm("jobs", "agg_job", JOBS_METRICS, JOBS_DIMENSIONS)
