"""Realm abstractions: metrics, dimensions, and the query engine.

"The metrics collected by XDMoD are assembled into groups called realms,
based on the type of information they measure."  A :class:`Realm` binds a
set of :class:`Metric` definitions (computed from that realm's aggregate
tables) and :class:`DimensionSpec` definitions (the group-by / drill-down
axes).  The same realm object serves a single XDMoD instance (one schema)
or a federation hub (one replicated schema per member): pass multiple
sources and results combine correctly — ratios are combined from summed
numerators/denominators, never averaged averages.

Results come back as a :class:`RealmResult` supporting both of XDMoD's
views: *timeseries* (one value per period per group) and *aggregate* (one
value per group over the whole range).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..core.identity import IdentityMap, qualified_identity
from ..warehouse import Schema


class RealmQueryError(ValueError):
    """A realm query referenced an unknown metric/dimension or bad range."""


@dataclass(frozen=True)
class Metric:
    """One chartable statistic.

    ``numerator`` is the aggregate-table column summed over matching rows;
    a ``denominator`` makes the metric a ratio (sums combined before the
    division, so federation-wide ratios are exact).  ``scale`` converts
    units for display (e.g. GB -> TB).
    """

    name: str
    label: str
    unit: str
    numerator: str
    denominator: str | None = None
    scale: float = 1.0

    def value(self, num: float, den: float) -> float | None:
        if self.denominator is None:
            return num * self.scale
        if den == 0:
            return None
        return (num / den) * self.scale


@dataclass(frozen=True)
class DimensionSpec:
    """One group-by / drill-down axis.

    ``column`` is the aggregate-table column holding the raw group value;
    ``dim_table`` + ``dim_key`` + ``dim_label`` resolve surrogate ids to
    display labels within the *same* schema (star join).  Level dimensions
    (wall-time bins, VM memory bins) carry their label directly.
    ``qualify`` marks person-like dimensions whose labels must be
    namespaced per instance on a federation hub (Section II-D4: without
    identity mapping, the same human appears once per instance).
    """

    name: str
    label: str
    column: str
    dim_table: str | None = None
    dim_key: str | None = None
    dim_label: str | None = None
    qualify: bool = False


@dataclass
class ResultRow:
    """One output cell."""

    group: str
    period_start: int | None
    period_label: str | None
    value: float | None


@dataclass
class RealmResult:
    """Query output with chart-friendly accessors."""

    metric: Metric
    dimension: str | None
    rows: list[ResultRow] = field(default_factory=list)

    def series(self) -> dict[str, list[tuple[str, float | None]]]:
        """group -> ordered [(period_label, value)] — timeseries view."""
        out: dict[str, list[tuple[str, float | None]]] = {}
        ordered = sorted(
            self.rows, key=lambda r: (r.period_start or 0, r.group)
        )
        for row in ordered:
            out.setdefault(row.group, []).append((row.period_label or "", row.value))
        return out

    def totals(self) -> dict[str, float]:
        """group -> summed value (ratio metrics: value over whole range)."""
        out: dict[str, float] = {}
        for row in self.rows:
            if row.value is not None:
                out[row.group] = out.get(row.group, 0.0) + row.value
        return out

    def top(self, n: int) -> list[tuple[str, float]]:
        """Top-n groups by total (how Figure 1 ranks resources)."""
        return sorted(self.totals().items(), key=lambda kv: -kv[1])[:n]

    def groups(self) -> list[str]:
        return sorted({r.group for r in self.rows})


class Realm:
    """A named metric family over one aggregate-table prefix."""

    #: overall group label when no dimension is requested
    TOTAL = "total"

    def __init__(
        self,
        name: str,
        agg_prefix: str,
        metrics: Sequence[Metric],
        dimensions: Sequence[DimensionSpec],
    ) -> None:
        self.name = name
        self.agg_prefix = agg_prefix
        self.metrics: dict[str, Metric] = {m.name: m for m in metrics}
        self.dimensions: dict[str, DimensionSpec] = {d.name: d for d in dimensions}

    # -- catalog -----------------------------------------------------------

    def metric(self, name: str) -> Metric:
        try:
            return self.metrics[name]
        except KeyError:
            raise RealmQueryError(
                f"realm {self.name!r}: unknown metric {name!r} "
                f"(have {sorted(self.metrics)})"
            ) from None

    def dimension(self, name: str) -> DimensionSpec:
        try:
            return self.dimensions[name]
        except KeyError:
            raise RealmQueryError(
                f"realm {self.name!r}: unknown dimension {name!r} "
                f"(have {sorted(self.dimensions)})"
            ) from None

    # -- label resolution ---------------------------------------------------

    def _labeler(
        self,
        spec: DimensionSpec,
        schema: Schema,
        instance: str,
        *,
        many_sources: bool,
        idmap: IdentityMap | None,
    ) -> Callable[[Any], str]:
        if spec.dim_table is None:
            return lambda v: str(v)
        table = schema.table(spec.dim_table)
        mapping = {
            row[spec.dim_key]: row[spec.dim_label] for row in table.rows()
        }
        if spec.qualify and many_sources:
            if idmap is not None:
                return lambda v: idmap.resolve(instance, mapping.get(v, str(v)))
            return lambda v: qualified_identity(instance, mapping.get(v, str(v)))
        return lambda v: str(mapping.get(v, v))

    # -- the query ------------------------------------------------------------

    def query(
        self,
        sources: Schema | Mapping[str, Schema],
        metric: str,
        *,
        start: int,
        end: int,
        period: str = "month",
        group_by: str | None = None,
        filters: Mapping[str, Iterable[str]] | None = None,
        view: str = "timeseries",
        idmap: IdentityMap | None = None,
    ) -> RealmResult:
        """Aggregate-table query across one or many schemas.

        ``filters`` maps dimension name -> allowed labels (XDMoD's filter
        UI).  ``view`` is ``"timeseries"`` (per period) or ``"aggregate"``
        (whole range).
        """
        if end <= start:
            raise RealmQueryError(f"empty time range [{start}, {end})")
        if view not in ("timeseries", "aggregate"):
            raise RealmQueryError(f"unknown view {view!r}")
        m = self.metric(metric)
        gspec = self.dimension(group_by) if group_by else None
        fspecs = {
            name: (self.dimension(name), set(labels))
            for name, labels in (filters or {}).items()
        }
        if isinstance(sources, Schema):
            sources = {"local": sources}
        many = len(sources) > 1
        table_name = f"{self.agg_prefix}_{period}"

        # (group, period) -> [num, den]
        acc: dict[tuple[str, int, str], list[float]] = {}
        for instance, schema in sources.items():
            if not schema.has_table(table_name):
                continue
            glabel = (
                self._labeler(
                    gspec, schema, instance, many_sources=many, idmap=idmap
                )
                if gspec
                else None
            )
            flabelers = {
                name: self._labeler(
                    spec, schema, instance, many_sources=many, idmap=idmap
                )
                for name, (spec, _) in fspecs.items()
            }
            for row in schema.table(table_name).rows():
                if not (start <= row["period_start"] < end):
                    continue
                skip = False
                for name, (spec, allowed) in fspecs.items():
                    if flabelers[name](row[spec.column]) not in allowed:
                        skip = True
                        break
                if skip:
                    continue
                group = glabel(row[gspec.column]) if gspec else self.TOTAL
                if view == "timeseries":
                    key = (group, row["period_start"], row["period_label"])
                else:
                    key = (group, 0, "")
                entry = acc.setdefault(key, [0.0, 0.0])
                entry[0] += row[m.numerator] or 0
                if m.denominator is not None:
                    entry[1] += row[m.denominator] or 0

        result = RealmResult(metric=m, dimension=group_by)
        for (group, p_start, p_label) in sorted(acc):
            num, den = acc[(group, p_start, p_label)]
            result.rows.append(
                ResultRow(
                    group=group,
                    period_start=p_start if view == "timeseries" else None,
                    period_label=p_label if view == "timeseries" else None,
                    value=m.value(num, den),
                )
            )
        return result
