"""Aggregation: period binning + configurable numeric aggregation levels.

See Table I of the paper for the wall-time level sets reproduced in
:mod:`repro.aggregation.levels`, and :mod:`repro.aggregation.engine` for the
nightly pre-binning step that builds the ``agg_*`` tables the UI queries.
The default rebuild paths run on the vectorized columnar builders in
:mod:`repro.aggregation.columnar`; every realm also supports incremental
folds over seen-table bookkeeping.
"""

from .columnar import (
    build_cloud_rows,
    build_job_rows,
    build_storage_rows,
    group_reduce,
)
from .engine import (
    AggregationConfig,
    Aggregator,
    agg_cloud_schema,
    agg_job_schema,
    agg_storage_schema,
)
from .levels import (
    DEFAULT_JOBSIZE_LEVELS,
    DEFAULT_WALLTIME_LEVELS,
    FIG7_VM_MEMORY_LEVELS,
    TABLE1_FEDERATION_HUB,
    TABLE1_INSTANCE_A,
    TABLE1_INSTANCE_B,
    AggregationLevel,
    AggregationLevelSet,
    LevelConfigError,
    merge_level_sets,
)

__all__ = [
    "AggregationConfig",
    "AggregationLevel",
    "AggregationLevelSet",
    "Aggregator",
    "DEFAULT_JOBSIZE_LEVELS",
    "DEFAULT_WALLTIME_LEVELS",
    "FIG7_VM_MEMORY_LEVELS",
    "LevelConfigError",
    "TABLE1_FEDERATION_HUB",
    "TABLE1_INSTANCE_A",
    "TABLE1_INSTANCE_B",
    "agg_cloud_schema",
    "agg_job_schema",
    "agg_storage_schema",
    "build_cloud_rows",
    "build_job_rows",
    "build_storage_rows",
    "group_reduce",
    "merge_level_sets",
]
