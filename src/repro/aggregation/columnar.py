"""Columnar fast path for the aggregation engine.

The nightly aggregation step is the hottest path in the system: at
federation-hub scale every member's raw facts are re-binned for every
period.  The pure-Python builders in :mod:`repro.aggregation.engine` walk
every fact as a dict and bucket in Python; the builders here compute the
same tables from the warehouse's cached columnar views
(:meth:`repro.warehouse.Table.column_array`) with vectorized group-index
reductions (``np.lexsort`` + ``np.add.reduceat``, the pattern
:mod:`repro.warehouse.query` already uses for grouped sums).

Multi-period apportionment is vectorized by expanding each fact into one
row per overlapped period (``np.repeat`` over per-fact period counts) and
reducing the expanded contribution table in one pass.  The pure-Python
implementations remain in the engine as the oracle these builders are
tested against row-for-row.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..timeutil import SECONDS_PER_HOUR, period_bounds, period_label
from ..warehouse import Schema

__all__ = [
    "build_job_rows",
    "build_storage_rows",
    "build_cloud_rows",
    "group_reduce",
]


def group_reduce(
    keys: Sequence[np.ndarray],
    measures: dict[str, np.ndarray],
) -> tuple[list[np.ndarray], dict[str, np.ndarray]]:
    """Grouped sum of ``measures`` over composite integer ``keys``.

    ``keys`` are equal-length int arrays forming the composite group key;
    the result is ``(unique_key_columns, {name: per-group sums})`` with
    groups in lexicographic key order.  This is the ``np.add.reduceat``
    reduction at the heart of every columnar aggregation path.
    """
    n = len(keys[0])
    if n == 0:
        return [k[:0] for k in keys], {m: v[:0] for m, v in measures.items()}
    order = np.lexsort(tuple(reversed(list(keys))))
    sorted_keys = [np.asarray(k)[order] for k in keys]
    boundary = np.zeros(n, dtype=bool)
    boundary[0] = True
    for k in sorted_keys:
        boundary[1:] |= k[1:] != k[:-1]
    starts = np.flatnonzero(boundary)
    uniques = [k[starts] for k in sorted_keys]
    sums = {
        name: np.add.reduceat(np.asarray(v, dtype=np.float64)[order], starts)
        for name, v in measures.items()
    }
    return uniques, sums


def _distinct_count(keys: Sequence[np.ndarray], member: np.ndarray) -> dict[tuple, int]:
    """Count distinct ``member`` values per composite key."""
    uniq, _ = group_reduce(
        list(keys) + [member], {"one": np.ones(len(member))}
    )
    group_cols = uniq[:-1]
    out_keys, sums = group_reduce(group_cols, {"one": np.ones(len(uniq[0]))})
    return {
        tuple(int(c[i]) for c in out_keys): int(sums["one"][i])
        for i in range(len(out_keys[0]))
    }


def _expand_periods(
    start: np.ndarray, end: np.ndarray, bounds: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expand ``[start, end)`` intervals into one row per overlapped period.

    Returns ``(source_idx, period_idx, overlap_seconds)`` — the np.repeat
    expansion that replaces the per-fact ``period_range`` Python loop.
    All intervals must satisfy ``end > start``.
    """
    ps = np.searchsorted(bounds, start, side="right") - 1
    pe = np.searchsorted(bounds, end - 1, side="right") - 1
    counts = pe - ps + 1
    total = int(counts.sum())
    src = np.repeat(np.arange(len(start)), counts)
    first = np.repeat(np.cumsum(counts) - counts, counts)
    period_idx = ps[src] + (np.arange(total) - first)
    overlap = (
        np.minimum(end[src], bounds[period_idx + 1])
        - np.maximum(start[src], bounds[period_idx])
    )
    return src, period_idx, overlap


def _factorize(*object_arrays: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
    """Shared-code-space factorization of several object (string) arrays.

    Returns ``(labels, [code_arrays...])`` where every code indexes into
    one common ``labels`` array.
    """
    lengths = [len(a) for a in object_arrays]
    merged = np.concatenate([a.astype(object) for a in object_arrays])
    labels, inverse = np.unique(merged.astype(str), return_inverse=True)
    codes: list[np.ndarray] = []
    at = 0
    for n in lengths:
        codes.append(inverse[at:at + n].astype(np.int64))
        at += n
    return labels, codes


# -- jobs realm -------------------------------------------------------------


def _count_rows_built(obs: Any, realm: str, period: str, n: int) -> None:
    """Publish one ``aggregation_rows_built_total`` bump per build."""
    if obs is None:
        return
    obs.registry.counter(
        "aggregation_rows_built_total",
        "Aggregate rows produced by the columnar builders",
        ("realm", "period"),
    ).labels(realm=realm, period=period).inc(n)


def build_job_rows(
    schema: Schema, config: Any, period: str, *, obs: Any = None
) -> list[dict[str, Any]]:
    """Vectorized equivalent of ``Aggregator.aggregate_jobs_oracle``."""
    table = schema.table("fact_job")
    if len(table) == 0:
        return []
    c = table.column_arrays([
        "resource_id", "person_id", "pi_id", "app_id", "queue_id",
        "start_ts", "end_ts", "walltime_s", "wait_s", "cores",
        "cpu_hours", "node_hours", "xdsu",
    ])
    start, end = c["start_ts"], c["end_ts"]
    wall = c["walltime_s"].astype(np.float64)
    wl = config.walltime_levels.codes_of(wall)
    sz = config.jobsize_levels.codes_of(c["cores"])
    dims = [c["resource_id"], c["person_id"], c["pi_id"], c["app_id"], c["queue_id"], wl, sz]

    lo = int(min(start.min(), end.min()))
    hi = int(max(start.max(), end.max()))
    bounds = np.asarray(period_bounds(period, lo, hi), dtype=np.int64)

    def p_of(t: np.ndarray) -> np.ndarray:
        return np.searchsorted(bounds, t, side="right") - 1

    measure_names = (
        "n_jobs_ended", "n_jobs_started", "cpu_hours", "node_hours",
        "xdsu", "wall_hours", "wait_hours",
    )
    key_chunks: list[list[np.ndarray]] = []
    measure_chunks: list[dict[str, np.ndarray]] = []

    def contribute(p: np.ndarray, dim_arrays: list[np.ndarray], **values: np.ndarray) -> None:
        n = len(p)
        zeros = np.zeros(n)
        key_chunks.append([p] + dim_arrays)
        measure_chunks.append({m: values.get(m, zeros) for m in measure_names})

    n = len(start)
    ones = np.ones(n)
    # counts: end / start attribution
    contribute(p_of(end), dims, n_jobs_ended=ones)
    contribute(
        p_of(start), dims,
        n_jobs_started=ones, wait_hours=c["wait_s"] / SECONDS_PER_HOUR,
    )
    # usage: apportion across overlapped periods
    spanned = (wall > 0) & (end > start)
    if spanned.any():
        idx = np.flatnonzero(spanned)
        src, p, overlap = _expand_periods(start[idx], end[idx], bounds)
        frac = overlap / wall[idx][src]
        contribute(
            p, [d[idx][src] for d in dims],
            cpu_hours=c["cpu_hours"][idx][src] * frac,
            node_hours=c["node_hours"][idx][src] * frac,
            xdsu=c["xdsu"][idx][src] * frac,
            wall_hours=overlap / SECONDS_PER_HOUR,
        )
    # zero-length jobs: full usage attributes to the end period
    if not spanned.all():
        idx = np.flatnonzero(~spanned)
        contribute(
            p_of(end[idx]), [d[idx] for d in dims],
            cpu_hours=c["cpu_hours"][idx],
            node_hours=c["node_hours"][idx],
            xdsu=c["xdsu"][idx],
            wall_hours=wall[idx] / SECONDS_PER_HOUR,
        )

    keys = [np.concatenate([chunk[i] for chunk in key_chunks])
            for i in range(len(key_chunks[0]))]
    measures = {m: np.concatenate([chunk[m] for chunk in measure_chunks])
                for m in measure_names}
    uniq, sums = group_reduce(keys, measures)

    wl_labels = config.walltime_levels.coded_labels
    sz_labels = config.jobsize_levels.coded_labels
    rows: list[dict[str, Any]] = []
    for i in range(len(uniq[0])):
        p_start = int(bounds[uniq[0][i]])
        rows.append({
            "period_start": p_start,
            "period_label": period_label(period, p_start),
            "resource_id": int(uniq[1][i]),
            "person_id": int(uniq[2][i]),
            "pi_id": int(uniq[3][i]),
            "app_id": int(uniq[4][i]),
            "queue_id": int(uniq[5][i]),
            "walltime_level": wl_labels[int(uniq[6][i])],
            "jobsize_level": sz_labels[int(uniq[7][i])],
            "n_jobs_ended": int(round(sums["n_jobs_ended"][i])),
            "n_jobs_started": int(round(sums["n_jobs_started"][i])),
            "cpu_hours": float(sums["cpu_hours"][i]),
            "node_hours": float(sums["node_hours"][i]),
            "xdsu": float(sums["xdsu"][i]),
            "wall_hours": float(sums["wall_hours"][i]),
            "wait_hours": float(sums["wait_hours"][i]),
        })
    rows.sort(key=_job_row_key)
    _count_rows_built(obs, "jobs", period, len(rows))
    return rows


def _job_row_key(row: dict[str, Any]) -> tuple:
    """The oracle's bucket ordering (labels sort as strings)."""
    return (
        row["period_start"], row["resource_id"], row["person_id"],
        row["pi_id"], row["app_id"], row["queue_id"],
        row["walltime_level"], row["jobsize_level"],
    )


# -- storage realm ----------------------------------------------------------


def build_storage_rows(
    schema: Schema, period: str, *, obs: Any = None
) -> list[dict[str, Any]]:
    """Vectorized equivalent of ``Aggregator.aggregate_storage_oracle``."""
    table = schema.table("fact_storage")
    if len(table) == 0:
        return []
    c = table.column_arrays([
        "ts", "resource_id", "filesystem", "resource_type", "person_id",
        "file_count", "logical_usage_gb", "physical_usage_gb",
        "soft_quota_gb", "hard_quota_gb",
    ])
    ts_, rid = c["ts"], c["resource_id"]
    fs_labels, (fs,) = _factorize(c["filesystem"])
    soft = np.asarray(c["soft_quota_gb"], dtype=np.float64)
    hard = np.asarray(c["hard_quota_gb"], dtype=np.float64)
    has_quota = ~np.isnan(soft)
    logical = np.asarray(c["logical_usage_gb"], dtype=np.float64)
    quota_util = np.zeros(len(soft))
    positive = has_quota & (soft > 0)
    quota_util[positive] = logical[positive] / soft[positive]

    bounds = np.asarray(
        period_bounds(period, int(ts_.min()), int(ts_.max())), dtype=np.int64
    )
    p_all = np.searchsorted(bounds, ts_, side="right") - 1

    # last-snapshot-wins resource_type per (resource, filesystem), matching
    # the oracle's meta dict
    meta: dict[tuple[int, int], Any] = {}
    for r, f, t in zip(rid.tolist(), fs.tolist(), c["resource_type"].tolist()):
        meta[(int(r), int(f))] = t

    # stage 1: collapse per-timestamp totals across users
    ts_keys, ts_sums = group_reduce(
        [ts_, rid, fs],
        {
            "file_count": c["file_count"].astype(np.float64),
            "logical_gb": logical,
            "physical_gb": np.asarray(c["physical_usage_gb"], dtype=np.float64),
            "quota_util": quota_util,
            "quota_n": has_quota.astype(np.float64),
            "soft_quota_gb": np.where(has_quota, soft, 0.0),
            "hard_quota_gb": np.where(np.isnan(hard), 0.0, hard),
        },
    )
    # stage 2: average the per-timestamp totals within each period
    p_ts = np.searchsorted(bounds, ts_keys[0], side="right") - 1
    n_ts = len(ts_keys[0])
    period_keys, period_sums = group_reduce(
        [p_ts, ts_keys[1], ts_keys[2]],
        {**ts_sums, "n_snapshots": np.ones(n_ts)},
    )
    user_counts = _distinct_count([p_all, rid, fs], c["person_id"])

    rows: list[dict[str, Any]] = []
    for i in range(len(period_keys[0])):
        p_start = int(bounds[period_keys[0][i]])
        r = int(period_keys[1][i])
        f = int(period_keys[2][i])
        n = period_sums["n_snapshots"][i]
        rows.append({
            "period_start": p_start,
            "period_label": period_label(period, p_start),
            "resource_id": r,
            "filesystem": str(fs_labels[f]),
            "resource_type": meta[(r, f)],
            "avg_file_count": float(period_sums["file_count"][i] / n),
            "avg_logical_gb": float(period_sums["logical_gb"][i] / n),
            "avg_physical_gb": float(period_sums["physical_gb"][i] / n),
            "sum_quota_utilization": float(period_sums["quota_util"][i]),
            "n_quota_samples": int(round(period_sums["quota_n"][i])),
            "avg_soft_quota_gb": float(period_sums["soft_quota_gb"][i] / n),
            "avg_hard_quota_gb": float(period_sums["hard_quota_gb"][i] / n),
            "user_count": user_counts[(int(period_keys[0][i]), r, f)],
            "n_snapshots": int(round(n)),
        })
    rows.sort(key=lambda r: (r["period_start"], r["resource_id"], r["filesystem"]))
    _count_rows_built(obs, "storage", period, len(rows))
    return rows


# -- cloud realm ------------------------------------------------------------


def build_cloud_rows(
    schema: Schema, config: Any, period: str, *, obs: Any = None
) -> list[dict[str, Any]]:
    """Vectorized equivalent of ``Aggregator.aggregate_cloud_oracle``."""
    iv_table = schema.table("fact_vm_interval")
    vm_table = schema.table("fact_vm") if schema.has_table("fact_vm") else None
    n_iv = len(iv_table)
    n_vm = len(vm_table) if vm_table is not None else 0
    if n_iv == 0 and n_vm == 0:
        return []
    levels = config.vm_memory_levels

    iv = iv_table.column_arrays([
        "resource_id", "vm_id", "project", "os", "submission_venue",
        "state", "start_ts", "end_ts", "vcpus", "mem_gb", "disk_gb",
    ]) if n_iv else None
    vm = vm_table.column_arrays([
        "resource_id", "project", "os", "submission_venue",
        "provision_ts", "terminate_ts", "last_vcpus", "last_mem_gb",
        "n_state_changes",
    ]) if n_vm else None

    empty = np.empty(0, dtype=object)
    proj_labels, (iv_proj, vm_proj) = _factorize(
        iv["project"] if iv else empty, vm["project"] if vm else empty)
    os_labels, (iv_os, vm_os) = _factorize(
        iv["os"] if iv else empty, vm["os"] if vm else empty)
    venue_labels, (iv_venue, vm_venue) = _factorize(
        iv["submission_venue"] if iv else empty,
        vm["submission_venue"] if vm else empty)
    iv_mem = levels.codes_of(iv["mem_gb"]) if iv else np.empty(0, dtype=np.int64)
    vm_mem = levels.codes_of(vm["last_mem_gb"]) if vm else np.empty(0, dtype=np.int64)

    ts_candidates: list[int] = []
    if iv is not None:
        ts_candidates += [int(iv["start_ts"].min()), int(iv["end_ts"].max())]
    if vm is not None:
        prov = vm["provision_ts"]
        ts_candidates += [int(prov.min()), int(prov.max())]
        term = np.asarray(vm["terminate_ts"], dtype=np.float64)
        live = term[~np.isnan(term)]
        if len(live):
            ts_candidates += [int(live.min()), int(live.max())]
    bounds = np.asarray(
        period_bounds(period, min(ts_candidates), max(ts_candidates)),
        dtype=np.int64,
    )

    def p_of(t: np.ndarray) -> np.ndarray:
        return np.searchsorted(bounds, t, side="right") - 1

    measure_names = (
        "core_hours", "wall_hours", "mem_gb_hours", "disk_gb_hours",
        "stopped_hours", "paused_hours", "n_state_changes",
        "n_vms_started", "n_vms_ended", "total_cores",
    )
    key_chunks: list[list[np.ndarray]] = []
    measure_chunks: list[dict[str, np.ndarray]] = []

    def contribute(p, dim_arrays, **values):
        zeros = np.zeros(len(p))
        key_chunks.append([p] + list(dim_arrays))
        measure_chunks.append({m: values.get(m, zeros) for m in measure_names})

    active_keys: list[np.ndarray] = []  # columns: p, rid, proj, os, venue, mem, vm_id

    if iv is not None:
        iv_dims = [iv["resource_id"], iv_proj, iv_os, iv_venue, iv_mem]
        start, end = iv["start_ts"], iv["end_ts"]
        state = iv["state"]
        spanned = end > start
        if spanned.any():
            idx = np.flatnonzero(spanned)
            src, p, overlap = _expand_periods(start[idx], end[idx], bounds)
            hours = overlap / SECONDS_PER_HOUR
            st = state[idx][src]
            running = st == "running"
            stopped = st == "stopped"
            paused = ~running & ~stopped
            vcpus = iv["vcpus"][idx][src].astype(np.float64)
            mem_gb = np.asarray(iv["mem_gb"][idx][src], dtype=np.float64)
            disk_gb = np.asarray(iv["disk_gb"][idx][src], dtype=np.float64)
            dim_exp = [d[idx][src] for d in iv_dims]
            contribute(
                p, dim_exp,
                core_hours=np.where(running, vcpus * hours, 0.0),
                wall_hours=np.where(running, hours, 0.0),
                mem_gb_hours=np.where(running, mem_gb * hours, 0.0),
                disk_gb_hours=np.where(running, disk_gb * hours, 0.0),
                stopped_hours=np.where(stopped, hours, 0.0),
                paused_hours=np.where(paused, hours, 0.0),
            )
            if running.any():
                r = np.flatnonzero(running)
                active_keys.append(np.stack(
                    [p[r]] + [d[r] for d in dim_exp]
                    + [iv["vm_id"][idx][src][r]]
                ))
        # zero-length running intervals: the VM was active in the period
        # containing start_ts even though it accrued no hours
        instant = (end == start) & (state == "running")
        if instant.any():
            idx = np.flatnonzero(instant)
            p = p_of(start[idx])
            dim_z = [d[idx] for d in iv_dims]
            contribute(p, dim_z)  # all-zero measures: materialize the group
            active_keys.append(np.stack([p] + dim_z + [iv["vm_id"][idx]]))

    if vm is not None:
        vm_dims = [vm["resource_id"], vm_proj, vm_os, vm_venue, vm_mem]
        ones = np.ones(n_vm)
        contribute(
            p_of(vm["provision_ts"]), vm_dims,
            n_vms_started=ones,
            total_cores=vm["last_vcpus"].astype(np.float64),
            n_state_changes=vm["n_state_changes"].astype(np.float64),
        )
        term = np.asarray(vm["terminate_ts"], dtype=np.float64)
        ended = ~np.isnan(term)
        if ended.any():
            idx = np.flatnonzero(ended)
            contribute(
                p_of(term[idx].astype(np.int64)),
                [d[idx] for d in vm_dims],
                n_vms_ended=np.ones(len(idx)),
            )

    if not key_chunks:
        return []
    keys = [np.concatenate([chunk[i] for chunk in key_chunks])
            for i in range(len(key_chunks[0]))]
    measures = {m: np.concatenate([chunk[m] for chunk in measure_chunks])
                for m in measure_names}
    uniq, sums = group_reduce(keys, measures)

    active_counts: dict[tuple, int] = {}
    if active_keys:
        merged = np.concatenate(active_keys, axis=1).astype(np.int64)
        active_counts = _distinct_count(list(merged[:-1]), merged[-1])

    mem_labels = levels.coded_labels
    rows: list[dict[str, Any]] = []
    for i in range(len(uniq[0])):
        p_start = int(bounds[uniq[0][i]])
        key = tuple(int(uniq[k][i]) for k in range(6))
        rows.append({
            "period_start": p_start,
            "period_label": period_label(period, p_start),
            "resource_id": key[1],
            "project": str(proj_labels[key[2]]),
            "os": str(os_labels[key[3]]),
            "submission_venue": str(venue_labels[key[4]]),
            "memory_level": mem_labels[key[5]],
            "core_hours": float(sums["core_hours"][i]),
            "wall_hours": float(sums["wall_hours"][i]),
            "mem_gb_hours": float(sums["mem_gb_hours"][i]),
            "disk_gb_hours": float(sums["disk_gb_hours"][i]),
            "stopped_hours": float(sums["stopped_hours"][i]),
            "paused_hours": float(sums["paused_hours"][i]),
            "n_state_changes": int(round(sums["n_state_changes"][i])),
            "n_vms_active": active_counts.get(key, 0),
            "n_vms_started": int(round(sums["n_vms_started"][i])),
            "n_vms_ended": int(round(sums["n_vms_ended"][i])),
            "total_cores": float(sums["total_cores"][i]),
        })
    rows.sort(key=lambda r: (
        r["period_start"], r["resource_id"], r["project"], r["os"],
        r["submission_venue"], r["memory_level"],
    ))
    _count_rows_built(obs, "cloud", period, len(rows))
    return rows
