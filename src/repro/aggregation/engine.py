"""Aggregate-table builder: XDMoD's nightly pre-binning step.

"Every day, aggregation processes run against newly ingested data in the
XDMoD data warehouse, binning numeric data in aggregation tables.  XDMoD
can then use these tables to group metrics by appropriately-sized
dimensions."

For each period (day/month/quarter/year) the engine builds:

- ``agg_job_<period>`` from ``fact_job`` — grouped by period x resource x
  person x PI x application x queue x wall-time level x job-size level,
  with additive measures.  Usage measures (CPU hours, node hours, XD SUs,
  wall hours) are *apportioned* across the periods a job overlaps, so
  period totals conserve the raw totals exactly; zero-length jobs
  (``walltime_s == 0`` or ``end_ts == start_ts``) attribute their full
  usage to the period they ended in.  Job counts attribute to the period
  the job ended in (XDMoD's "jobs ended" convention), and wait time to
  the period the job started in.
- ``agg_storage_<period>`` from ``fact_storage`` — per-timestamp totals
  averaged within the period (storage metrics are point-in-time gauges,
  not additive).  A ``NULL`` soft quota means "no quota configured" and
  is excluded from ``n_quota_samples``; an explicit ``0.0`` quota is a
  real sample.
- ``agg_cloud_<period>`` from ``fact_vm`` / ``fact_vm_interval`` — running
  core-hours apportioned by overlap, binned by the VM-memory level set
  (Figure 7), plus VM started/ended/active counts.  A running interval
  with ``start_ts == end_ts`` accrues no hours but still counts its VM
  toward ``n_vms_active`` in the period containing ``start_ts``.

The default ``aggregate_jobs`` / ``aggregate_storage`` / ``aggregate_cloud``
rebuilds run on the columnar fast path (:mod:`repro.aggregation.columnar`,
NumPy group-index reductions over the warehouse's cached column arrays).
The original pure-Python builders remain as ``aggregate_*_oracle`` — the
reference implementations the fast paths are tested against row-for-row.

Every realm also has an incremental mode (``aggregate_*_incremental``)
that folds only newly ingested facts into the existing aggregates using
seen-table bookkeeping; this is what lets a federation hub fold in each
member's delta instead of rebuilding every realm for every period.

Re-aggregation (the Table I scenario: hub levels change when a new
satellite joins) drops and rebuilds; raw tables are never modified.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Sequence

from ..timeutil import (
    SECONDS_PER_HOUR,
    overlap_seconds,
    period_label,
    period_range,
    period_start,
)
from ..warehouse import ColumnType, Schema, TableSchema, make_columns
from .columnar import build_cloud_rows, build_job_rows, build_storage_rows
from .levels import (
    DEFAULT_JOBSIZE_LEVELS,
    DEFAULT_WALLTIME_LEVELS,
    FIG7_VM_MEMORY_LEVELS,
    AggregationLevelSet,
)

C = ColumnType


@dataclass(frozen=True)
class AggregationConfig:
    """Per-instance aggregation settings (the JSON-managed knobs)."""

    walltime_levels: AggregationLevelSet = DEFAULT_WALLTIME_LEVELS
    jobsize_levels: AggregationLevelSet = DEFAULT_JOBSIZE_LEVELS
    vm_memory_levels: AggregationLevelSet = FIG7_VM_MEMORY_LEVELS
    periods: tuple[str, ...] = ("day", "month", "quarter", "year")


def agg_job_schema(period: str) -> TableSchema:
    return TableSchema(
        f"agg_job_{period}",
        make_columns([
            ("period_start", C.TIMESTAMP, False),
            ("period_label", C.STR, False),
            ("resource_id", C.INT, False),
            ("person_id", C.INT, False),
            ("pi_id", C.INT, False),
            ("app_id", C.INT, False),
            ("queue_id", C.INT, False),
            ("walltime_level", C.STR, False),
            ("jobsize_level", C.STR, False),
            ("n_jobs_ended", C.INT, False),
            ("n_jobs_started", C.INT, False),
            ("cpu_hours", C.FLOAT, False),
            ("node_hours", C.FLOAT, False),
            ("xdsu", C.FLOAT, False),
            ("wall_hours", C.FLOAT, False),
            ("wait_hours", C.FLOAT, False),
        ]),
        primary_key=(
            "period_start", "resource_id", "person_id", "pi_id",
            "app_id", "queue_id", "walltime_level", "jobsize_level",
        ),
        indexes=("period_start", "resource_id"),
    )


def agg_storage_schema(period: str) -> TableSchema:
    return TableSchema(
        f"agg_storage_{period}",
        make_columns([
            ("period_start", C.TIMESTAMP, False),
            ("period_label", C.STR, False),
            ("resource_id", C.INT, False),
            ("filesystem", C.STR, False),
            ("resource_type", C.STR, False),
            ("avg_file_count", C.FLOAT, False),
            ("avg_logical_gb", C.FLOAT, False),
            ("avg_physical_gb", C.FLOAT, False),
            ("sum_quota_utilization", C.FLOAT, False),
            ("n_quota_samples", C.INT, False),
            ("avg_soft_quota_gb", C.FLOAT, False),
            ("avg_hard_quota_gb", C.FLOAT, False),
            ("user_count", C.INT, False),
            ("n_snapshots", C.INT, False),
        ]),
        primary_key=("period_start", "resource_id", "filesystem"),
        indexes=("period_start",),
    )


def agg_cloud_schema(period: str) -> TableSchema:
    return TableSchema(
        f"agg_cloud_{period}",
        make_columns([
            ("period_start", C.TIMESTAMP, False),
            ("period_label", C.STR, False),
            ("resource_id", C.INT, False),
            ("project", C.STR, False),
            ("os", C.STR, False),
            ("submission_venue", C.STR, False),
            ("memory_level", C.STR, False),
            ("core_hours", C.FLOAT, False),
            ("wall_hours", C.FLOAT, False),
            ("mem_gb_hours", C.FLOAT, False),
            ("disk_gb_hours", C.FLOAT, False),
            ("stopped_hours", C.FLOAT, False),
            ("paused_hours", C.FLOAT, False),
            ("n_state_changes", C.INT, False),
            ("n_vms_active", C.INT, False),
            ("n_vms_started", C.INT, False),
            ("n_vms_ended", C.INT, False),
            ("total_cores", C.FLOAT, False),
        ]),
        primary_key=(
            "period_start", "resource_id", "project", "os",
            "submission_venue", "memory_level",
        ),
        indexes=("period_start",),
    )


# -- incremental bookkeeping tables ------------------------------------------


def job_seen_schema(period: str) -> TableSchema:
    return TableSchema(
        f"agg_seen_job_{period}",
        make_columns([
            ("resource_id", C.INT, False),
            ("job_id", C.INT, False),
        ]),
        primary_key=("resource_id", "job_id"),
    )


def storage_seen_schema(period: str) -> TableSchema:
    return TableSchema(
        f"agg_seen_storage_{period}",
        make_columns([("snapshot_id", C.INT, False)]),
        primary_key=("snapshot_id",),
    )


def storage_state_schema(period: str) -> TableSchema:
    """Running sums per group; the agg row is derived from this exactly."""
    return TableSchema(
        f"agg_state_storage_{period}",
        make_columns([
            ("period_start", C.TIMESTAMP, False),
            ("resource_id", C.INT, False),
            ("filesystem", C.STR, False),
            ("resource_type", C.STR, False),
            ("sum_file_count", C.FLOAT, False),
            ("sum_logical_gb", C.FLOAT, False),
            ("sum_physical_gb", C.FLOAT, False),
            ("sum_soft_quota_gb", C.FLOAT, False),
            ("sum_hard_quota_gb", C.FLOAT, False),
            ("sum_quota_utilization", C.FLOAT, False),
            ("n_quota_samples", C.INT, False),
            ("n_timestamps", C.INT, False),
            ("n_users", C.INT, False),
        ]),
        primary_key=("period_start", "resource_id", "filesystem"),
    )


def storage_seen_ts_schema(period: str) -> TableSchema:
    return TableSchema(
        f"agg_seen_storage_ts_{period}",
        make_columns([
            ("period_start", C.TIMESTAMP, False),
            ("resource_id", C.INT, False),
            ("filesystem", C.STR, False),
            ("ts", C.TIMESTAMP, False),
        ]),
        primary_key=("period_start", "resource_id", "filesystem", "ts"),
    )


def storage_seen_user_schema(period: str) -> TableSchema:
    return TableSchema(
        f"agg_seen_storage_user_{period}",
        make_columns([
            ("period_start", C.TIMESTAMP, False),
            ("resource_id", C.INT, False),
            ("filesystem", C.STR, False),
            ("person_id", C.INT, False),
        ]),
        primary_key=("period_start", "resource_id", "filesystem", "person_id"),
    )


def cloud_seen_interval_schema(period: str) -> TableSchema:
    return TableSchema(
        f"agg_seen_cloud_interval_{period}",
        make_columns([("interval_id", C.INT, False)]),
        primary_key=("interval_id",),
    )


def cloud_seen_vm_schema(period: str) -> TableSchema:
    return TableSchema(
        f"agg_seen_cloud_vm_{period}",
        make_columns([
            ("resource_id", C.INT, False),
            ("vm_id", C.INT, False),
        ]),
        primary_key=("resource_id", "vm_id"),
    )


def cloud_active_vm_schema(period: str) -> TableSchema:
    """Distinct (group, vm) memberships behind ``n_vms_active``."""
    return TableSchema(
        f"agg_active_vm_{period}",
        make_columns([
            ("period_start", C.TIMESTAMP, False),
            ("resource_id", C.INT, False),
            ("project", C.STR, False),
            ("os", C.STR, False),
            ("submission_venue", C.STR, False),
            ("memory_level", C.STR, False),
            ("vm_id", C.INT, False),
        ]),
        primary_key=(
            "period_start", "resource_id", "project", "os",
            "submission_venue", "memory_level", "vm_id",
        ),
    )


def _replace_table(schema: Schema, table_schema: TableSchema) -> None:
    if schema.has_table(table_schema.name):
        schema.drop_table(table_schema.name)
    schema.create_table(table_schema)


def _observed(realm: str, mode: str):
    """Wrap one aggregation entry point with telemetry.

    Publishes a span, an ``aggregation_build_seconds`` observation, and
    an ``aggregation_rows_total`` bump per call (batch-level: one
    histogram sample per build, never per row).  A plain pass-through
    when the aggregator has no telemetry bundle.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(self, period: str) -> int:
            obs = self.obs
            if obs is None:
                return fn(self, period)
            registry = obs.registry
            start = obs.clock.now()
            with obs.tracer.span(
                f"aggregate_{realm}", realm=realm, mode=mode, period=period
            ):
                rows = fn(self, period)
            registry.histogram(
                "aggregation_build_seconds",
                "Wall time of one aggregation build",
                ("realm", "mode"),
            ).labels(realm=realm, mode=mode).observe(obs.clock.now() - start)
            registry.counter(
                "aggregation_rows_total",
                "Rows written (full) or facts folded (incremental) per build",
                ("realm", "mode"),
            ).labels(realm=realm, mode=mode).inc(rows)
            return rows

        return wrapper

    return decorate


class Aggregator:
    """Runs the aggregation step against one warehouse schema."""

    def __init__(
        self,
        schema: Schema,
        config: AggregationConfig | None = None,
        *,
        obs=None,
    ) -> None:
        self.schema = schema
        self.config = config or AggregationConfig()
        self.obs = obs

    # -- jobs realm -------------------------------------------------------

    @_observed("jobs", "full")
    def aggregate_jobs(self, period: str) -> int:
        """(Re)build ``agg_job_<period>``; returns rows written.

        Runs on the columnar fast path; :meth:`aggregate_jobs_oracle` is
        the pure-Python reference it is tested against row-for-row.
        """
        _replace_table(self.schema, agg_job_schema(period))
        self._resync_job_bookkeeping(period)
        if not self.schema.has_table("fact_job"):
            return 0
        agg = self.schema.table(f"agg_job_{period}")
        for row in build_job_rows(self.schema, self.config, period, obs=self.obs):
            agg.insert(row)
        return len(agg)

    def aggregate_jobs_oracle(self, period: str) -> int:
        """Pure-Python reference rebuild of ``agg_job_<period>``."""
        cfg = self.config
        _replace_table(self.schema, agg_job_schema(period))
        self._resync_job_bookkeeping(period)
        if not self.schema.has_table("fact_job"):
            return 0
        agg = self.schema.table(f"agg_job_{period}")
        buckets: dict[tuple, dict[str, float]] = {}

        def bucket(key: tuple) -> dict[str, float]:
            entry = buckets.get(key)
            if entry is None:
                entry = {
                    "n_jobs_ended": 0, "n_jobs_started": 0, "cpu_hours": 0.0,
                    "node_hours": 0.0, "xdsu": 0.0, "wall_hours": 0.0,
                    "wait_hours": 0.0,
                }
                buckets[key] = entry
            return entry

        for job in self.schema.table("fact_job").rows():
            wl_level = cfg.walltime_levels.level_of(job["walltime_s"])
            sz_level = cfg.jobsize_levels.level_of(job["cores"])
            dims = (
                job["resource_id"], job["person_id"], job["pi_id"],
                job["app_id"], job["queue_id"], wl_level, sz_level,
            )
            # counts: end / start attribution
            end_period = period_start(period, job["end_ts"])
            bucket((end_period, *dims))["n_jobs_ended"] += 1
            start_period = period_start(period, job["start_ts"])
            b = bucket((start_period, *dims))
            b["n_jobs_started"] += 1
            b["wait_hours"] += job["wait_s"] / SECONDS_PER_HOUR
            # usage: apportion across overlapped periods
            if job["walltime_s"] > 0 and job["end_ts"] > job["start_ts"]:
                total = job["walltime_s"]
                for p_start, p_end in period_range(
                    period, job["start_ts"], job["end_ts"]
                ):
                    ov = overlap_seconds(job["start_ts"], job["end_ts"], p_start, p_end)
                    if ov <= 0:
                        continue
                    frac = ov / total
                    b = bucket((p_start, *dims))
                    b["cpu_hours"] += job["cpu_hours"] * frac
                    b["node_hours"] += job["node_hours"] * frac
                    b["xdsu"] += job["xdsu"] * frac
                    b["wall_hours"] += total * frac / SECONDS_PER_HOUR
            else:
                # zero-length jobs span no period window, so apportionment
                # would drop their usage entirely; conserve the raw totals
                # by attributing full usage to the end period
                b = bucket((end_period, *dims))
                b["cpu_hours"] += job["cpu_hours"]
                b["node_hours"] += job["node_hours"]
                b["xdsu"] += job["xdsu"]
                b["wall_hours"] += job["walltime_s"] / SECONDS_PER_HOUR

        for key in sorted(buckets):
            p_start, rid, pid, piid, aid, qid, wl_level, sz_level = key
            measures = buckets[key]
            agg.insert(
                {
                    "period_start": p_start,
                    "period_label": period_label(period, p_start),
                    "resource_id": rid,
                    "person_id": pid,
                    "pi_id": piid,
                    "app_id": aid,
                    "queue_id": qid,
                    "walltime_level": wl_level,
                    "jobsize_level": sz_level,
                    "n_jobs_ended": int(measures["n_jobs_ended"]),
                    "n_jobs_started": int(measures["n_jobs_started"]),
                    "cpu_hours": measures["cpu_hours"],
                    "node_hours": measures["node_hours"],
                    "xdsu": measures["xdsu"],
                    "wall_hours": measures["wall_hours"],
                    "wait_hours": measures["wait_hours"],
                }
            )
        return len(agg)

    def _resync_job_bookkeeping(self, period: str) -> None:
        # a full rebuild covers everything: resync the incremental
        # bookkeeping so a later incremental pass starts from here
        seen_name = f"agg_seen_job_{period}"
        if not self.schema.has_table(seen_name):
            return
        seen = self.schema.table(seen_name)
        seen.truncate()
        if self.schema.has_table("fact_job"):
            for job in self.schema.table("fact_job").rows():
                seen.insert(
                    {"resource_id": job["resource_id"], "job_id": job["job_id"]}
                )

    # -- incremental jobs aggregation ----------------------------------------

    @_observed("jobs", "incremental")
    def aggregate_jobs_incremental(self, period: str) -> int:
        """Fold newly ingested jobs into ``agg_job_<period>`` in place.

        This is XDMoD's actual nightly mode: "aggregation processes run
        against newly ingested data".  A bookkeeping table records which
        job keys have been folded in, so repeated calls only process the
        delta; results are identical to a full :meth:`aggregate_jobs`
        rebuild over the same facts (tested).  Facts are treated as
        append-only — after updating or deleting job rows, or changing
        levels, run the full rebuild instead.

        Returns the number of new jobs folded in.
        """
        cfg = self.config
        agg_name = f"agg_job_{period}"
        if not self.schema.has_table(agg_name):
            self.schema.create_table(agg_job_schema(period))
        if not self.schema.has_table(f"agg_seen_job_{period}"):
            self.schema.create_table(job_seen_schema(period))
        if not self.schema.has_table("fact_job"):
            return 0
        agg = self.schema.table(agg_name)
        seen = self.schema.table(f"agg_seen_job_{period}")

        #: (period_start, *dims) -> measure deltas for this pass
        deltas: dict[tuple, dict[str, float]] = {}

        def bucket(key: tuple) -> dict[str, float]:
            entry = deltas.get(key)
            if entry is None:
                entry = {
                    "n_jobs_ended": 0, "n_jobs_started": 0, "cpu_hours": 0.0,
                    "node_hours": 0.0, "xdsu": 0.0, "wall_hours": 0.0,
                    "wait_hours": 0.0,
                }
                deltas[key] = entry
            return entry

        processed = 0
        for job in self.schema.table("fact_job").rows():
            key = (job["resource_id"], job["job_id"])
            if seen.get(key) is not None:
                continue
            seen.insert({"resource_id": key[0], "job_id": key[1]})
            processed += 1
            wl_level = cfg.walltime_levels.level_of(job["walltime_s"])
            sz_level = cfg.jobsize_levels.level_of(job["cores"])
            dims = (
                job["resource_id"], job["person_id"], job["pi_id"],
                job["app_id"], job["queue_id"], wl_level, sz_level,
            )
            end_period = period_start(period, job["end_ts"])
            bucket((end_period, *dims))["n_jobs_ended"] += 1
            b = bucket((period_start(period, job["start_ts"]), *dims))
            b["n_jobs_started"] += 1
            b["wait_hours"] += job["wait_s"] / SECONDS_PER_HOUR
            if job["walltime_s"] > 0 and job["end_ts"] > job["start_ts"]:
                total = job["walltime_s"]
                for p_start, p_end in period_range(
                    period, job["start_ts"], job["end_ts"]
                ):
                    ov = overlap_seconds(
                        job["start_ts"], job["end_ts"], p_start, p_end
                    )
                    if ov <= 0:
                        continue
                    frac = ov / total
                    b = bucket((p_start, *dims))
                    b["cpu_hours"] += job["cpu_hours"] * frac
                    b["node_hours"] += job["node_hours"] * frac
                    b["xdsu"] += job["xdsu"] * frac
                    b["wall_hours"] += total * frac / SECONDS_PER_HOUR
            else:
                # same zero-length rule as the full rebuild
                b = bucket((end_period, *dims))
                b["cpu_hours"] += job["cpu_hours"]
                b["node_hours"] += job["node_hours"]
                b["xdsu"] += job["xdsu"]
                b["wall_hours"] += job["walltime_s"] / SECONDS_PER_HOUR

        for key in sorted(deltas):
            p_start, rid, pid, piid, aid, qid, wl_level, sz_level = key
            delta = deltas[key]
            pk = (p_start, rid, pid, piid, aid, qid, wl_level, sz_level)
            existing = agg.get(pk)
            if existing is None:
                existing = {
                    "period_start": p_start,
                    "period_label": period_label(period, p_start),
                    "resource_id": rid, "person_id": pid, "pi_id": piid,
                    "app_id": aid, "queue_id": qid,
                    "walltime_level": wl_level, "jobsize_level": sz_level,
                    "n_jobs_ended": 0, "n_jobs_started": 0,
                    "cpu_hours": 0.0, "node_hours": 0.0, "xdsu": 0.0,
                    "wall_hours": 0.0, "wait_hours": 0.0,
                }
            for measure, value in delta.items():
                existing[measure] = existing[measure] + value
            existing["n_jobs_ended"] = int(existing["n_jobs_ended"])
            existing["n_jobs_started"] = int(existing["n_jobs_started"])
            agg.upsert(existing)
        return processed

    # -- storage realm ------------------------------------------------------

    @_observed("storage", "full")
    def aggregate_storage(self, period: str) -> int:
        """(Re)build ``agg_storage_<period>`` via the columnar fast path."""
        _replace_table(self.schema, agg_storage_schema(period))
        self._resync_storage_bookkeeping(period)
        if not self.schema.has_table("fact_storage"):
            return 0
        agg = self.schema.table(f"agg_storage_{period}")
        for row in build_storage_rows(self.schema, period, obs=self.obs):
            agg.insert(row)
        return len(agg)

    def aggregate_storage_oracle(self, period: str) -> int:
        """Pure-Python reference rebuild of ``agg_storage_<period>``."""
        _replace_table(self.schema, agg_storage_schema(period))
        self._resync_storage_bookkeeping(period)
        if not self.schema.has_table("fact_storage"):
            return 0
        agg = self.schema.table(f"agg_storage_{period}")
        # First collapse per-timestamp totals across users, then average the
        # per-timestamp totals within each period (gauge semantics).
        per_ts: dict[tuple, dict[str, float]] = {}
        users: dict[tuple, set[int]] = {}
        meta: dict[tuple[int, str], str] = {}
        for snap in self.schema.table("fact_storage").rows():
            tkey = (snap["ts"], snap["resource_id"], snap["filesystem"])
            entry = per_ts.setdefault(
                tkey,
                {"file_count": 0.0, "logical_gb": 0.0, "physical_gb": 0.0,
                 "quota_util": 0.0, "quota_n": 0.0,
                 "soft_quota_gb": 0.0, "hard_quota_gb": 0.0},
            )
            entry["file_count"] += snap["file_count"]
            entry["logical_gb"] += snap["logical_usage_gb"]
            entry["physical_gb"] += snap["physical_usage_gb"]
            soft = snap["soft_quota_gb"]
            entry["soft_quota_gb"] += soft if soft is not None else 0.0
            hard = snap["hard_quota_gb"]
            entry["hard_quota_gb"] += hard if hard is not None else 0.0
            if soft is not None:
                # NULL means no quota configured; an explicit 0.0 quota is
                # a real sample (utilization against it is undefined, so it
                # contributes 0 to the utilization sum)
                if soft > 0:
                    entry["quota_util"] += snap["logical_usage_gb"] / soft
                entry["quota_n"] += 1
            pkey = (
                period_start(period, snap["ts"]),
                snap["resource_id"], snap["filesystem"],
            )
            users.setdefault(pkey, set()).add(snap["person_id"])
            meta[(snap["resource_id"], snap["filesystem"])] = snap["resource_type"]

        periods: dict[tuple, list[dict[str, float]]] = {}
        for (ts_, rid, fs), entry in per_ts.items():
            periods.setdefault(
                (period_start(period, ts_), rid, fs), []
            ).append(entry)
        for key in sorted(periods):
            p_start, rid, fs = key
            samples = periods[key]
            n = len(samples)
            quota_n = sum(s["quota_n"] for s in samples)
            agg.insert(
                {
                    "period_start": p_start,
                    "period_label": period_label(period, p_start),
                    "resource_id": rid,
                    "filesystem": fs,
                    "resource_type": meta[(rid, fs)],
                    "avg_file_count": sum(s["file_count"] for s in samples) / n,
                    "avg_logical_gb": sum(s["logical_gb"] for s in samples) / n,
                    "avg_physical_gb": sum(s["physical_gb"] for s in samples) / n,
                    "sum_quota_utilization": sum(s["quota_util"] for s in samples),
                    "n_quota_samples": int(quota_n),
                    "avg_soft_quota_gb": sum(s["soft_quota_gb"] for s in samples) / n,
                    "avg_hard_quota_gb": sum(s["hard_quota_gb"] for s in samples) / n,
                    "user_count": len(users[key]),
                    "n_snapshots": n,
                }
            )
        return len(agg)

    # -- incremental storage aggregation -------------------------------------

    def _ensure_storage_bookkeeping(self, period: str) -> None:
        for schema_fn in (
            storage_seen_schema, storage_state_schema,
            storage_seen_ts_schema, storage_seen_user_schema,
        ):
            ts = schema_fn(period)
            if not self.schema.has_table(ts.name):
                self.schema.create_table(ts)

    def _fold_storage_facts(self, period: str) -> tuple[int, set[tuple]]:
        """Fold unseen snapshots into the running-sum state tables.

        Returns ``(snapshots processed, group keys touched)``.  The agg
        row for a group is *derived* from its state row, so repeated folds
        never accumulate drift.
        """
        self._ensure_storage_bookkeeping(period)
        seen = self.schema.table(f"agg_seen_storage_{period}")
        state = self.schema.table(f"agg_state_storage_{period}")
        seen_ts = self.schema.table(f"agg_seen_storage_ts_{period}")
        seen_user = self.schema.table(f"agg_seen_storage_user_{period}")
        processed = 0
        touched: set[tuple] = set()
        for snap in self.schema.table("fact_storage").rows():
            if seen.get((snap["snapshot_id"],)) is not None:
                continue
            seen.insert({"snapshot_id": snap["snapshot_id"]})
            processed += 1
            p_start = period_start(period, snap["ts"])
            key = (p_start, snap["resource_id"], snap["filesystem"])
            touched.add(key)
            entry = state.get(key)
            if entry is None:
                entry = {
                    "period_start": p_start,
                    "resource_id": snap["resource_id"],
                    "filesystem": snap["filesystem"],
                    "resource_type": snap["resource_type"],
                    "sum_file_count": 0.0, "sum_logical_gb": 0.0,
                    "sum_physical_gb": 0.0, "sum_soft_quota_gb": 0.0,
                    "sum_hard_quota_gb": 0.0, "sum_quota_utilization": 0.0,
                    "n_quota_samples": 0, "n_timestamps": 0, "n_users": 0,
                }
            entry["resource_type"] = snap["resource_type"]
            entry["sum_file_count"] += snap["file_count"]
            entry["sum_logical_gb"] += snap["logical_usage_gb"]
            entry["sum_physical_gb"] += snap["physical_usage_gb"]
            soft = snap["soft_quota_gb"]
            entry["sum_soft_quota_gb"] += soft if soft is not None else 0.0
            hard = snap["hard_quota_gb"]
            entry["sum_hard_quota_gb"] += hard if hard is not None else 0.0
            if soft is not None:
                if soft > 0:
                    entry["sum_quota_utilization"] += (
                        snap["logical_usage_gb"] / soft
                    )
                entry["n_quota_samples"] += 1
            ts_key = (*key, snap["ts"])
            if seen_ts.get(ts_key) is None:
                seen_ts.insert(dict(zip(
                    ("period_start", "resource_id", "filesystem", "ts"), ts_key
                )))
                entry["n_timestamps"] += 1
            user_key = (*key, snap["person_id"])
            if seen_user.get(user_key) is None:
                seen_user.insert(dict(zip(
                    ("period_start", "resource_id", "filesystem", "person_id"),
                    user_key,
                )))
                entry["n_users"] += 1
            state.upsert(entry)
        return processed, touched

    @_observed("storage", "incremental")
    def aggregate_storage_incremental(self, period: str) -> int:
        """Fold newly ingested snapshots into ``agg_storage_<period>``.

        Same contract as :meth:`aggregate_jobs_incremental`: append-only
        facts, results identical to a full rebuild (tested), returns the
        number of new snapshots folded in.  Assumes ``resource_type`` is
        stable per (resource, filesystem), which ingest guarantees.
        """
        agg_name = f"agg_storage_{period}"
        if not self.schema.has_table(agg_name):
            self.schema.create_table(agg_storage_schema(period))
        if not self.schema.has_table("fact_storage"):
            self._ensure_storage_bookkeeping(period)
            return 0
        processed, touched = self._fold_storage_facts(period)
        agg = self.schema.table(agg_name)
        state = self.schema.table(f"agg_state_storage_{period}")
        for key in sorted(touched):
            entry = state.get(key)
            n = entry["n_timestamps"]
            agg.upsert(
                {
                    "period_start": entry["period_start"],
                    "period_label": period_label(period, entry["period_start"]),
                    "resource_id": entry["resource_id"],
                    "filesystem": entry["filesystem"],
                    "resource_type": entry["resource_type"],
                    "avg_file_count": entry["sum_file_count"] / n,
                    "avg_logical_gb": entry["sum_logical_gb"] / n,
                    "avg_physical_gb": entry["sum_physical_gb"] / n,
                    "sum_quota_utilization": entry["sum_quota_utilization"],
                    "n_quota_samples": int(entry["n_quota_samples"]),
                    "avg_soft_quota_gb": entry["sum_soft_quota_gb"] / n,
                    "avg_hard_quota_gb": entry["sum_hard_quota_gb"] / n,
                    "user_count": int(entry["n_users"]),
                    "n_snapshots": int(n),
                }
            )
        return processed

    def _resync_storage_bookkeeping(self, period: str) -> None:
        if not self.schema.has_table(f"agg_seen_storage_{period}"):
            return
        self._ensure_storage_bookkeeping(period)
        for name in (
            f"agg_seen_storage_{period}", f"agg_state_storage_{period}",
            f"agg_seen_storage_ts_{period}", f"agg_seen_storage_user_{period}",
        ):
            self.schema.table(name).truncate()
        if self.schema.has_table("fact_storage"):
            self._fold_storage_facts(period)

    # -- cloud realm ---------------------------------------------------------

    @_observed("cloud", "full")
    def aggregate_cloud(self, period: str) -> int:
        """(Re)build ``agg_cloud_<period>`` via the columnar fast path."""
        _replace_table(self.schema, agg_cloud_schema(period))
        self._resync_cloud_bookkeeping(period)
        if not self.schema.has_table("fact_vm_interval"):
            return 0
        agg = self.schema.table(f"agg_cloud_{period}")
        for row in build_cloud_rows(self.schema, self.config, period, obs=self.obs):
            agg.insert(row)
        return len(agg)

    def aggregate_cloud_oracle(self, period: str) -> int:
        """Pure-Python reference rebuild of ``agg_cloud_<period>``."""
        _replace_table(self.schema, agg_cloud_schema(period))
        self._resync_cloud_bookkeeping(period)
        if not self.schema.has_table("fact_vm_interval"):
            return 0
        agg = self.schema.table(f"agg_cloud_{period}")
        levels = self.config.vm_memory_levels
        buckets: dict[tuple, dict[str, float]] = {}
        active_vms: dict[tuple, set[int]] = {}

        def bucket(key: tuple) -> dict[str, float]:
            entry = buckets.get(key)
            if entry is None:
                entry = {
                    "core_hours": 0.0, "wall_hours": 0.0, "total_cores": 0.0,
                    "mem_gb_hours": 0.0, "disk_gb_hours": 0.0,
                    "stopped_hours": 0.0, "paused_hours": 0.0,
                    "n_state_changes": 0,
                    "n_vms_started": 0, "n_vms_ended": 0,
                }
                buckets[key] = entry
            return entry

        for iv in self.schema.table("fact_vm_interval").rows():
            mem_level = levels.level_of(iv["mem_gb"])
            dims = (
                iv["resource_id"], iv["project"], iv["os"],
                iv["submission_venue"], mem_level,
            )
            if iv["end_ts"] == iv["start_ts"] and iv["state"] == "running":
                # a VM that started and stopped within the same second
                # accrues no hours but was still active in that period
                key = (period_start(period, iv["start_ts"]), *dims)
                bucket(key)
                active_vms.setdefault(key, set()).add(iv["vm_id"])
                continue
            for p_start, p_end in period_range(period, iv["start_ts"], iv["end_ts"]):
                ov = overlap_seconds(iv["start_ts"], iv["end_ts"], p_start, p_end)
                if ov <= 0:
                    continue
                b = bucket((p_start, *dims))
                hours = ov / SECONDS_PER_HOUR
                if iv["state"] == "running":
                    b["core_hours"] += iv["vcpus"] * hours
                    b["wall_hours"] += hours
                    # reservations weighted by wall hours (Section III-B)
                    b["mem_gb_hours"] += iv["mem_gb"] * hours
                    b["disk_gb_hours"] += iv["disk_gb"] * hours
                    active_vms.setdefault(
                        (p_start, *dims), set()
                    ).add(iv["vm_id"])
                elif iv["state"] == "stopped":
                    b["stopped_hours"] += hours
                else:
                    b["paused_hours"] += hours

        if self.schema.has_table("fact_vm"):
            for vm in self.schema.table("fact_vm").rows():
                mem_level = levels.level_of(vm["last_mem_gb"])
                dims = (
                    vm["resource_id"], vm["project"], vm["os"],
                    vm["submission_venue"], mem_level,
                )
                b = bucket((period_start(period, vm["provision_ts"]), *dims))
                b["n_vms_started"] += 1
                b["total_cores"] += vm["last_vcpus"]
                b["n_state_changes"] += vm["n_state_changes"]
                if vm["terminate_ts"] is not None:
                    bucket(
                        (period_start(period, vm["terminate_ts"]), *dims)
                    )["n_vms_ended"] += 1

        for key in sorted(buckets):
            p_start, rid, project, os, venue, mem_level = key
            measures = buckets[key]
            agg.insert(
                {
                    "period_start": p_start,
                    "period_label": period_label(period, p_start),
                    "resource_id": rid,
                    "project": project,
                    "os": os,
                    "submission_venue": venue,
                    "memory_level": mem_level,
                    "core_hours": measures["core_hours"],
                    "wall_hours": measures["wall_hours"],
                    "mem_gb_hours": measures["mem_gb_hours"],
                    "disk_gb_hours": measures["disk_gb_hours"],
                    "stopped_hours": measures["stopped_hours"],
                    "paused_hours": measures["paused_hours"],
                    "n_state_changes": int(measures["n_state_changes"]),
                    "n_vms_active": len(active_vms.get(key, ())),
                    "n_vms_started": int(measures["n_vms_started"]),
                    "n_vms_ended": int(measures["n_vms_ended"]),
                    "total_cores": measures["total_cores"],
                }
            )
        return len(agg)

    # -- incremental cloud aggregation ----------------------------------------

    def _ensure_cloud_bookkeeping(self, period: str) -> None:
        for schema_fn in (
            cloud_seen_interval_schema, cloud_seen_vm_schema,
            cloud_active_vm_schema,
        ):
            ts = schema_fn(period)
            if not self.schema.has_table(ts.name):
                self.schema.create_table(ts)

    def _fold_cloud_facts(self, period: str) -> tuple[int, dict[tuple, dict[str, float]]]:
        """Fold unseen intervals / VM facts into measure deltas.

        Marks facts seen and maintains the distinct-active-VM membership
        table as a side effect; returns ``(facts processed, deltas)``.
        """
        self._ensure_cloud_bookkeeping(period)
        levels = self.config.vm_memory_levels
        seen_iv = self.schema.table(f"agg_seen_cloud_interval_{period}")
        seen_vm = self.schema.table(f"agg_seen_cloud_vm_{period}")
        active = self.schema.table(f"agg_active_vm_{period}")
        deltas: dict[tuple, dict[str, float]] = {}

        def bucket(key: tuple) -> dict[str, float]:
            entry = deltas.get(key)
            if entry is None:
                entry = {
                    "core_hours": 0.0, "wall_hours": 0.0, "total_cores": 0.0,
                    "mem_gb_hours": 0.0, "disk_gb_hours": 0.0,
                    "stopped_hours": 0.0, "paused_hours": 0.0,
                    "n_state_changes": 0, "n_vms_active": 0,
                    "n_vms_started": 0, "n_vms_ended": 0,
                }
                deltas[key] = entry
            return entry

        def mark_active(key: tuple, vm_id: int) -> None:
            pk = (*key, vm_id)
            if active.get(pk) is None:
                active.insert(dict(zip(
                    ("period_start", "resource_id", "project", "os",
                     "submission_venue", "memory_level", "vm_id"),
                    pk,
                )))
                bucket(key)["n_vms_active"] += 1

        processed = 0
        if self.schema.has_table("fact_vm_interval"):
            for iv in self.schema.table("fact_vm_interval").rows():
                if seen_iv.get((iv["interval_id"],)) is not None:
                    continue
                seen_iv.insert({"interval_id": iv["interval_id"]})
                processed += 1
                mem_level = levels.level_of(iv["mem_gb"])
                dims = (
                    iv["resource_id"], iv["project"], iv["os"],
                    iv["submission_venue"], mem_level,
                )
                if iv["end_ts"] == iv["start_ts"] and iv["state"] == "running":
                    key = (period_start(period, iv["start_ts"]), *dims)
                    bucket(key)
                    mark_active(key, iv["vm_id"])
                    continue
                for p_start, p_end in period_range(
                    period, iv["start_ts"], iv["end_ts"]
                ):
                    ov = overlap_seconds(
                        iv["start_ts"], iv["end_ts"], p_start, p_end
                    )
                    if ov <= 0:
                        continue
                    key = (p_start, *dims)
                    b = bucket(key)
                    hours = ov / SECONDS_PER_HOUR
                    if iv["state"] == "running":
                        b["core_hours"] += iv["vcpus"] * hours
                        b["wall_hours"] += hours
                        b["mem_gb_hours"] += iv["mem_gb"] * hours
                        b["disk_gb_hours"] += iv["disk_gb"] * hours
                        mark_active(key, iv["vm_id"])
                    elif iv["state"] == "stopped":
                        b["stopped_hours"] += hours
                    else:
                        b["paused_hours"] += hours

        if self.schema.has_table("fact_vm"):
            for vm in self.schema.table("fact_vm").rows():
                key = (vm["resource_id"], vm["vm_id"])
                if seen_vm.get(key) is not None:
                    continue
                seen_vm.insert({"resource_id": key[0], "vm_id": key[1]})
                processed += 1
                mem_level = levels.level_of(vm["last_mem_gb"])
                dims = (
                    vm["resource_id"], vm["project"], vm["os"],
                    vm["submission_venue"], mem_level,
                )
                b = bucket((period_start(period, vm["provision_ts"]), *dims))
                b["n_vms_started"] += 1
                b["total_cores"] += vm["last_vcpus"]
                b["n_state_changes"] += vm["n_state_changes"]
                if vm["terminate_ts"] is not None:
                    bucket(
                        (period_start(period, vm["terminate_ts"]), *dims)
                    )["n_vms_ended"] += 1
        return processed, deltas

    @_observed("cloud", "incremental")
    def aggregate_cloud_incremental(self, period: str) -> int:
        """Fold newly ingested cloud facts into ``agg_cloud_<period>``.

        Same contract as :meth:`aggregate_jobs_incremental`: append-only
        facts, results identical to a full rebuild (tested), returns the
        number of new intervals + VM facts folded in.
        """
        agg_name = f"agg_cloud_{period}"
        if not self.schema.has_table(agg_name):
            self.schema.create_table(agg_cloud_schema(period))
        processed, deltas = self._fold_cloud_facts(period)
        agg = self.schema.table(agg_name)
        for key in sorted(deltas):
            p_start, rid, project, os, venue, mem_level = key
            delta = deltas[key]
            existing = agg.get(key)
            if existing is None:
                existing = {
                    "period_start": p_start,
                    "period_label": period_label(period, p_start),
                    "resource_id": rid, "project": project, "os": os,
                    "submission_venue": venue, "memory_level": mem_level,
                    "core_hours": 0.0, "wall_hours": 0.0,
                    "mem_gb_hours": 0.0, "disk_gb_hours": 0.0,
                    "stopped_hours": 0.0, "paused_hours": 0.0,
                    "n_state_changes": 0, "n_vms_active": 0,
                    "n_vms_started": 0, "n_vms_ended": 0,
                    "total_cores": 0.0,
                }
            for measure, value in delta.items():
                existing[measure] = existing[measure] + value
            for count in (
                "n_state_changes", "n_vms_active", "n_vms_started",
                "n_vms_ended",
            ):
                existing[count] = int(existing[count])
            agg.upsert(existing)
        return processed

    def _resync_cloud_bookkeeping(self, period: str) -> None:
        if not self.schema.has_table(f"agg_seen_cloud_interval_{period}"):
            return
        self._ensure_cloud_bookkeeping(period)
        for name in (
            f"agg_seen_cloud_interval_{period}",
            f"agg_seen_cloud_vm_{period}",
            f"agg_active_vm_{period}",
        ):
            self.schema.table(name).truncate()
        # re-fold everything to repopulate seen + active membership; the
        # measure deltas are discarded (the rebuild just wrote the agg)
        self._fold_cloud_facts(period)

    # -- orchestration ---------------------------------------------------------

    def aggregate_all(self, periods: Sequence[str] | None = None) -> dict[str, int]:
        """Run every realm's aggregation for every configured period."""
        out: dict[str, int] = {}
        for period in periods or self.config.periods:
            out[f"agg_job_{period}"] = self.aggregate_jobs(period)
            out[f"agg_storage_{period}"] = self.aggregate_storage(period)
            out[f"agg_cloud_{period}"] = self.aggregate_cloud(period)
        return out

    def aggregate_all_incremental(
        self, periods: Sequence[str] | None = None
    ) -> dict[str, int]:
        """Fold every realm's newly ingested facts for every period.

        Returns facts-processed counts keyed like :meth:`aggregate_all`.
        """
        out: dict[str, int] = {}
        for period in periods or self.config.periods:
            out[f"agg_job_{period}"] = self.aggregate_jobs_incremental(period)
            out[f"agg_storage_{period}"] = self.aggregate_storage_incremental(period)
            out[f"agg_cloud_{period}"] = self.aggregate_cloud_incremental(period)
        return out

    def reaggregate(
        self, config: AggregationConfig, periods: Sequence[str] | None = None
    ) -> dict[str, int]:
        """Change aggregation levels and rebuild — the Table I scenario.

        "If ... aggregation levels must be redefined on the federation hub
        to accommodate a new satellite instance, the administrator will
        update the appropriate configuration file on the federation hub,
        then re-aggregate all raw federation data."
        """
        self.config = config
        return self.aggregate_all(periods)
