"""Configurable aggregation levels (the paper's Table I).

"Data aggregation is a key data processing step in which XDMoD pre-bins raw
dimension data, enabling the application to respond quickly to complex user
queries... Aggregation levels, which are managed by JSON configuration
files, apply only to numeric dimensions, such as job wall time, job size
(core count), CPU User value, and peak memory usage."

An :class:`AggregationLevelSet` is an ordered list of half-open numeric bins
``[lo, hi)`` with labels.  Each XDMoD instance configures its own sets; the
federation hub defines its own superset covering all satellites (Table I),
and raw data replicated to the hub is re-binned under the hub's levels.

The module ships the exact Table I configurations as constants, plus the
Figure 7 VM-memory bins and a default job-size ladder.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from ..timeutil import SECONDS_PER_HOUR, SECONDS_PER_MINUTE


class LevelConfigError(ValueError):
    """An aggregation-level configuration is invalid."""


@dataclass(frozen=True)
class AggregationLevel:
    """One bin: label + half-open numeric range ``[lo, hi)``."""

    label: str
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not self.label:
            raise LevelConfigError("level label may not be empty")
        if not (self.lo < self.hi):
            raise LevelConfigError(
                f"level {self.label!r}: lo {self.lo!r} must be < hi {self.hi!r}"
            )

    def contains(self, value: float) -> bool:
        return self.lo <= value < self.hi


@dataclass(frozen=True)
class AggregationLevelSet:
    """An ordered, non-overlapping set of bins for one numeric dimension.

    ``field`` names the fact column the set bins (e.g. ``walltime_s``);
    ``unit`` is documentation only.  Values below the first bin, above the
    last, or in an interior gap map to :attr:`OUTSIDE`.
    """

    OUTSIDE = "outside"

    name: str
    field: str
    unit: str
    levels: tuple[AggregationLevel, ...]

    def __post_init__(self) -> None:
        if not self.levels:
            raise LevelConfigError(f"level set {self.name!r} has no levels")
        ordered = sorted(self.levels, key=lambda l: l.lo)
        for a, b in zip(ordered, ordered[1:]):
            if b.lo < a.hi:
                raise LevelConfigError(
                    f"level set {self.name!r}: {a.label!r} and {b.label!r} overlap"
                )
        labels = [l.label for l in self.levels]
        if len(set(labels)) != len(labels):
            raise LevelConfigError(f"level set {self.name!r}: duplicate labels")
        object.__setattr__(self, "levels", tuple(ordered))

    def level_of(self, value: float | None) -> str:
        """Label of the bin containing ``value`` (binary search)."""
        if value is None or (isinstance(value, float) and math.isnan(value)):
            return self.OUTSIDE
        lo, hi = 0, len(self.levels) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            level = self.levels[mid]
            if value < level.lo:
                hi = mid - 1
            elif value >= level.hi:
                lo = mid + 1
            else:
                return level.label
        return self.OUTSIDE

    def codes_of(self, values: Sequence[float]) -> np.ndarray:
        """Vectorized :meth:`level_of`: bin codes for an array of values.

        Returns an ``int64`` array where code ``i`` means ``levels[i]`` and
        code ``len(levels)`` means :attr:`OUTSIDE` (below, above, in an
        interior gap, or NaN/NULL).  ``coded_labels`` maps codes back to
        labels.  This is the hot path the columnar aggregation engine uses;
        it agrees with :meth:`level_of` element-for-element (tested).
        """
        v = np.asarray(values, dtype=np.float64)
        los = np.array([l.lo for l in self.levels], dtype=np.float64)
        his = np.array([l.hi for l in self.levels], dtype=np.float64)
        outside = len(self.levels)
        idx = np.searchsorted(los, v, side="right") - 1
        clipped = np.clip(idx, 0, outside - 1)
        inside = (idx >= 0) & (v >= los[clipped]) & (v < his[clipped])
        inside &= ~np.isnan(v)
        return np.where(inside, clipped, outside).astype(np.int64)

    @property
    def coded_labels(self) -> tuple[str, ...]:
        """Labels indexed by the codes :meth:`codes_of` returns."""
        return self.labels + (self.OUTSIDE,)

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(l.label for l in self.levels)

    def span(self) -> tuple[float, float]:
        return self.levels[0].lo, self.levels[-1].hi

    def covers(self, other: "AggregationLevelSet") -> bool:
        """True when every bin of ``other`` falls inside this set's span.

        The Table I requirement on a federation hub: its levels must
        represent all the data of the component instances.
        """
        lo, hi = self.span()
        olo, ohi = other.span()
        return lo <= olo and ohi <= hi

    # -- JSON config (the paper's management mechanism) ----------------------

    def to_config(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "field": self.field,
            "unit": self.unit,
            "levels": [
                {"label": l.label, "lo": l.lo, "hi": l.hi} for l in self.levels
            ],
        }

    @classmethod
    def from_config(cls, config: Mapping[str, Any]) -> "AggregationLevelSet":
        try:
            levels = tuple(
                AggregationLevel(e["label"], float(e["lo"]), float(e["hi"]))
                for e in config["levels"]
            )
            return cls(
                name=config["name"],
                field=config["field"],
                unit=config.get("unit", ""),
                levels=levels,
            )
        except (KeyError, TypeError) as exc:
            raise LevelConfigError(f"bad level config: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_config(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "AggregationLevelSet":
        return cls.from_config(json.loads(text))


def _wall(label: str, lo_s: float, hi_s: float) -> AggregationLevel:
    return AggregationLevel(label, lo_s, hi_s)


#: Table I, Instance A: resources with a 5-hour wall-time limit.
TABLE1_INSTANCE_A = AggregationLevelSet(
    name="walltime_instance_a",
    field="walltime_s",
    unit="seconds",
    levels=(
        _wall("1-60 seconds", 1, 60),
        _wall("1-60 minutes", 60, 60 * SECONDS_PER_MINUTE),
        _wall("1-5 hours", 1 * SECONDS_PER_HOUR, 5 * SECONDS_PER_HOUR),
    ),
)

#: Table I, Instance B: resources with a 50-hour wall-time limit.
TABLE1_INSTANCE_B = AggregationLevelSet(
    name="walltime_instance_b",
    field="walltime_s",
    unit="seconds",
    levels=(
        _wall("1-10 hours", 1, 10 * SECONDS_PER_HOUR),
        _wall("10-20 hours", 10 * SECONDS_PER_HOUR, 20 * SECONDS_PER_HOUR),
        _wall("20-50 hours", 20 * SECONDS_PER_HOUR, 50 * SECONDS_PER_HOUR),
    ),
)

#: Table I, federation hub: one set representing all member instances.
TABLE1_FEDERATION_HUB = AggregationLevelSet(
    name="walltime_federation_hub",
    field="walltime_s",
    unit="seconds",
    levels=(
        _wall("0-60 minutes", 0, 60 * SECONDS_PER_MINUTE),
        _wall("1-5 hours", 1 * SECONDS_PER_HOUR, 5 * SECONDS_PER_HOUR),
        _wall("5-10 hours", 5 * SECONDS_PER_HOUR, 10 * SECONDS_PER_HOUR),
        _wall("10-20 hours", 10 * SECONDS_PER_HOUR, 20 * SECONDS_PER_HOUR),
        _wall("20-50 hours", 20 * SECONDS_PER_HOUR, 50 * SECONDS_PER_HOUR),
    ),
)

#: Default job wall-time ladder for instances without a custom config.
DEFAULT_WALLTIME_LEVELS = AggregationLevelSet(
    name="walltime_default",
    field="walltime_s",
    unit="seconds",
    levels=(
        _wall("0-30 minutes", 0, 30 * SECONDS_PER_MINUTE),
        _wall("30-60 minutes", 30 * SECONDS_PER_MINUTE, 60 * SECONDS_PER_MINUTE),
        _wall("1-5 hours", SECONDS_PER_HOUR, 5 * SECONDS_PER_HOUR),
        _wall("5-18 hours", 5 * SECONDS_PER_HOUR, 18 * SECONDS_PER_HOUR),
        _wall("18-48 hours", 18 * SECONDS_PER_HOUR, 48 * SECONDS_PER_HOUR),
        _wall("48+ hours", 48 * SECONDS_PER_HOUR, 10_000 * SECONDS_PER_HOUR),
    ),
)

#: Default job-size (core count) ladder.
DEFAULT_JOBSIZE_LEVELS = AggregationLevelSet(
    name="jobsize_default",
    field="cores",
    unit="cores",
    levels=(
        AggregationLevel("1", 1, 2),
        AggregationLevel("2-4", 2, 5),
        AggregationLevel("5-16", 5, 17),
        AggregationLevel("17-64", 17, 65),
        AggregationLevel("65-256", 65, 257),
        AggregationLevel("257-1024", 257, 1025),
        AggregationLevel("1025+", 1025, 10**9),
    ),
)

#: Figure 7's VM memory-size bins: <1 GB, 1-2 GB, 2-4 GB, 4-8 GB.
FIG7_VM_MEMORY_LEVELS = AggregationLevelSet(
    name="vm_memory_fig7",
    field="mem_gb",
    unit="GB",
    levels=(
        AggregationLevel("<1 GB", 0.0001, 1.0),
        AggregationLevel("1-2 GB", 1.0, 2.0),
        AggregationLevel("2-4 GB", 2.0, 4.0),
        AggregationLevel("4-8 GB", 4.0, 8.0001),
    ),
)


def merge_level_sets(
    name: str, sets: Iterable[AggregationLevelSet]
) -> AggregationLevelSet:
    """Derive a hub-side level set covering every satellite's bins.

    This automates the administrator task Table I illustrates: the hub's
    bins are the distinct boundary points of all member sets, merged into
    contiguous non-overlapping ranges.
    """
    sets = list(sets)
    if not sets:
        raise LevelConfigError("cannot merge zero level sets")
    field = sets[0].field
    unit = sets[0].unit
    for s in sets:
        if s.field != field:
            raise LevelConfigError(
                f"cannot merge level sets for different fields "
                f"({field!r} vs {s.field!r})"
            )
    points = sorted({p for s in sets for l in s.levels for p in (l.lo, l.hi)})
    levels = tuple(
        AggregationLevel(f"[{lo:g}, {hi:g})", lo, hi)
        for lo, hi in zip(points, points[1:])
    )
    return AggregationLevelSet(name=name, field=field, unit=unit, levels=levels)
