"""Terminal chart rendering for the examples and benchmark harness.

The real tool renders with a JavaScript charting stack; the examples here
print the same series as aligned ASCII so a figure's *shape* is visible in
a terminal transcript (and in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Sequence

from .charts import ChartData

_GLYPHS = "o*x+#@%&"


def render_table(chart: ChartData, *, value_format: str = "{:,.0f}") -> str:
    """Aligned table: one row per x label, one column per series."""
    xs: list[str] = []
    for series in chart.series:
        for x, _ in series.points:
            if x not in xs:
                xs.append(x)
    columns = {s.label: dict(s.points) for s in chart.series}
    width = max([len("period")] + [len(x) for x in xs]) + 2
    col_widths = {
        label: max(len(label), 14) + 2 for label in chart.labels
    }
    lines = [chart.title, "=" * len(chart.title)]
    header = "period".ljust(width) + "".join(
        label.rjust(col_widths[label]) for label in chart.labels
    )
    lines.append(header)
    for x in xs:
        row = x.ljust(width)
        for label in chart.labels:
            v = columns[label].get(x)
            cell = "-" if v is None else value_format.format(v)
            row += cell.rjust(col_widths[label])
        lines.append(row)
    return "\n".join(lines)


def render_lines(chart: ChartData, *, height: int = 12, width: int | None = None) -> str:
    """Rough multi-series line plot in ASCII."""
    xs: list[str] = []
    for series in chart.series:
        for x, _ in series.points:
            if x not in xs:
                xs.append(x)
    if not xs:
        return chart.title + "\n(no data)"
    values = [
        v
        for s in chart.series
        for _, v in s.points
        if v is not None
    ]
    if not values:
        return chart.title + "\n(no data)"
    vmax = max(values) or 1.0
    ncols = width or len(xs)
    grid = [[" "] * ncols for _ in range(height)]
    for si, series in enumerate(chart.series):
        glyph = _GLYPHS[si % len(_GLYPHS)]
        col_of = {x: int(i * (ncols - 1) / max(len(xs) - 1, 1)) for i, x in enumerate(xs)}
        for x, v in series.points:
            if v is None:
                continue
            row = height - 1 - int((v / vmax) * (height - 1))
            grid[row][col_of[x]] = glyph
    lines = [chart.title, "=" * len(chart.title)]
    lines.append(f"max = {vmax:,.0f} {chart.y_label}")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * ncols)
    legend = "  ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]}={label}"
        for i, label in enumerate(chart.labels)
    )
    lines.append(legend)
    return "\n".join(lines)


_SPARK_LEVELS = " .:-=+*#%@"


def render_sparkline(values: Sequence[float], *, width: int = 32) -> str:
    """One-line trend strip for a metrics-history series.

    Values are downsampled to ``width`` columns (last value per column)
    and scaled to the series maximum; all-zero or empty input renders as
    a flat line.  Pure ASCII like the rest of the module, so sparkline
    panels survive cron email and CI log transcripts.
    """
    if not values:
        return ""
    if len(values) > width:
        step = len(values) / width
        values = [values[min(int((i + 1) * step) - 1, len(values) - 1)]
                  for i in range(width)]
    vmax = max(values)
    if vmax <= 0:
        return _SPARK_LEVELS[0] * len(values)
    top = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[max(0, min(top, int(round((v / vmax) * top))))]
        for v in values
    )


def render_bars(
    labels: Sequence[str], values: Sequence[float], *, title: str = "", width: int = 50
) -> str:
    """Horizontal bar chart for aggregate-view comparisons."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    vmax = max(values) if values else 1.0
    label_w = max((len(l) for l in labels), default=5) + 1
    lines = []
    if title:
        lines += [title, "=" * len(title)]
    for label, value in zip(labels, values):
        bar = "#" * int(round((value / vmax) * width)) if vmax else ""
        lines.append(f"{label.ljust(label_w)}|{bar} {value:,.1f}")
    return "\n".join(lines)
