"""UI layer: charts, usage explorer, Job Viewer, export, reports, HTTP API."""

from .ascii import render_bars, render_lines, render_sparkline, render_table
from .charts import ChartBuilder, ChartData, Series, chart_from_result
from .explorer import ExplorerState, UsageExplorer
from .export import chart_to_csv, chart_to_json, result_to_csv, result_to_json
from .jobviewer import JobDetail, JobNotFoundError, JobViewer
from .reports import (
    ChartSpec,
    GeneratedReport,
    ReportDefinition,
    ReportGenerator,
    due_on,
    run_schedule,
)
from .rest import ApiServer, XdmodApi
from .serving import (
    QueryCache,
    QueryService,
    ServingParamError,
    ServingResult,
    ViewSpec,
    json_sanitize,
)

__all__ = [
    "ApiServer",
    "ChartBuilder",
    "ChartData",
    "ChartSpec",
    "ExplorerState",
    "GeneratedReport",
    "JobDetail",
    "JobNotFoundError",
    "JobViewer",
    "QueryCache",
    "QueryService",
    "ReportDefinition",
    "ReportGenerator",
    "Series",
    "ServingParamError",
    "ServingResult",
    "UsageExplorer",
    "ViewSpec",
    "XdmodApi",
    "chart_from_result",
    "chart_to_csv",
    "chart_to_json",
    "due_on",
    "json_sanitize",
    "render_bars",
    "render_lines",
    "render_sparkline",
    "render_table",
    "result_to_csv",
    "result_to_json",
    "run_schedule",
]
