"""Cache-first query serving: the read path behind the REST surface.

The federated hub exists to be *looked at* — the paper's unified view is
a web portal — and a portal workload (ColdFront's, for instance) is
overwhelmingly repeated reads of a small set of charts.  Recomputing a
``/query`` answer from the aggregate tables on every request caps the
read path at the aggregation engine's speed; this module makes the read
path cache-first instead:

- :class:`QueryCache` — a bounded LRU of fully built response payloads,
  keyed on the canonical request ``(chart?, realm, metric, start, end,
  period, group_by, filters, view, top_n, title)`` and stamped with the
  warehouse ``data_version`` counters of every source schema at build
  time.  A hit never touches the aggregation engine; an entry whose
  stamp no longer matches is *stale* and is recomputed and re-stamped in
  place; the key space is bounded by LRU eviction.
- :class:`QueryService` — parses and canonicalizes request parameters
  (rejecting bad ones with a 400 instead of an exception), consults the
  cache, paginates (``offset``/``limit`` slice the cached full payload,
  so every page is served from one cached compute), and derives the
  strong ETag that lets :mod:`repro.ui.rest` answer ``If-None-Match``
  revalidations with an empty 304.
- :class:`ViewSpec` — a pre-materialized view: a registered query
  (top-N chart, dashboard timeseries) recomputed by
  :meth:`QueryService.materialize`, which the federation hub invokes
  through its post-aggregation hook so the portal's standing charts are
  warm before the first request arrives.

Telemetry (when an :class:`~repro.obs.Observability` bundle is wired):
``serving_cache_lookups_total{result=hit|miss|stale|bypass}``,
``serving_cache_evictions_total``, ``serving_cache_entries_rows`` and
``serving_view_refreshes_total``; the request counter and latency
histogram live in :mod:`repro.ui.rest`, and the shipped
``api_error_ratio_high`` SLO rule watches the error ratio.
"""

from __future__ import annotations

import hashlib
import json
import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from ..analysis.sanitizer import create_lock
from ..obs import Observability
from ..realms.base import Realm, RealmQueryError
from ..warehouse import Schema
from .charts import chart_from_result

__all__ = [
    "QueryCache",
    "QueryService",
    "ServingParamError",
    "ServingResult",
    "ViewSpec",
    "json_sanitize",
]


class ServingParamError(ValueError):
    """A request parameter failed validation (maps to HTTP 400)."""


def json_sanitize(obj: Any) -> Any:
    """Recursively replace non-finite floats with their Prometheus
    spellings (``"NaN"``, ``"+Inf"``, ``"-Inf"``) so the result is
    strictly valid JSON.

    ``json.dumps`` alone emits bare ``NaN``/``Infinity`` tokens — legal
    Python, invalid JSON — which the metrics registry's ±Inf/NaN samples
    would otherwise smuggle into ``/status`` and the JSON ``/metrics``
    payloads.
    """
    if isinstance(obj, float):
        if math.isfinite(obj):
            return obj
        if math.isnan(obj):
            return "NaN"
        return "+Inf" if obj > 0 else "-Inf"
    if isinstance(obj, dict):
        return {k: json_sanitize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [json_sanitize(v) for v in obj]
    return obj


def _int_param(
    params: Mapping[str, str], name: str, *, default: int | None = None,
    minimum: int | None = None,
) -> int | None:
    """Parse one integer query parameter; ServingParamError on garbage."""
    raw = params.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ServingParamError(
            f"bad parameters: {name}={raw!r} is not an integer"
        ) from None
    if minimum is not None and value < minimum:
        raise ServingParamError(
            f"bad parameters: {name}={value} must be >= {minimum}"
        )
    return value


@dataclass(frozen=True)
class QueryRequest:
    """One canonicalized ``/query`` or ``/chart`` request."""

    chart: bool
    realm: str
    metric: str
    start: int
    end: int
    period: str
    group_by: str | None
    filters: tuple[tuple[str, tuple[str, ...]], ...]
    view: str
    top_n: int | None
    title: str | None
    offset: int
    limit: int | None

    @property
    def key(self) -> tuple:
        """Cache key: everything that shapes the *full* payload.

        ``offset``/``limit`` are deliberately excluded — pagination
        slices the cached full payload, so every page of a result is
        served by one cached compute.
        """
        return (
            self.chart, self.realm, self.metric, self.start, self.end,
            self.period, self.group_by, self.filters, self.view,
            self.top_n, self.title,
        )

    @classmethod
    def parse(cls, params: Mapping[str, str], *, chart: bool) -> "QueryRequest":
        missing = [k for k in ("realm", "metric", "start", "end") if k not in params]
        if missing:
            raise ServingParamError(
                f"bad parameters: missing {', '.join(missing)}"
            )
        filters: list[tuple[str, tuple[str, ...]]] = []
        for key, value in params.items():
            if key.startswith("filter."):
                filters.append(
                    (key[len("filter."):], tuple(sorted(set(value.split(",")))))
                )
        filters.sort()
        return cls(
            chart=chart,
            realm=params["realm"],
            metric=params["metric"],
            start=_int_param(params, "start"),  # type: ignore[arg-type]
            end=_int_param(params, "end"),  # type: ignore[arg-type]
            period=params.get("period", "month"),
            group_by=params.get("group_by") or None,
            filters=tuple(filters),
            view=params.get("view", "timeseries"),
            top_n=_int_param(params, "top_n", minimum=1) if chart else None,
            title=params.get("title") if chart else None,
            offset=_int_param(params, "offset", default=0, minimum=0),  # type: ignore[arg-type]
            limit=_int_param(params, "limit", minimum=0),
        )


@dataclass
class ServingResult:
    """What the REST layer needs to answer one read request."""

    status: int
    payload: dict[str, Any]
    etag: str | None = None
    cache: str = "none"  # hit | miss | stale | bypass | none


#: Distinct (offset, limit) windows memoized per cache entry; beyond
#: this, extra windows are still served (re-sliced from the cached full
#: payload) — they just are not memoized.
MAX_PAGES_PER_ENTRY = 16


class _CacheEntry:
    __slots__ = ("payload", "versions", "hits", "pages", "_plock")

    def __init__(self, payload: dict[str, Any], versions: tuple) -> None:
        self.payload = payload
        self.versions = versions
        self.hits = 0
        # (offset, limit) -> (paginated payload, etag): a hit on a seen
        # window returns a fully built response without re-slicing or
        # re-hashing.  Guarded by its own per-entry lock: concurrent
        # /query clients paginate the same resident entry, and an
        # unlocked check-then-insert both races the MAX_PAGES_PER_ENTRY
        # bound and mutates the dict mid-``get`` on other threads.
        self.pages: dict[tuple, tuple[dict[str, Any], str]] = {}
        self._plock = create_lock("QueryCache.entry")  # guards: pages

    def get_page(self, page_key: tuple) -> tuple[dict[str, Any], str] | None:
        with self._plock:
            return self.pages.get(page_key)

    def memo_page(self, page_key: tuple, page: dict[str, Any], etag: str) -> None:
        """Memoize one window; the bound check and the insert are one
        critical section, so the entry can never exceed the page cap."""
        with self._plock:
            if len(self.pages) < MAX_PAGES_PER_ENTRY:
                self.pages[page_key] = (page, etag)


class QueryCache:
    """Bounded LRU of query payloads stamped with source data versions.

    Thread-safe: ``lookup``/``store`` take a lock; the (potentially
    expensive) payload compute happens outside it, so concurrent misses
    on the same key each compute once and the last store wins — wasted
    work under a thundering herd, never a wrong answer.
    """

    def __init__(self, *, max_entries: int = 512, registry=None) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[tuple, _CacheEntry]" = OrderedDict()
        self._lock = create_lock("QueryCache")  # guards: _entries
        if registry is not None:
            lookups = registry.counter(
                "serving_cache_lookups_total",
                "Query-cache lookups by result",
                ("result",),
            )
            self._c_hit = lookups.labels(result="hit")
            self._c_miss = lookups.labels(result="miss")
            self._c_stale = lookups.labels(result="stale")
            self._c_evict = registry.counter(
                "serving_cache_evictions_total",
                "Query-cache entries evicted by the LRU bound",
            )
            self._g_entries = registry.gauge(
                "serving_cache_entries_rows",
                "Query-cache entries currently resident",
            )
        else:
            self._c_hit = self._c_miss = self._c_stale = None
            self._c_evict = self._g_entries = None

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: tuple, versions: tuple) -> tuple[_CacheEntry | None, str]:
        """``(entry, "hit")`` on a fresh entry, else ``(None, reason)``.

        A stale entry (version stamp mismatch) stays resident until
        :meth:`store` re-stamps it — the reason tells the caller (and the
        lookup counters) whether the recompute was a cold miss or an
        invalidation.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                if self._c_miss is not None:
                    self._c_miss.inc()
                return None, "miss"
            if entry.versions != versions:
                if self._c_stale is not None:
                    self._c_stale.inc()
                return None, "stale"
            entry.hits += 1
            self._entries.move_to_end(key)
            if self._c_hit is not None:
                self._c_hit.inc()
            return entry, "hit"

    def store(
        self, key: tuple, versions: tuple, payload: dict[str, Any]
    ) -> _CacheEntry:
        entry = _CacheEntry(payload, versions)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                if self._c_evict is not None:
                    self._c_evict.inc()
            if self._g_entries is not None:
                self._g_entries.set(len(self._entries))
        return entry

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            if self._g_entries is not None:
                self._g_entries.set(0)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": sum(e.hits for e in self._entries.values()),
            }


@dataclass(frozen=True)
class ViewSpec:
    """A pre-materialized view: one standing query kept warm.

    ``chart=True`` materializes the ``/chart`` payload shape (with
    ``top_n``/``title``); otherwise the ``/query`` rows shape.  The spec
    is converted to the same canonical :class:`QueryRequest` a live
    request would produce, so a request matching the view is a cache hit
    byte-for-byte.
    """

    realm: str
    metric: str
    start: int
    end: int
    period: str = "month"
    group_by: str | None = None
    view: str = "timeseries"
    chart: bool = False
    top_n: int | None = None
    title: str | None = None

    def params(self) -> dict[str, str]:
        out = {
            "realm": self.realm,
            "metric": self.metric,
            "start": str(self.start),
            "end": str(self.end),
            "period": self.period,
            "view": self.view,
        }
        if self.group_by:
            out["group_by"] = self.group_by
        if self.chart and self.top_n is not None:
            out["top_n"] = str(self.top_n)
        if self.chart and self.title is not None:
            out["title"] = self.title
        return out


class QueryService:
    """Cache-first execution of realm queries for one source set.

    ``enabled=False`` turns the layer into a pass-through (every request
    recomputes, counted as ``bypass``) — the uncached baseline arm of
    ``bench_a13_serving`` and the ``serve --no-cache`` escape hatch.
    Payloads are built by the same code on both paths, so cached and
    uncached responses are byte-identical.
    """

    def __init__(
        self,
        realms: Mapping[str, Realm],
        sources: Schema | Mapping[str, Schema],
        *,
        obs: Observability | None = None,
        max_entries: int = 512,
        enabled: bool = True,
    ) -> None:
        self.realms = dict(realms)
        self.sources = sources
        self.enabled = enabled
        registry = obs.registry if obs is not None else None
        self.cache = QueryCache(max_entries=max_entries, registry=registry)
        self._views: list[ViewSpec] = []
        self._c_bypass = None
        self._c_view_refresh = None
        if registry is not None:
            self._c_bypass = registry.counter(
                "serving_cache_lookups_total",
                "Query-cache lookups by result",
                ("result",),
            ).labels(result="bypass")
            self._c_view_refresh = registry.counter(
                "serving_view_refreshes_total",
                "Materialized-view recomputes (post-aggregation refresh)",
            )

    # -- versions ------------------------------------------------------------

    def source_versions(self) -> tuple:
        """Current ``data_version`` stamp of every source schema.

        One integer read per schema — the whole invalidation check is
        O(#sources), never O(rows).
        """
        if isinstance(self.sources, Schema):
            return ((self.sources.name, self.sources.data_version),)
        return tuple(
            sorted((name, s.data_version) for name, s in self.sources.items())
        )

    # -- the read path -------------------------------------------------------

    def respond(self, params: Mapping[str, str], *, chart: bool) -> ServingResult:
        """Answer one ``/query`` (rows) or ``/chart`` request."""
        try:
            request = QueryRequest.parse(params, chart=chart)
        except ServingParamError as exc:
            return ServingResult(400, {"error": str(exc)})
        if request.realm not in self.realms:
            return ServingResult(
                400, {"error": f"unknown realm {request.realm!r}"}
            )
        cache_state = "bypass"
        versions = self.source_versions()
        entry: _CacheEntry | None = None
        if self.enabled:
            entry, cache_state = self.cache.lookup(request.key, versions)
        elif self._c_bypass is not None:
            self._c_bypass.inc()
        page_key = (request.offset, request.limit)
        if entry is None:
            try:
                full = self._compute(request)
            except RealmQueryError as exc:
                return ServingResult(400, {"error": str(exc)})
            if self.enabled:
                entry = self.cache.store(request.key, versions, full)
        else:
            memo = entry.get_page(page_key)
            if memo is not None:
                return ServingResult(200, memo[0], etag=memo[1], cache="hit")
            full = entry.payload
        page = self._paginate(full, request)
        etag = self._etag(page)
        if entry is not None:
            entry.memo_page(page_key, page, etag)
        return ServingResult(200, page, etag=etag, cache=cache_state)

    def respond_cached(
        self,
        key: tuple,
        compute: Callable[[], dict[str, Any]],
        *,
        offset: int = 0,
        limit: int | None = None,
        field: str = "rows",
    ) -> ServingResult:
        """Cache-first serving for a payload not built by a realm query.

        Same flow as :meth:`respond` — version-stamped cache entry,
        per-window page memoization, strong ETag — for routes whose full
        payload comes from ``compute()`` instead of ``realm.query``
        (e.g. ``/jobs/efficiency``).  ``compute`` runs only on a miss or
        stale entry and must return the full payload dict whose
        ``field`` key holds the list to paginate.
        """
        cache_state = "bypass"
        versions = self.source_versions()
        entry: _CacheEntry | None = None
        if self.enabled:
            entry, cache_state = self.cache.lookup(key, versions)
        elif self._c_bypass is not None:
            self._c_bypass.inc()
        page_key = (offset, limit)
        if entry is None:
            try:
                full = compute()
            except RealmQueryError as exc:
                return ServingResult(400, {"error": str(exc)})
            if self.enabled:
                entry = self.cache.store(key, versions, full)
        else:
            memo = entry.get_page(page_key)
            if memo is not None:
                return ServingResult(200, memo[0], etag=memo[1], cache="hit")
            full = entry.payload
        items = full[field]
        stop = len(items) if limit is None else offset + limit
        page = dict(full)
        page[field] = items[offset:stop]
        page[f"total_{field}"] = len(items)
        page["offset"] = offset
        page["limit"] = limit
        etag = self._etag(page)
        if entry is not None:
            entry.memo_page(page_key, page, etag)
        return ServingResult(200, page, etag=etag, cache=cache_state)

    def _compute(self, request: QueryRequest) -> dict[str, Any]:
        """Build the full (unpaginated) payload from the realm engine."""
        realm = self.realms[request.realm]
        result = realm.query(
            self.sources,
            request.metric,
            start=request.start,
            end=request.end,
            period=request.period,
            group_by=request.group_by,
            filters={name: set(vals) for name, vals in request.filters} or None,
            view=request.view,
        )
        if request.chart:
            data = chart_from_result(
                result,
                title=(
                    request.title
                    if request.title is not None
                    else f"{request.realm}:{request.metric}"
                ),
                top_n=request.top_n,
            )
            return data.to_dict()
        return {
            "metric": request.metric,
            "rows": [
                {
                    "group": r.group,
                    "period": r.period_label,
                    "period_start": r.period_start,
                    "value": r.value,
                }
                for r in result.rows
            ],
        }

    @staticmethod
    def _paginate(full: dict[str, Any], request: QueryRequest) -> dict[str, Any]:
        """Window the full payload; never mutates the cached dict."""
        field = "series" if request.chart else "rows"
        items = full[field]
        stop = (
            len(items) if request.limit is None
            else request.offset + request.limit
        )
        page = dict(full)
        page[field] = items[request.offset:stop]
        page[f"total_{field}"] = len(items)
        page["offset"] = request.offset
        page["limit"] = request.limit
        return page

    @staticmethod
    def _etag(payload: dict[str, Any]) -> str:
        """Strong validator over the canonical payload serialization."""
        canonical = json.dumps(
            json_sanitize(payload), sort_keys=True, separators=(",", ":")
        )
        return '"' + hashlib.sha256(canonical.encode()).hexdigest()[:32] + '"'

    # -- materialized views ---------------------------------------------------

    @property
    def views(self) -> tuple[ViewSpec, ...]:
        return tuple(self._views)

    def register_view(self, spec: ViewSpec) -> ViewSpec:
        """Register a standing query for :meth:`materialize` to keep warm."""
        if spec not in self._views:
            self._views.append(spec)
        return spec

    def register_views(self, specs: Any) -> int:
        for spec in specs:
            self.register_view(spec)
        return len(self._views)

    def materialize(self) -> int:
        """(Re)compute every registered view; returns views refreshed.

        Wired as a federation post-aggregation hook
        (``hub.add_post_aggregation_hook(service.materialize)``) so the
        portal's standing charts are recomputed right after fresh
        aggregates land, ahead of any request.  Uses the normal cache
        path: a view whose sources did not change is already fresh and
        costs one version check.
        """
        refreshed = 0
        for spec in self._views:
            result = self.respond(spec.params(), chart=spec.chart)
            if result.status == 200:
                refreshed += 1
                if self._c_view_refresh is not None:
                    self._c_view_refresh.inc()
        return refreshed

    def stats(self) -> dict[str, int]:
        out = self.cache.stats()
        out["views"] = len(self._views)
        return out
