"""Custom report generation and scheduling.

XDMoD lets stakeholders "automate reports": a report definition names a set
of charts; the generator renders them (as markdown here), and the scheduler
decides which calendar dates a periodic report fires on.  Federation's
management use cases (Section II-E) lean on exactly this — a monthly
federation-wide utilization report for the funding agency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..timeutil import from_ts, iso
from .ascii import render_table
from .charts import ChartBuilder, ChartData


@dataclass(frozen=True)
class ChartSpec:
    """One chart inside a report."""

    title: str
    metric: str
    group_by: str | None = None
    top_n: int | None = None
    filters: Mapping[str, tuple[str, ...]] | None = None
    view: str = "timeseries"


@dataclass(frozen=True)
class ReportDefinition:
    """A named report: header + charts + delivery schedule."""

    name: str
    title: str
    charts: tuple[ChartSpec, ...]
    schedule: str = "monthly"  # "daily" | "monthly" | "quarterly"

    def __post_init__(self) -> None:
        if self.schedule not in ("daily", "monthly", "quarterly"):
            raise ValueError(f"unknown schedule {self.schedule!r}")


def due_on(definition: ReportDefinition, epoch: int) -> bool:
    """Is the report due on the UTC day containing ``epoch``?

    Daily reports fire every day; monthly on the 1st; quarterly on the
    first day of each quarter.
    """
    d = from_ts(epoch)
    if definition.schedule == "daily":
        return True
    if definition.schedule == "monthly":
        return d.day == 1
    return d.day == 1 and d.month in (1, 4, 7, 10)


@dataclass
class GeneratedReport:
    """Rendered output plus the raw chart data."""

    definition: ReportDefinition
    generated_at: int
    period: tuple[int, int]
    charts: list[ChartData]
    markdown: str


class ReportGenerator:
    """Renders report definitions against a chart builder."""

    def __init__(self, builder: ChartBuilder, *, instance_label: str = "") -> None:
        self.builder = builder
        self.instance_label = instance_label

    def generate(
        self,
        definition: ReportDefinition,
        *,
        start: int,
        end: int,
        period: str = "month",
        now: int | None = None,
    ) -> GeneratedReport:
        charts: list[ChartData] = []
        sections: list[str] = [
            f"# {definition.title}",
            "",
            f"*Instance:* {self.instance_label or 'local'}  ",
            f"*Range:* {iso(start)} to {iso(end)}  ",
        ]
        for spec in definition.charts:
            if spec.view == "aggregate":
                chart = self.builder.aggregate(
                    spec.metric,
                    start=start, end=end, period=period,
                    group_by=spec.group_by,
                    filters=spec.filters,
                    title=spec.title,
                    top_n=spec.top_n,
                )
            else:
                chart = self.builder.timeseries(
                    spec.metric,
                    start=start, end=end, period=period,
                    group_by=spec.group_by,
                    filters=spec.filters,
                    title=spec.title,
                    top_n=spec.top_n,
                )
            charts.append(chart)
            sections += ["", "```", render_table(chart), "```"]
        markdown = "\n".join(sections) + "\n"
        return GeneratedReport(
            definition=definition,
            generated_at=now if now is not None else end,
            period=(start, end),
            charts=charts,
            markdown=markdown,
        )


def run_schedule(
    definitions: Sequence[ReportDefinition],
    days: Sequence[int],
) -> dict[str, list[int]]:
    """Which reports fire on which days — the scheduler's dry-run.

    Returns report name -> list of epoch days it would be generated on.
    """
    out: dict[str, list[int]] = {d.name: [] for d in definitions}
    for day in days:
        for definition in definitions:
            if due_on(definition, day):
                out[definition.name].append(day)
    return out
