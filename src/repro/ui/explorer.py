"""Usage Explorer: interactive filter / group / drill-down.

"XDMoD supports data-analytic functions such as filtering, grouping and
drill-down."  The explorer is a small immutable-ish query builder over a
realm: set a metric and time range, add filters, group by a dimension, and
*drill down* — click one group value, which pins it as a filter and
regroups by a finer dimension, exactly the UI interaction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Mapping

from ..core.identity import IdentityMap
from ..realms.base import Realm, RealmQueryError, RealmResult
from ..warehouse import Schema


@dataclass(frozen=True)
class ExplorerState:
    """One explorer configuration (hashable history entry)."""

    metric: str
    start: int
    end: int
    period: str = "month"
    group_by: str | None = None
    filters: tuple[tuple[str, tuple[str, ...]], ...] = ()
    view: str = "timeseries"

    def filter_map(self) -> dict[str, tuple[str, ...]]:
        return dict(self.filters)


class UsageExplorer:
    """Stateful drill-down session over one realm and source set."""

    def __init__(
        self,
        realm: Realm,
        sources: Schema | Mapping[str, Schema],
        *,
        idmap: IdentityMap | None = None,
    ) -> None:
        self.realm = realm
        self.sources = sources
        self.idmap = idmap
        self._state: ExplorerState | None = None
        self._history: list[ExplorerState] = []

    # -- configuration -----------------------------------------------------

    def configure(
        self,
        metric: str,
        *,
        start: int,
        end: int,
        period: str = "month",
        view: str = "timeseries",
    ) -> "UsageExplorer":
        self.realm.metric(metric)  # validate eagerly
        self._state = ExplorerState(
            metric=metric, start=start, end=end, period=period, view=view
        )
        self._history = [self._state]
        return self

    def _require_state(self) -> ExplorerState:
        if self._state is None:
            raise RealmQueryError("explorer not configured; call configure()")
        return self._state

    def _push(self, state: ExplorerState) -> None:
        self._state = state
        self._history.append(state)

    def group_by(self, dimension: str | None) -> "UsageExplorer":
        state = self._require_state()
        if dimension is not None:
            self.realm.dimension(dimension)
        self._push(replace(state, group_by=dimension))
        return self

    def filter(self, dimension: str, values: Iterable[str]) -> "UsageExplorer":
        state = self._require_state()
        self.realm.dimension(dimension)
        filters = dict(state.filters)
        existing = set(filters.get(dimension, ()))
        filters[dimension] = tuple(sorted(existing | set(values)))
        self._push(replace(state, filters=tuple(sorted(filters.items()))))
        return self

    def clear_filter(self, dimension: str) -> "UsageExplorer":
        state = self._require_state()
        filters = dict(state.filters)
        filters.pop(dimension, None)
        self._push(replace(state, filters=tuple(sorted(filters.items()))))
        return self

    def drill_down(self, group_value: str, new_dimension: str) -> "UsageExplorer":
        """Pin the clicked group as a filter and regroup finer.

        E.g. grouped by resource, click "comet", drill into application:
        the explorer now shows applications *on comet*.
        """
        state = self._require_state()
        if state.group_by is None:
            raise RealmQueryError("cannot drill down without a grouping")
        self.realm.dimension(new_dimension)
        filters = dict(state.filters)
        pinned = set(filters.get(state.group_by, ()))
        pinned.add(group_value)
        filters[state.group_by] = tuple(sorted(pinned))
        self._push(
            replace(
                state,
                filters=tuple(sorted(filters.items())),
                group_by=new_dimension,
            )
        )
        return self

    def back(self) -> "UsageExplorer":
        """Undo the last navigation step."""
        if len(self._history) > 1:
            self._history.pop()
            self._state = self._history[-1]
        return self

    # -- execution ----------------------------------------------------------

    def fetch(self) -> RealmResult:
        state = self._require_state()
        return self.realm.query(
            self.sources,
            state.metric,
            start=state.start,
            end=state.end,
            period=state.period,
            group_by=state.group_by,
            filters={k: set(v) for k, v in state.filters},
            view=state.view,
            idmap=self.idmap,
        )

    @property
    def state(self) -> ExplorerState:
        return self._require_state()

    @property
    def breadcrumbs(self) -> list[str]:
        """Human trail of the navigation (for the UI's breadcrumb bar)."""
        out = []
        for state in self._history:
            desc = f"{state.metric}"
            if state.group_by:
                desc += f" by {state.group_by}"
            if state.filters:
                pins = "; ".join(
                    f"{dim}={','.join(vals)}" for dim, vals in state.filters
                )
                desc += f" [{pins}]"
            out.append(desc)
        return out
