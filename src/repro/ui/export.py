"""Data export: CSV and JSON renditions of query results and charts.

"It also provides reporting capabilities that include data export and
custom report generation."
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any

from ..realms.base import RealmResult
from .charts import ChartData


def result_to_csv(result: RealmResult) -> str:
    """CSV with one row per (group, period) cell."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["group", "period", "metric", "unit", "value"])
    for row in sorted(
        result.rows, key=lambda r: (r.group, r.period_start or 0)
    ):
        writer.writerow(
            [
                row.group,
                row.period_label or "all",
                result.metric.name,
                result.metric.unit,
                "" if row.value is None else f"{row.value:.6f}",
            ]
        )
    return buf.getvalue()


def result_to_json(result: RealmResult) -> str:
    """JSON document mirroring the UI's chart-store payload."""
    return json.dumps(
        {
            "metric": result.metric.name,
            "label": result.metric.label,
            "unit": result.metric.unit,
            "dimension": result.dimension,
            "rows": [
                {
                    "group": r.group,
                    "period_start": r.period_start,
                    "period": r.period_label,
                    "value": r.value,
                }
                for r in result.rows
            ],
        },
        indent=2,
    )


def chart_to_csv(chart: ChartData) -> str:
    """CSV matrix: one column per series, one row per x label."""
    xs: list[str] = []
    for series in chart.series:
        for x, _ in series.points:
            if x not in xs:
                xs.append(x)
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["period"] + chart.labels)
    columns = {
        s.label: {x: v for x, v in s.points} for s in chart.series
    }
    for x in xs:
        row: list[Any] = [x]
        for label in chart.labels:
            v = columns[label].get(x)
            row.append("" if v is None else f"{v:.6f}")
        writer.writerow(row)
    return buf.getvalue()


def chart_to_json(chart: ChartData) -> str:
    return json.dumps(chart.to_dict(), indent=2)
