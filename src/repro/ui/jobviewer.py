"""The Job Viewer: per-job accounting, performance timeseries, job script.

"With XDMoD's Job Viewer, users can probe performance data about a job's
executable, its accounting data, job scripts, application, and timeseries
plots of metrics such as CPU user, flops, parallel file system usage, and
memory usage."  Access is ACL-scoped: users see their own jobs, PIs their
group's, center staff everything (:func:`repro.auth.job_viewer_allowed`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..auth.accounts import AuthError, Session, job_viewer_allowed
from ..timeutil import iso
from ..warehouse import Schema


class JobNotFoundError(LookupError):
    """No such job in this instance's warehouse."""


@dataclass(frozen=True)
class JobDetail:
    """Everything the Job Viewer shows for one job."""

    accounting: Mapping[str, Any]
    performance_summary: Mapping[str, float] | None
    timeseries: Mapping[str, list[float]] | None
    timeseries_interval_s: int | None
    job_script: str | None

    @property
    def has_performance(self) -> bool:
        return self.performance_summary is not None


class JobViewer:
    """Per-job detail lookups over one instance schema."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema

    def _resource_id(self, resource: str) -> int:
        for row in self.schema.table("dim_resource").rows():
            if row["name"] == resource:
                return row["resource_id"]
        raise JobNotFoundError(f"unknown resource {resource!r}")

    def _labels(self) -> dict[str, dict[int, str]]:
        out: dict[str, dict[int, str]] = {}
        pairs = {
            "dim_person": ("person_id", "username"),
            "dim_pi": ("pi_id", "username"),
            "dim_application": ("app_id", "name"),
            "dim_queue": ("queue_id", "name"),
            "dim_resource": ("resource_id", "name"),
        }
        for table, (key, label) in pairs.items():
            out[table] = {
                row[key]: row[label] for row in self.schema.table(table).rows()
            }
        return out

    def fetch(
        self,
        resource: str,
        job_id: int,
        *,
        session: Session | None = None,
    ) -> JobDetail:
        """Fetch one job's full detail, enforcing the viewer ACL.

        Without a session the call is administrative (tests, exports).
        """
        resource_id = self._resource_id(resource)
        fact = self.schema.table("fact_job").get((resource_id, job_id))
        if fact is None:
            raise JobNotFoundError(f"no job {job_id} on {resource!r}")
        labels = self._labels()
        owner = labels["dim_person"].get(fact["person_id"], "?")
        pi = labels["dim_pi"].get(fact["pi_id"], "?")
        if session is not None and not job_viewer_allowed(
            session, job_owner=owner, job_pi=pi
        ):
            raise AuthError(
                f"{session.username!r} may not view job {job_id} on {resource!r}"
            )
        accounting = {
            "job_id": fact["job_id"],
            "resource": resource,
            "user": owner,
            "pi": pi,
            "application": labels["dim_application"].get(fact["app_id"], "?"),
            "queue": labels["dim_queue"].get(fact["queue_id"], "?"),
            "submit": iso(fact["submit_ts"]),
            "start": iso(fact["start_ts"]),
            "end": iso(fact["end_ts"]),
            "nodes": fact["nodes"],
            "cores": fact["cores"],
            "walltime_s": fact["walltime_s"],
            "wait_s": fact["wait_s"],
            "cpu_hours": fact["cpu_hours"],
            "xdsu": fact["xdsu"],
            "state": fact["state"],
            "exit_code": fact["exit_code"],
        }
        summary = None
        series = None
        interval = None
        script = None
        if self.schema.has_table("fact_job_perf"):
            perf = self.schema.table("fact_job_perf").get((resource_id, job_id))
            if perf is not None:
                summary = {
                    k: v for k, v in perf.items()
                    if k not in ("job_id", "resource_id")
                }
        if self.schema.has_table("job_timeseries"):
            ts_row = self.schema.table("job_timeseries").get((resource_id, job_id))
            if ts_row is not None:
                series = ts_row["series"]
                interval = ts_row["interval_s"]
                script = ts_row["job_script"]
        return JobDetail(
            accounting=accounting,
            performance_summary=summary,
            timeseries=series,
            timeseries_interval_s=interval,
            job_script=script,
        )

    def search(
        self,
        *,
        user: str | None = None,
        resource: str | None = None,
        state: str | None = None,
        limit: int = 50,
    ) -> list[dict[str, Any]]:
        """Find jobs by user/resource/state (the viewer's search box)."""
        labels = self._labels()
        person_ids = None
        if user is not None:
            person_ids = {
                pid for pid, name in labels["dim_person"].items() if name == user
            }
        resource_ids = None
        if resource is not None:
            resource_ids = {
                rid for rid, name in labels["dim_resource"].items()
                if name == resource
            }
        out = []
        for fact in self.schema.table("fact_job").rows():
            if person_ids is not None and fact["person_id"] not in person_ids:
                continue
            if resource_ids is not None and fact["resource_id"] not in resource_ids:
                continue
            if state is not None and fact["state"] != state:
                continue
            out.append(
                {
                    "job_id": fact["job_id"],
                    "resource": labels["dim_resource"].get(fact["resource_id"]),
                    "user": labels["dim_person"].get(fact["person_id"]),
                    "state": fact["state"],
                    "end": iso(fact["end_ts"]),
                    "cpu_hours": fact["cpu_hours"],
                }
            )
            if len(out) >= limit:
                break
        return out
