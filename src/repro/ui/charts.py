"""Chart-data construction: the plotting surface of the XDMoD web UI.

The web interface "enables users to chart and explore usage data" with
timeseries and aggregate views over any time range.  A :class:`ChartData`
is the JSON-ready description a front end would render — title, axes, and
ordered series — built from a realm query.  Figures 1, 6, and 7 of the
paper are ChartData instances produced by the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..core.identity import IdentityMap
from ..realms.base import Realm, RealmResult
from ..warehouse import Schema


@dataclass
class Series:
    """One plotted line/bar group."""

    label: str
    points: list[tuple[str, float | None]]  # (x label, y value)

    def values(self) -> list[float | None]:
        return [v for _, v in self.points]

    def total(self) -> float:
        return sum(v for _, v in self.points if v is not None)


@dataclass
class ChartData:
    """A renderable chart: what the ExtJS front end receives."""

    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    view: str = "timeseries"

    def to_dict(self) -> dict[str, Any]:
        return {
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "view": self.view,
            "series": [
                {"label": s.label, "points": [list(p) for p in s.points]}
                for s in self.series
            ],
        }

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(label)

    @property
    def labels(self) -> list[str]:
        return [s.label for s in self.series]


def chart_from_result(
    result: RealmResult,
    *,
    title: str,
    x_label: str = "Period",
    top_n: int | None = None,
) -> ChartData:
    """Build chart data from a realm query result.

    ``top_n`` keeps only the highest-total groups (Figure 1 keeps the top
    three resources), ordered by descending total.
    """
    y_label = f"{result.metric.label}" + (
        f" [{result.metric.unit}]" if result.metric.unit else ""
    )
    chart = ChartData(
        title=title,
        x_label=x_label,
        y_label=y_label,
        view="timeseries" if any(r.period_start is not None for r in result.rows) else "aggregate",
    )
    series_map = result.series()
    order = [g for g, _ in sorted(result.totals().items(), key=lambda kv: -kv[1])]
    for group in order:
        if group not in series_map:
            continue
        chart.series.append(Series(label=group, points=series_map[group]))
    if top_n is not None:
        chart.series = chart.series[:top_n]
    return chart


class ChartBuilder:
    """Convenience facade: realm + sources -> charts."""

    def __init__(
        self,
        realm: Realm,
        sources: Schema | Mapping[str, Schema],
        *,
        idmap: IdentityMap | None = None,
    ) -> None:
        self.realm = realm
        self.sources = sources
        self.idmap = idmap

    def timeseries(
        self,
        metric: str,
        *,
        start: int,
        end: int,
        period: str = "month",
        group_by: str | None = None,
        filters: Mapping[str, Iterable[str]] | None = None,
        title: str | None = None,
        top_n: int | None = None,
    ) -> ChartData:
        result = self.realm.query(
            self.sources, metric,
            start=start, end=end, period=period,
            group_by=group_by, filters=filters,
            view="timeseries", idmap=self.idmap,
        )
        return chart_from_result(
            result,
            title=title or f"{self.realm.name}: {result.metric.label}",
            top_n=top_n,
        )

    def aggregate(
        self,
        metric: str,
        *,
        start: int,
        end: int,
        period: str = "month",
        group_by: str | None = None,
        filters: Mapping[str, Iterable[str]] | None = None,
        title: str | None = None,
        top_n: int | None = None,
    ) -> ChartData:
        result = self.realm.query(
            self.sources, metric,
            start=start, end=end, period=period,
            group_by=group_by, filters=filters,
            view="aggregate", idmap=self.idmap,
        )
        chart = chart_from_result(
            result,
            title=title or f"{self.realm.name}: {result.metric.label}",
            x_label=group_by or "total",
            top_n=top_n,
        )
        chart.view = "aggregate"
        return chart
