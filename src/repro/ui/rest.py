"""HTTP JSON API: the machine face of the XDMoD web interface.

A thin stdlib ``http.server`` wrapper exposing realm catalogs and queries
for one instance (or a federation hub's combined sources):

- ``GET /health`` — liveness; with a federation monitor attached it
  becomes a readiness payload (``degraded_members``, ``max_lag``, and
  the SLO engine's currently firing alerts)
- ``GET /status`` — full :class:`~repro.core.monitor.FederationStatus`
  plus a metrics-registry snapshot, as JSON (needs a monitor)
- ``GET /metrics`` — the telemetry registry in Prometheus text format
  (needs an :class:`~repro.obs.Observability` bundle); each scrape also
  snapshots the registry into the metrics history
- ``GET /alerts`` — evaluate and dump the monitor's SLO alert states
- ``GET /realms`` — realm catalog with metrics and dimensions
- ``GET /query?realm=jobs&metric=xdsu&start=...&end=...&period=month``
  ``&group_by=resource&view=timeseries&filter.resource=comet,stampede``
- ``GET /chart?...`` — same parameters, chart-shaped payload

Authentication: optional bearer tokens; when enabled, ``/query`` and
``/chart`` require ``Authorization: Bearer <token>`` naming a session
token opened through :mod:`repro.auth` (the public catalog stays open, as
XDMoD's public charts do).
"""

from __future__ import annotations

import dataclasses
import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping

from ..auth.accounts import Session
from ..obs import PROMETHEUS_CONTENT_TYPE, Observability
from ..realms.base import Realm, RealmQueryError
from ..warehouse import Schema
from .charts import chart_from_result


class XdmodApi:
    """The request-independent application object.

    ``obs`` enables ``GET /metrics``; ``monitor`` (a
    :class:`~repro.core.monitor.FederationMonitor`) enables
    ``GET /status`` and upgrades ``GET /health`` to readiness.
    """

    def __init__(
        self,
        realms: Mapping[str, Realm],
        sources: Schema | Mapping[str, Schema],
        *,
        require_auth: bool = False,
        obs: Observability | None = None,
        monitor: Any = None,
    ) -> None:
        self.realms = dict(realms)
        self.sources = sources
        self.require_auth = require_auth
        self.obs = obs
        self.monitor = monitor
        self._sessions: dict[str, Session] = {}

    def register_session(self, session: Session) -> None:
        self._sessions[session.token] = session

    def _authorized(self, headers: Mapping[str, str]) -> bool:
        if not self.require_auth:
            return True
        auth = headers.get("Authorization", "")
        if not auth.startswith("Bearer "):
            return False
        session = self._sessions.get(auth[len("Bearer "):])
        return session is not None and not session.expired

    # -- endpoint handlers ----------------------------------------------------

    def handle(self, path: str, headers: Mapping[str, str]) -> tuple[int, dict[str, Any]]:
        """Dispatch one GET; returns (status, json payload)."""
        parsed = urllib.parse.urlparse(path)
        params = {
            k: v[0] for k, v in urllib.parse.parse_qs(parsed.query).items()
        }
        route = parsed.path.rstrip("/") or "/"
        if route in ("/", "/health"):
            return self._health()
        if route == "/status":
            return self._status()
        if route == "/alerts":
            return self._alerts()
        if route == "/metrics":
            if self.obs is None:
                return 404, {"error": "no telemetry registry attached"}
            return 200, self.obs.registry.snapshot()
        if route == "/realms":
            return 200, {
                name: {
                    "metrics": sorted(realm.metrics),
                    "dimensions": sorted(realm.dimensions),
                }
                for name, realm in self.realms.items()
            }
        if route in ("/query", "/chart"):
            if not self._authorized(headers):
                return 401, {"error": "authentication required"}
            return self._query(params, chart=(route == "/chart"))
        return 404, {"error": f"no route {route!r}"}

    def handle_raw(
        self, path: str, headers: Mapping[str, str]
    ) -> tuple[int, str, bytes]:
        """Dispatch one GET; returns (status, content type, body bytes).

        ``/metrics`` renders Prometheus text exposition; every other
        route delegates to :meth:`handle` and serializes as JSON.
        """
        route = urllib.parse.urlparse(path).path.rstrip("/") or "/"
        if route == "/metrics" and self.obs is not None:
            # a scrape is a sampling point: snapshot into the history too
            self.obs.history.record()
            body = self.obs.registry.render_prometheus().encode("utf-8")
            return 200, PROMETHEUS_CONTENT_TYPE, body
        status, payload = self.handle(path, headers)
        return status, "application/json", json.dumps(payload).encode()

    def _health(self) -> tuple[int, dict[str, Any]]:
        """Liveness, upgraded to readiness when a monitor is attached."""
        payload: dict[str, Any] = {
            "status": "ok", "realms": sorted(self.realms),
        }
        if self.monitor is not None:
            snapshot = self.monitor.status()
            payload["max_lag"] = snapshot.max_lag
            payload["degraded_members"] = list(snapshot.degraded_members)
            payload["all_consistent"] = snapshot.all_consistent
            if snapshot.degraded_members:
                payload["status"] = "degraded"
            if getattr(self.monitor, "alerts", None) is not None:
                firing = [
                    s.to_dict() for s in self.monitor.evaluate_alerts()
                    if s.status == "firing"
                ]
                payload["alerts_firing"] = firing
                if firing:
                    payload["status"] = "degraded"
        return 200, payload

    def _alerts(self) -> tuple[int, dict[str, Any]]:
        if self.monitor is None or getattr(self.monitor, "alerts", None) is None:
            return 404, {"error": "no federation monitor attached"}
        self.monitor.evaluate_alerts()
        return 200, self.monitor.alerts.to_dict()

    def _status(self) -> tuple[int, dict[str, Any]]:
        if self.monitor is None:
            return 404, {"error": "no federation monitor attached"}
        snapshot = self.monitor.status()
        members = []
        for member in snapshot.members:
            entry = dataclasses.asdict(member)
            entry["health"] = member.health
            entry["avg_sync_seconds"] = member.avg_sync_seconds
            members.append(entry)
        return 200, {
            "hub": snapshot.hub,
            "all_consistent": snapshot.all_consistent,
            "max_lag": snapshot.max_lag,
            "degraded_members": list(snapshot.degraded_members),
            "totals": dict(snapshot.totals),
            "members": members,
            "metrics": (
                self.obs.registry.snapshot() if self.obs is not None else {}
            ),
        }

    def _query(self, params: Mapping[str, str], *, chart: bool) -> tuple[int, dict[str, Any]]:
        try:
            realm = self.realms[params["realm"]]
        except KeyError:
            return 400, {"error": f"unknown realm {params.get('realm')!r}"}
        try:
            metric = params["metric"]
            start = int(params["start"])
            end = int(params["end"])
        except (KeyError, ValueError) as exc:
            return 400, {"error": f"bad parameters: {exc}"}
        filters: dict[str, set[str]] = {}
        for key, value in params.items():
            if key.startswith("filter."):
                filters[key[len("filter."):]] = set(value.split(","))
        try:
            result = realm.query(
                self.sources,
                metric,
                start=start,
                end=end,
                period=params.get("period", "month"),
                group_by=params.get("group_by") or None,
                filters=filters or None,
                view=params.get("view", "timeseries"),
            )
        except RealmQueryError as exc:
            return 400, {"error": str(exc)}
        if chart:
            data = chart_from_result(
                result,
                title=params.get("title", f"{params['realm']}:{metric}"),
                top_n=int(params["top_n"]) if "top_n" in params else None,
            )
            return 200, data.to_dict()
        return 200, {
            "metric": metric,
            "rows": [
                {
                    "group": r.group,
                    "period": r.period_label,
                    "period_start": r.period_start,
                    "value": r.value,
                }
                for r in result.rows
            ],
        }


class _Handler(BaseHTTPRequestHandler):
    api: XdmodApi  # set by server factory

    def do_GET(self) -> None:  # noqa: N802 (stdlib API)
        status, content_type, body = self.api.handle_raw(
            self.path, dict(self.headers)
        )
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:  # silence test noise
        pass


class ApiServer:
    """Threaded HTTP server wrapper with context-manager lifetime."""

    def __init__(self, api: XdmodApi, *, host: str = "127.0.0.1", port: int = 0) -> None:
        handler = type("BoundHandler", (_Handler,), {"api": api})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[:2]  # type: ignore[return-value]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ApiServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "ApiServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
