"""HTTP JSON API: the machine face of the XDMoD web interface.

A thin stdlib ``http.server`` wrapper exposing realm catalogs and queries
for one instance (or a federation hub's combined sources):

- ``GET /health`` — liveness; with a federation monitor attached it
  becomes a readiness payload (``degraded_members``, ``max_lag``, and
  the SLO engine's currently firing alerts)
- ``GET /status`` — full :class:`~repro.core.monitor.FederationStatus`
  plus a metrics-registry snapshot, as JSON (needs a monitor)
- ``GET /metrics`` — the telemetry registry in Prometheus text format
  (needs an :class:`~repro.obs.Observability` bundle); each scrape also
  snapshots the registry into the metrics history
- ``GET /fleet/metrics`` — the merged fleet exposition: every member's
  shipped telemetry under its ``member`` label, from the hub's
  :class:`~repro.obs.fleet.FleetTSDB` (needs a monitor over a hub)
- ``GET /alerts`` — evaluate and dump the monitor's SLO alert states
- ``GET /realms`` — realm catalog with metrics and dimensions
- ``GET /query?realm=jobs&metric=xdsu&start=...&end=...&period=month``
  ``&group_by=resource&view=timeseries&filter.resource=comet,stampede``
- ``GET /chart?...`` — same parameters, chart-shaped payload
- ``GET /jobs/efficiency?start=...&end=...&application=...&member=...``
  — the federation-wide per-job efficiency ranking (least efficient
  first) from the analytics fact table; same cache/ETag/pagination
  contract as ``/query``

``/query`` and ``/chart`` are cache-first: they delegate to a
:class:`~repro.ui.serving.QueryService` whose result cache is keyed on
the canonical request and invalidated by the warehouse ``data_version``
counters, support ``offset``/``limit`` pagination, and carry a strong
``ETag`` so a client re-sending it via ``If-None-Match`` gets an empty
``304 Not Modified`` instead of a re-serialized body.  ``X-Cache`` on
each response says whether the answer was a ``hit``, ``miss``, ``stale``
recompute, or cache ``bypass``.

Authentication: optional bearer tokens; when enabled, ``/query`` and
``/chart`` require ``Authorization: Bearer <token>`` naming a session
token opened through :mod:`repro.auth` (the public catalog stays open, as
XDMoD's public charts do).  Expired sessions are evicted from the token
table on registration and on any authorized request, so the table tracks
live sessions rather than everything ever issued.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping

from ..analysis.sanitizer import create_lock
from ..auth.accounts import Session
from ..obs import PROMETHEUS_CONTENT_TYPE, Observability, alert_rule
from ..realms.base import Realm
from ..warehouse import Schema
from .serving import (
    QueryService,
    ServingParamError,
    ServingResult,
    _int_param,
    json_sanitize,
)

#: Routes that get their own label on the request counter/histogram;
#: anything else is folded into "other" to bound label cardinality.
_KNOWN_ROUTES = (
    "/", "/health", "/status", "/alerts", "/metrics", "/fleet/metrics",
    "/realms", "/query", "/chart", "/jobs/efficiency",
)


def _etag_matches(if_none_match: str | None, etag: str) -> bool:
    """RFC 9110 ``If-None-Match``: comma list, weak prefixes, ``*``."""
    if not if_none_match:
        return False
    for candidate in if_none_match.split(","):
        candidate = candidate.strip()
        if candidate == "*":
            return True
        if candidate.startswith("W/"):
            candidate = candidate[2:]
        if candidate == etag:
            return True
    return False


class XdmodApi:
    """The request-independent application object.

    ``obs`` enables ``GET /metrics`` and the request/cache telemetry;
    ``monitor`` (a :class:`~repro.core.monitor.FederationMonitor`)
    enables ``GET /status`` and upgrades ``GET /health`` to readiness.
    ``cache=False`` turns the serving layer into a pass-through (every
    read recomputes) — the benchmark baseline and the ``serve
    --no-cache`` escape hatch.
    """

    def __init__(
        self,
        realms: Mapping[str, Realm],
        sources: Schema | Mapping[str, Schema],
        *,
        require_auth: bool = False,
        obs: Observability | None = None,
        monitor: Any = None,
        cache: bool = True,
        cache_entries: int = 512,
    ) -> None:
        self.realms = dict(realms)
        self.sources = sources
        self.require_auth = require_auth
        self.obs = obs
        self.monitor = monitor
        self.serving = QueryService(
            realms, sources, obs=obs, enabled=cache, max_entries=cache_entries
        )
        # ThreadingHTTPServer dispatches each request on its own thread,
        # so registration, eviction, and auth checks race without a lock:
        # two requests presenting the same expired token both pass the
        # ``in`` check and the second ``del`` raises KeyError (a 500 to
        # the client).
        self._session_lock = create_lock("XdmodApi.sessions")  # guards: _sessions
        self._sessions: dict[str, Session] = {}
        self._c_requests = None
        self._h_latency = None
        if obs is not None:
            self._c_requests = obs.registry.counter(
                "serving_requests_total",
                "API requests by route and status class",
                ("route", "class"),
            )
            self._h_latency = obs.registry.histogram(
                "serving_request_seconds",
                "API request latency by route",
                ("route",),
            )

    # -- sessions -------------------------------------------------------------

    def register_session(self, session: Session) -> None:
        with self._session_lock:
            self._evict_expired_sessions()
            self._sessions[session.token] = session

    def _evict_expired_sessions(self) -> None:
        """Drop expired tokens so the table is bounded by live sessions.

        Caller must hold ``_session_lock``.
        """
        for token in [t for t, s in self._sessions.items() if s.expired]:
            # repolint: ignore[unguarded-shared-mutation] -- lock held by caller (see docstring)
            del self._sessions[token]

    def _authorized(self, headers: Mapping[str, str]) -> bool:
        if not self.require_auth:
            return True
        auth = headers.get("Authorization", "")
        if not auth.startswith("Bearer "):
            return False
        token = auth[len("Bearer "):]
        with self._session_lock:
            session = self._sessions.get(token)
            if session is None:
                return False
            if session.expired:
                # pop, not del: a concurrent request with the same token
                # may already have evicted it
                self._sessions.pop(token, None)
                return False
        return True

    # -- endpoint handlers ----------------------------------------------------

    def handle(self, path: str, headers: Mapping[str, str]) -> tuple[int, dict[str, Any]]:
        """Dispatch one GET; returns (status, json payload)."""
        status, payload, _ = self.handle_full(path, headers)
        return status, payload

    def handle_full(
        self, path: str, headers: Mapping[str, str]
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        """Dispatch one GET; returns (status, payload, extra headers).

        The extra headers carry the serving layer's ``ETag`` and
        ``X-Cache``; a matching ``If-None-Match`` collapses the response
        to an empty ``304``.
        """
        parsed = urllib.parse.urlparse(path)
        params = {
            k: v[0] for k, v in urllib.parse.parse_qs(parsed.query).items()
        }
        route = parsed.path.rstrip("/") or "/"
        if route in ("/", "/health"):
            return (*self._health(), {})
        if route == "/status":
            return (*self._status(), {})
        if route == "/alerts":
            return (*self._alerts(), {})
        if route == "/metrics":
            if self.obs is None:
                return 404, {"error": "no telemetry registry attached"}, {}
            return 200, self.obs.registry.snapshot(), {}
        if route == "/realms":
            return 200, {
                name: {
                    "metrics": sorted(realm.metrics),
                    "dimensions": sorted(realm.dimensions),
                }
                for name, realm in self.realms.items()
            }, {}
        if route in ("/query", "/chart", "/jobs/efficiency"):
            if not self._authorized(headers):
                return 401, {"error": "authentication required"}, {}
            if route == "/jobs/efficiency":
                result = self._jobs_efficiency(params)
            else:
                result = self.serving.respond(params, chart=(route == "/chart"))
            extra: dict[str, str] = {}
            if result.etag is not None:
                extra["ETag"] = result.etag
                extra["X-Cache"] = result.cache
                if _etag_matches(headers.get("If-None-Match"), result.etag):
                    return 304, {}, extra
            return result.status, result.payload, extra
        return 404, {"error": f"no route {route!r}"}, {}

    def _jobs_efficiency(self, params: Mapping[str, str]) -> ServingResult:
        """The per-job efficiency ranking, least efficient first.

        Served cache-first through the query service's generic path: the
        full ranking is cached under one key per (window, application,
        member) and invalidated by the source schemas' ``data_version``
        stamps — a replication sync that lands new analytics rows makes
        the next read a ``stale`` recompute, not a wrong answer.
        """
        realm = self.realms.get("supremm")
        if realm is None or not hasattr(realm, "job_scores"):
            return ServingResult(404, {"error": "supremm realm not attached"})
        try:
            start = _int_param(params, "start")
            end = _int_param(params, "end")
            offset = _int_param(params, "offset", default=0, minimum=0)
            limit = _int_param(params, "limit", minimum=0)
        except ServingParamError as exc:
            return ServingResult(400, {"error": str(exc)})
        application = params.get("application") or None
        member = params.get("member") or None
        key = ("jobs_efficiency", start, end, application, member)

        def compute() -> dict[str, Any]:
            return {
                "jobs": realm.job_scores(
                    self.sources,
                    start=start, end=end,
                    application=application, member=member,
                )
            }

        return self.serving.respond_cached(
            key, compute,
            offset=offset or 0, limit=limit, field="jobs",
        )

    def handle_raw(
        self, path: str, headers: Mapping[str, str]
    ) -> tuple[int, str, bytes]:
        """Dispatch one GET; returns (status, content type, body bytes)."""
        status, content_type, body, _ = self.handle_http(path, headers)
        return status, content_type, body

    def handle_http(
        self, path: str, headers: Mapping[str, str]
    ) -> tuple[int, str, bytes, dict[str, str]]:
        """The full HTTP dispatch: (status, content type, body, headers).

        ``/metrics`` renders Prometheus text exposition; every other
        route goes through :meth:`handle_full` and serializes as strict
        JSON (non-finite floats become their ``"NaN"``/``"+Inf"``
        string spellings — ``json.dumps`` would otherwise emit tokens no
        JSON parser accepts).  Any handler exception is caught here and
        answered as a 500 JSON body: a bug in one handler must cost one
        error response, not a hung client on a dead handler thread.
        """
        route = urllib.parse.urlparse(path).path.rstrip("/") or "/"
        metric_route = route if route in _KNOWN_ROUTES else "other"
        started = self.obs.clock.now() if self.obs is not None else 0.0
        try:
            if route == "/metrics" and self.obs is not None:
                # a scrape is a sampling point: snapshot into the history too
                self.obs.history.record()
                body = self.obs.registry.render_prometheus().encode("utf-8")
                response = 200, PROMETHEUS_CONTENT_TYPE, body, {}
            elif route == "/fleet/metrics":
                fleet = self._fleet()
                if fleet is None:
                    body = json.dumps(
                        {"error": "no fleet TSDB attached"}
                    ).encode()
                    response = 404, "application/json", body, {}
                else:
                    body = fleet.render_prometheus().encode("utf-8")
                    response = 200, PROMETHEUS_CONTENT_TYPE, body, {}
            else:
                status, payload, extra = self.handle_full(path, headers)
                if status == 304:
                    body = b""
                else:
                    body = json.dumps(
                        json_sanitize(payload), allow_nan=False
                    ).encode()
                response = status, "application/json", body, extra
        except Exception as exc:  # the 500 guard: no exception escapes
            body = json.dumps(
                {"error": f"internal error: {type(exc).__name__}: {exc}"}
            ).encode()
            response = 500, "application/json", body, {}
        if self.obs is not None:
            self._c_requests.labels(
                route=metric_route, **{"class": f"{response[0] // 100}xx"}
            ).inc()
            self._h_latency.labels(route=metric_route).observe(
                self.obs.clock.now() - started
            )
        return response

    def _fleet(self):
        """The hub's fleet TSDB when a monitor over a hub is attached."""
        return getattr(getattr(self.monitor, "hub", None), "fleet", None)

    def _health(self) -> tuple[int, dict[str, Any]]:
        """Liveness, upgraded to readiness when a monitor is attached."""
        payload: dict[str, Any] = {
            "status": "ok", "realms": sorted(self.realms),
        }
        fleet = self._fleet()
        if fleet is not None and fleet.enabled:
            stale = fleet.stale_members(
                alert_rule("fleet_telemetry_stale").max_age_s
            )
            payload["fleet_stale_members"] = stale
            if stale:
                payload["status"] = "degraded"
        if self.monitor is not None:
            snapshot = self.monitor.status()
            payload["max_lag"] = snapshot.max_lag
            payload["degraded_members"] = list(snapshot.degraded_members)
            payload["all_consistent"] = snapshot.all_consistent
            if snapshot.degraded_members:
                payload["status"] = "degraded"
            if getattr(self.monitor, "alerts", None) is not None:
                firing = [
                    s.to_dict() for s in self.monitor.evaluate_alerts()
                    if s.status == "firing"
                ]
                payload["alerts_firing"] = firing
                if firing:
                    payload["status"] = "degraded"
            plane = getattr(self.monitor, "analytics", None)
            if plane is not None:
                payload["anomalies_open"] = plane.anomalies_open
        if "anomalies_open" not in payload and self.obs is not None:
            last = self.obs.history.last("analytics_anomalies_open_rows")
            if last is not None:
                payload["anomalies_open"] = int(last)
        return 200, payload

    def _alerts(self) -> tuple[int, dict[str, Any]]:
        if self.monitor is None or getattr(self.monitor, "alerts", None) is None:
            return 404, {"error": "no federation monitor attached"}
        self.monitor.evaluate_alerts()
        return 200, self.monitor.alerts.to_dict()

    def _status(self) -> tuple[int, dict[str, Any]]:
        if self.monitor is None:
            return 404, {"error": "no federation monitor attached"}
        snapshot = self.monitor.status()
        members = []
        for member in snapshot.members:
            entry = dataclasses.asdict(member)
            entry["health"] = member.health
            entry["avg_sync_seconds"] = member.avg_sync_seconds
            members.append(entry)
        return 200, {
            "hub": snapshot.hub,
            "all_consistent": snapshot.all_consistent,
            "max_lag": snapshot.max_lag,
            "degraded_members": list(snapshot.degraded_members),
            "totals": dict(snapshot.totals),
            "members": members,
            "metrics": (
                self.obs.registry.snapshot() if self.obs is not None else {}
            ),
        }


class _Handler(BaseHTTPRequestHandler):
    api: XdmodApi  # set by server factory

    def do_GET(self) -> None:  # noqa: N802 (stdlib API)
        status, content_type, body, extra = self.api.handle_http(
            self.path, dict(self.headers)
        )
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:  # silence test noise
        pass


class ApiServer:
    """Threaded HTTP server wrapper with context-manager lifetime."""

    def __init__(self, api: XdmodApi, *, host: str = "127.0.0.1", port: int = 0) -> None:
        handler = type("BoundHandler", (_Handler,), {"api": api})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[:2]  # type: ignore[return-value]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ApiServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "ApiServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
