#!/usr/bin/env python
"""Federated XDMoD: the paper's core scenario (Figures 1-3, Table I).

Three independent XDMoD instances — monitoring Comet-, Stampede2-, and
Stampede-shaped resources — replicate their HPC Jobs realm into a central
federation hub (fan-in, Figure 2).  The hub re-aggregates raw data under
its own Table-I-style aggregation levels and serves a unified Figure-1
chart in standardized XD SUs.  The demo also exercises loose federation,
consistency checking, hub-as-backup, and the identity-mapping question.

Run:  python examples/federation_demo.py
"""

from __future__ import annotations

from repro import FederationHub, XdmodInstance, check_federation, jobs_realm
from repro.aggregation import AggregationConfig, TABLE1_FEDERATION_HUB
from repro.core import (
    IdentityMap,
    federated_user_counts,
    regenerate_satellite,
    standardize_federation,
    verify_regeneration,
)
from repro.etl import WAREHOUSE_SCHEMA
from repro.simulators import (
    WorkloadGenerator,
    figure1_sites,
    simulate_resource,
    to_sacct_log,
)
from repro.timeutil import ts
from repro.ui import ChartBuilder, render_table


def main() -> None:
    start, end = ts(2017, 1, 1), ts(2018, 1, 1)
    sites = figure1_sites(scale=0.2)

    # Section II-C6: benchmark every resource; derive XD SU factors.
    conversion, hpl = standardize_federation(
        {name: preset.resource for name, preset in sites.items()}
    )
    print("HPL-derived XD SU conversion factors:")
    for name, result in sorted(hpl.items()):
        print(f"  {name:<11} Rmax {result.rmax_tflops:7.1f} TF  "
              f"-> {conversion.factor(name):.2f} XD SU / CPU-hour")

    # The hub defines its own aggregation levels (Table I).
    hub = FederationHub(
        "federation_hub",
        aggregation=AggregationConfig(walltime_levels=TABLE1_FEDERATION_HUB),
        conversion=conversion,
    )

    # One satellite per site; the third joins loosely to show the
    # heterogeneous model (Section II-C2).
    satellites: dict[str, XdmodInstance] = {}
    for i, (name, preset) in enumerate(sorted(sites.items())):
        instance = XdmodInstance(f"site_{name}", conversion=conversion)
        records = simulate_resource(
            preset.resource,
            WorkloadGenerator(preset.workload).generate(start, end),
        )
        instance.pipeline.ingest_sacct(
            to_sacct_log(records), default_resource=name
        )
        mode = "loose" if i == 2 else "tight"
        hub.join(instance, mode=mode)
        satellites[name] = instance
        print(f"joined {instance.name} ({mode}): {len(records)} jobs")

    # Live replication: new data on a satellite flows on sync().
    print(f"replication lag after join: {hub.lag()}")

    # Hub-side aggregation under the hub's levels.
    hub.aggregate_federation(["month"])

    # Invariant: the hub never alters raw replicated data.
    check = check_federation(hub, strict=True)
    totals = check.federation_totals()
    print(f"consistency check: OK — federation-wide "
          f"{totals['n_jobs']:,.0f} jobs, {totals['xdsu']:,.0f} XD SUs")

    # Figure 1: top three resources by XD SUs charged, monthly.
    chart = ChartBuilder(jobs_realm(), hub.federated_schemas()).timeseries(
        "xdsu", start=start, end=end, group_by="resource", top_n=3,
        title="Figure 1: top 3 resources by total XD SUs charged, 2017",
    )
    print()
    print(render_table(chart))
    ranked = [s.label for s in chart.series]
    print(f"\nannual ranking: {' > '.join(ranked)}")

    # Section II-D4: identity across the federation.
    users = {
        name: [r["username"] for r in inst.schema.table("dim_person").rows()]
        for name, inst in satellites.items()
    }
    unmapped = federated_user_counts(hub)
    idmap = IdentityMap.from_username_match(
        {f"site_{k}": v for k, v in users.items()}
    )
    mapped = federated_user_counts(hub, idmap)
    print(f"\nidentity: {unmapped['qualified']} federated user identities; "
          f"{mapped['canonical']} canonical people after username matching "
          "(the paper's future-work identity mapping)")

    # Section II-E4: the hub as a backup — regenerate a satellite.
    victim = f"site_{ranked[-1]}"
    restored = regenerate_satellite(hub, victim)
    report = verify_regeneration(
        hub.member(victim).instance.schema,
        restored.schema(WAREHOUSE_SCHEMA),
    )
    print(f"backup regeneration of {victim}: "
          f"{'EXACT' if report.exact else 'MISMATCH'} "
          f"({len(report.matching)} tables verified)")


if __name__ == "__main__":
    main()
