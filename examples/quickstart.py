#!/usr/bin/env python
"""Quickstart: a single Open XDMoD instance on synthetic SLURM logs.

Builds the whole single-site pipeline the paper's Section I describes:

1. simulate a CCR-style cluster and its job stream (sacct format),
2. shred + ingest into the instance's data warehouse,
3. run the nightly aggregation,
4. chart metrics, drill down, inspect one job in the Job Viewer,
5. export data as CSV.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import XdmodInstance, jobs_realm
from repro.simulators import (
    ConversionTable,
    WorkloadGenerator,
    ccr_like_site,
    generate_performance_batch,
    simulate_resource,
    to_sacct_log,
)
from repro.timeutil import ts
from repro.ui import ChartBuilder, JobViewer, UsageExplorer, render_table, result_to_csv


def main() -> None:
    # --- 1. synthesize six months of accounting data -------------------
    site = ccr_like_site(scale=0.25)
    start, end = ts(2017, 1, 1), ts(2017, 7, 1)
    records = simulate_resource(
        site.resource, WorkloadGenerator(site.workload).generate(start, end)
    )
    sacct_dump = to_sacct_log(records)
    print(f"simulated {len(records)} jobs on {site.name} "
          f"({site.resource.total_cores} cores)")

    # --- 2. ingest into a fresh XDMoD instance --------------------------
    # the generator exports the institutional hierarchy + science fields,
    # playing the role of Open XDMoD's hierarchy.json configuration
    generator = WorkloadGenerator(site.workload)
    conversion = ConversionTable.benchmark_resources({site.name: site.resource})
    instance = XdmodInstance(
        "ccr_xdmod",
        conversion=conversion,
        directory=generator.person_directory(),
        science_fields=generator.science_fields(),
    )
    ingested = instance.pipeline.ingest_sacct(
        sacct_dump, default_resource=site.name
    )
    perf = generate_performance_batch(records, site.resource, max_jobs=25)
    instance.pipeline.ingest_performance(perf)
    print(f"ingested {ingested} jobs + {len(perf)} SUPReMM job profiles")

    # --- 3. nightly aggregation ----------------------------------------
    built = instance.aggregate(["month"])
    print(f"aggregation built: {built}")

    # --- 4. chart, drill down, job viewer --------------------------------
    builder = ChartBuilder(jobs_realm(), instance.schema)
    chart = builder.timeseries(
        "cpu_hours", start=start, end=end, group_by="application",
        top_n=5, title="Top applications by CPU hours (monthly)",
    )
    print()
    print(render_table(chart))

    # institutional drill-down: decanal unit -> department -> user
    explorer = UsageExplorer(jobs_realm(), instance.schema)
    explorer.configure("cpu_hours", start=start, end=end)
    explorer.group_by("decanal_unit")
    units = explorer.fetch().totals()
    top_unit = max(units, key=units.get)
    print(f"\nbusiest decanal unit: {top_unit} "
          f"({units[top_unit]:,.0f} CPU hours); drilling down...")
    explorer.drill_down(top_unit, "department")
    departments = explorer.fetch().totals()
    top_department = max(departments, key=departments.get)
    explorer.drill_down(top_department, "person")
    print(f"top users in {top_unit} / {top_department}:")
    for user, hours in sorted(
        explorer.fetch().totals().items(), key=lambda kv: -kv[1]
    )[:5]:
        print(f"  {user:<10} {hours:>12,.0f} CPU hours")
    print("breadcrumbs:", " -> ".join(explorer.breadcrumbs[-3:]))

    viewer = JobViewer(instance.schema)
    detail = viewer.fetch(site.name, perf[0].job_id)
    acct = detail.accounting
    print(f"\nJob Viewer: job {acct['job_id']} ({acct['application']}) "
          f"by {acct['user']}: {acct['cores']} cores, "
          f"state {acct['state']}, {acct['cpu_hours']:.1f} CPU hours")
    print(f"  perf summary: cpu_user_avg="
          f"{detail.performance_summary['cpu_user_avg']:.2f}, "
          f"mem_used_gb_max={detail.performance_summary['mem_used_gb_max']:.1f}")
    print("  job script (first 3 lines): "
          + " / ".join(detail.job_script.splitlines()[:3]))

    # --- 5. export --------------------------------------------------------
    result = jobs_realm().query(
        instance.schema, "xdsu", start=start, end=end, group_by="queue",
    )
    csv_text = result_to_csv(result)
    print(f"\nCSV export: {len(csv_text.splitlines()) - 1} rows "
          f"(first line: {csv_text.splitlines()[1]})")


if __name__ == "__main__":
    main()
