#!/usr/bin/env python
"""The Aristotle scenario: a federated research cloud with new realms.

Section III of the paper describes the NSF DIBBs "Aristotle" project:
three integrated computational clouds at CCR, Cornell, and UCSB, monitored
by federated XDMoD using the new Cloud and Storage realms.  This example
builds that topology and regenerates the paper's Figure 6 (storage file
count + physical usage by month) and Figure 7 (average core hours per VM
by VM memory size) from the federation hub.

Run:  python examples/aristotle_cloud.py
"""

from __future__ import annotations

from repro import FederationHub, XdmodInstance, cloud_realm, storage_realm
from repro.core import ReplicationFilter
from repro.simulators import (
    CloudConfig,
    CloudSimulator,
    StorageConfig,
    StorageSimulator,
)
from repro.timeutil import ts
from repro.ui import ChartBuilder, render_table

SITES = ("ccr", "cornell", "ucsb")


def main() -> None:
    start, end = ts(2017, 1, 1), ts(2018, 1, 1)
    hub = FederationHub("aristotle_hub")

    for i, site in enumerate(SITES):
        instance = XdmodInstance(f"xdmod_{site}")
        events = CloudSimulator(
            CloudConfig(
                resource=f"{site}_cloud", seed=40 + i,
                vms_per_day=6.0 + 2 * i, n_projects=4 + i,
            )
        ).generate(start, end)
        vms, _ = instance.pipeline.ingest_cloud(events)
        docs = StorageSimulator(
            StorageConfig(resource=f"{site}_storage", seed=40 + i, n_users=20)
        ).generate(start, end)
        snaps, _ = instance.pipeline.ingest_storage(docs)
        # Cloud/storage federation needs the all-realms filter: the initial
        # release replicates jobs only, so we opt into the wider table set.
        hub.join(instance, filter=ReplicationFilter(tables=None))
        print(f"{site}: {vms} VMs, {snaps} storage snapshots federated")

    hub.aggregate_federation(["month"])
    sources = hub.federated_schemas()

    # ---- Figure 6: storage realm, monthly file count + physical usage ----
    storage_charts = ChartBuilder(storage_realm(), sources)
    files = storage_charts.timeseries(
        "file_count", start=start, end=end,
        title="Figure 6a: file count by month (all sites)",
    )
    usage = storage_charts.timeseries(
        "physical_usage_tb", start=start, end=end,
        title="Figure 6b: physical storage usage [TB] by month (all sites)",
    )
    print()
    print(render_table(files))
    print()
    print(render_table(usage, value_format="{:,.1f}"))

    # ---- Figure 7: avg core hours per VM by VM memory size ----------------
    fig7 = ChartBuilder(cloud_realm(), sources).timeseries(
        "avg_core_hours_per_vm", start=start, end=end,
        group_by="memory_level",
        title="Figure 7: average core hours per VM, by VM memory size",
    )
    print()
    print(render_table(fig7, value_format="{:,.1f}"))

    # per-site summary for the project's funding-agency report
    by_site = cloud_realm().query(
        sources, "core_hours", start=start, end=end,
        group_by="resource", view="aggregate",
    ).totals()
    print("\ntotal cloud core hours by site:")
    for name, value in sorted(by_site.items(), key=lambda kv: -kv[1]):
        print(f"  {name:<16} {value:>12,.0f}")


if __name__ == "__main__":
    main()
