#!/usr/bin/env python
"""App-kernel QoS monitoring: catch a resource degradation.

The Application Kernel module (Section I-E) runs fixed benchmark jobs on a
schedule; departures from each kernel's baseline flag quality-of-service
problems.  This example injects a 10-day I/O slowdown into a year of
kernel runs and shows the control-chart detector localizing it.

Run:  python examples/qos_appkernels.py
"""

from __future__ import annotations

from repro.appkernels import (
    AppKernelRunner,
    Degradation,
    availability,
    detect_flags,
    ingest_appkernels,
    merge_incidents,
)
from repro.simulators import ResourceSpec
from repro.timeutil import SECONDS_PER_DAY, iso, ts
from repro.warehouse import Database


def main() -> None:
    resource = ResourceSpec("ub_hpc", 32, 16, 128, 16.0)
    runner = AppKernelRunner(resource, seed=7, failure_rate=0.01)

    # a filesystem problem: I/O kernels slow 80% for ten days in June
    incident_start = ts(2017, 6, 10)
    runner.inject(
        Degradation(
            start_ts=incident_start,
            end_ts=incident_start + 10 * SECONDS_PER_DAY,
            slowdown=1.8,
            kernels=("ior",),
        )
    )
    results = runner.run(ts(2017, 1, 1), ts(2018, 1, 1))
    print(f"executed {len(results)} app-kernel runs across "
          f"{len({(r.kernel, r.cores) for r in results})} series")

    print("\nkernel availability (success rate):")
    for kernel, rate in sorted(availability(results).items()):
        print(f"  {kernel:<10} {rate:6.1%}")

    flags = detect_flags(results)
    incidents = merge_incidents(flags, gap_s=3 * SECONDS_PER_DAY)
    print(f"\ncontrol-chart flags: {len(flags)}; merged incidents: "
          f"{len(incidents)}")
    for incident in incidents:
        print(f"  {incident.kernel}@{incident.cores} cores: "
              f"{iso(incident.start_ts)} .. {iso(incident.end_ts)} "
              f"({incident.n_runs} runs, worst {incident.worst_sigma:.1f} sigma)")

    window_end = incident_start + 10 * SECONDS_PER_DAY
    detected = [
        i for i in incidents
        if i.kernel == "ior" and i.start_ts < window_end
        and i.end_ts >= incident_start
    ]
    if detected:
        lead = min(detected, key=lambda i: i.start_ts)
        drift_days = (lead.start_ts - incident_start) / SECONDS_PER_DAY
        print(f"\ninjected I/O degradation detected {drift_days:.1f} days "
              f"after onset, on the ior kernel only (as injected)")
    else:
        print("\nWARNING: injected degradation not detected")

    # persist the history in the instance warehouse
    schema = Database("ccr").create_schema("modw")
    n = ingest_appkernels(schema, results)
    print(f"stored {n} runs in fact_appkernel")


if __name__ == "__main__":
    main()
