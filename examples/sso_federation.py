#!/usr/bin/env python
"""Authentication across a federation (the paper's Figures 4 and 5).

Demonstrates:

- local-password and SSO sign-on to the same instance (Figure 4's user
  groups R and S);
- Shibboleth attribute pre-population for first-time users;
- Globus-style account linkage (the XSEDE flow);
- hub-as-identity-provider mode for a federation (Section II-D3);
- Job Viewer ACLs: users see their own jobs, staff see everything.

Run:  python examples/sso_federation.py
"""

from __future__ import annotations

from repro.auth import (
    Account,
    AuthError,
    Role,
    SamlError,
    SsoKind,
    SsoManager,
    hub_as_identity_provider,
    make_provider,
)


def main() -> None:
    # ---- Figure 4: one instance, two sign-on paths ------------------------
    ccr = SsoManager("ccr_xdmod")
    shibboleth = make_provider(SsoKind.SHIBBOLETH, "idp.buffalo.edu")
    ccr.configure_sso(shibboleth)

    # group R: a local-password user
    ccr.accounts.add(Account("rachel", roles={Role.USER}, pi="pi_smith"))
    ccr.local.set_password("rachel", "rachels-password")
    local_session = ccr.login_local("rachel", "rachels-password")
    print(f"group R: {local_session.username} via {local_session.method}")

    # group S: an SSO user, auto-provisioned with Shibboleth attributes
    shibboleth.register_user("sam", {
        "givenName": "Sam", "surname": "Okafor",
        "mail": "sam@buffalo.edu", "departmentNumber": "Chemistry",
    })
    sso_session = ccr.login_sso(shibboleth.idp.issue("sam", "ccr_xdmod"))
    account = ccr.accounts.get("sam")
    print(f"group S: {sso_session.username} via {sso_session.method}; "
          f"pre-populated: {account.full_name} <{account.email}>, "
          f"dept {account.sso_attributes['departmentNumber']}")
    assert local_session.capabilities == sso_session.capabilities
    print("both paths grant identical capabilities:",
          ", ".join(sorted(sso_session.capabilities)))

    # tampered assertions never authenticate
    from dataclasses import replace

    forged = replace(shibboleth.idp.issue("sam", "ccr_xdmod"), subject="admin")
    try:
        ccr.login_sso(forged)
    except SamlError as exc:
        print(f"forged assertion rejected: {exc}")

    # ---- XSEDE flow: Globus account linkage -------------------------------
    xsede = SsoManager("xsede_xdmod")
    globus = make_provider(SsoKind.GLOBUS, "auth.globus.org")
    xsede.configure_sso(globus)
    globus.register_user("globus-uuid-777")
    xsede.accounts.add(Account("gail", roles={Role.USER}))
    try:
        xsede.login_sso(globus.idp.issue("globus-uuid-777", "xsede_xdmod"))
    except AuthError:
        print("Globus sign-on requires linking first (the XSEDE rule)")
    xsede.globus_links.link("globus-uuid-777", "gail")
    session = xsede.login_sso(globus.idp.issue("globus-uuid-777", "xsede_xdmod"))
    print(f"after linking: Globus identity -> portal account {session.username}")

    # ---- Figure 5 / II-D3: hub authenticates the whole federation ----------
    satellites = [SsoManager("site_x"), SsoManager("site_y"), SsoManager("site_z")]
    hub_idp = hub_as_identity_provider("federation_hub", satellites)
    hub_idp.register_user("fiona", {"mail": "fiona@project.org"})
    for manager in satellites:
        session = manager.login_sso(hub_idp.idp.issue("fiona", manager.instance))
        print(f"federated user fiona signed onto {manager.instance} "
              f"via hub IdP ({session.method})")

    # an assertion scoped to one satellite is useless at another
    stolen = hub_idp.idp.issue("fiona", "site_x")
    try:
        satellites[1].login_sso(stolen)
    except SamlError:
        print("audience scoping holds: site_x assertion rejected at site_y")


if __name__ == "__main__":
    main()
