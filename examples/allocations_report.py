#!/usr/bin/env python
"""Allocations: granting, charging, and burn-rate reporting.

XDMoD supports "Jobs, Performance, and Allocations data" (Section III).
This example grants each PI group a yearly XD SU allocation on a simulated
cluster, reconciles every job against the covering grant, and produces the
burn-down report a center director reads — including the PIs who ran out
and the jobs that ran with no active allocation.

Run:  python examples/allocations_report.py
"""

from __future__ import annotations

from repro import XdmodInstance
from repro.realms import (
    Allocation,
    aggregate_allocations,
    allocation_balances,
    allocations_realm,
    reconcile_charges,
    register_allocations,
)
from repro.simulators import (
    ConversionTable,
    WorkloadGenerator,
    ccr_like_site,
    simulate_resource,
    to_sacct_log,
)
from repro.timeutil import ts
from repro.ui import render_bars


def main() -> None:
    site = ccr_like_site(scale=0.2)
    start, end = ts(2017, 1, 1), ts(2018, 1, 1)
    records = simulate_resource(
        site.resource, WorkloadGenerator(site.workload).generate(start, end)
    )
    conversion = ConversionTable.benchmark_resources({site.name: site.resource})
    instance = XdmodInstance("ccr_xdmod", conversion=conversion)
    instance.pipeline.ingest_sacct(
        to_sacct_log(records), default_resource=site.name
    )
    schema = instance.schema

    # grant every PI the same annual budget; sized so some groups overspend
    pis = sorted(r["username"] for r in schema.table("dim_pi").rows())
    total_xdsu = sum(r["xdsu"] for r in schema.table("fact_job").rows())
    per_pi_grant = round(total_xdsu / len(pis) * 1.1, -3)  # ~10% headroom
    register_allocations(schema, [
        Allocation(i + 1, pi, site.name, per_pi_grant, start, end)
        for i, pi in enumerate(pis)
    ])
    print(f"granted {per_pi_grant:,.0f} XD SUs to each of {len(pis)} PI groups")

    charged, uncovered = reconcile_charges(schema)
    print(f"reconciled {charged} jobs against allocations "
          f"({uncovered} ran without coverage)")

    aggregate_allocations(schema, "month")
    realm = allocations_realm()
    utilization = realm.query(
        schema, "grant_utilization", start=start, end=end,
        group_by="project", view="aggregate",
    ).totals()

    balances = allocation_balances(schema)
    print()
    labels = [b["project"] for b in balances]
    used = [b["xdsu_charged"] for b in balances]
    print(render_bars(labels, used,
                      title=f"XD SUs charged per PI group "
                            f"(grant = {per_pi_grant:,.0f})"))

    overspent = [b for b in balances if b["overspent"]]
    print(f"\n{len(overspent)} group(s) exceeded their grant:")
    for b in overspent:
        print(f"  {b['project']}: charged {b['xdsu_charged']:,.0f} of "
              f"{b['su_granted']:,.0f} "
              f"({utilization[b['project']]:.0%} utilization)")
    quietest = min(balances, key=lambda b: b["xdsu_charged"])
    print(f"least active group: {quietest['project']} "
          f"({quietest['remaining']:,.0f} XD SUs unspent)")


if __name__ == "__main__":
    main()
