"""Cloud realm extensions: reservations, OS/venue dimensions, state time,
and the SUPReMM-summary federation preset."""

from __future__ import annotations

import pytest

from repro.aggregation import Aggregator
from repro.core import (
    FederationHub,
    XdmodInstance,
    supremm_summary_filter,
)
from repro.etl import ingest_cloud_events, ingest_performance
from repro.realms import cloud_realm
from repro.simulators import generate_performance_batch
from repro.timeutil import SECONDS_PER_HOUR, ts
from repro.warehouse import Database

T0 = ts(2017, 1, 1)
T_APR = ts(2017, 4, 1)


def event(event_id, vm_id, etype, t, *, vcpus=2, mem=2.0, disk=40.0,
          os="ubuntu16.04", venue="horizon"):
    return {
        "event_id": event_id, "vm_id": vm_id, "event_type": etype,
        "ts": t, "instance_type": f"c{vcpus}", "vcpus": vcpus,
        "mem_gb": mem, "disk_gb": disk, "user": "u1", "project": "p1",
        "resource": "cloud", "os": os, "submission_venue": venue,
    }


@pytest.fixture()
def cloud_schema(cloud_events):
    schema = Database().create_schema("modw")
    ingest_cloud_events(schema, cloud_events)
    Aggregator(schema).aggregate_cloud("month")
    return schema


class TestReservationMetrics:
    def test_weighted_memory_reservation(self):
        """1h at 2 GB + 1h at 8 GB running -> 5 GB wall-hour-weighted."""
        schema = Database().create_schema("modw")
        events = [
            event(1, 1, "provision", T0, mem=2.0),
            event(2, 1, "start", T0, mem=2.0),
            event(3, 1, "resize", T0 + SECONDS_PER_HOUR, vcpus=8, mem=8.0),
            event(4, 1, "terminate", T0 + 2 * SECONDS_PER_HOUR, vcpus=8, mem=8.0),
        ]
        ingest_cloud_events(schema, events)
        Aggregator(schema).aggregate_cloud("month")
        value = cloud_realm().query(
            schema, "avg_mem_reserved_gb", start=T0, end=T_APR,
            view="aggregate",
        ).totals()["total"]
        assert value == pytest.approx(5.0)

    def test_disk_reservation(self, cloud_schema):
        value = cloud_realm().query(
            cloud_schema, "avg_disk_reserved_gb", start=T0, end=T_APR,
            view="aggregate",
        ).totals()["total"]
        assert value > 0

    def test_state_time_metrics(self):
        schema = Database().create_schema("modw")
        events = [
            event(1, 1, "provision", T0),
            event(2, 1, "start", T0),
            event(3, 1, "stop", T0 + SECONDS_PER_HOUR),
            event(4, 1, "start", T0 + 3 * SECONDS_PER_HOUR),
            event(5, 1, "pause", T0 + 4 * SECONDS_PER_HOUR),
            event(6, 1, "unpause", T0 + 5 * SECONDS_PER_HOUR),
            event(7, 1, "terminate", T0 + 6 * SECONDS_PER_HOUR),
        ]
        ingest_cloud_events(schema, events)
        Aggregator(schema).aggregate_cloud("month")
        realm = cloud_realm()
        stopped = realm.query(schema, "stopped_hours", start=T0, end=T_APR,
                              view="aggregate").totals()["total"]
        paused = realm.query(schema, "paused_hours", start=T0, end=T_APR,
                             view="aggregate").totals()["total"]
        changes = realm.query(schema, "n_state_changes", start=T0, end=T_APR,
                              view="aggregate").totals()["total"]
        assert stopped == pytest.approx(2.0)
        assert paused == pytest.approx(1.0)
        assert changes == 5  # start, stop, start, pause, unpause


class TestNewDimensions:
    def test_os_dimension(self, cloud_schema):
        by_os = cloud_realm().query(
            cloud_schema, "core_hours", start=T0, end=T_APR,
            group_by="os", view="aggregate",
        ).totals()
        assert set(by_os) <= {"centos7", "ubuntu16.04", "windows2016"}
        assert len(by_os) >= 2

    def test_submission_venue_dimension(self, cloud_schema):
        by_venue = cloud_realm().query(
            cloud_schema, "n_vms_started", start=T0, end=T_APR,
            group_by="submission_venue", view="aggregate",
        ).totals()
        assert set(by_venue) <= {"horizon", "api", "cli"}
        assert sum(by_venue.values()) == len(cloud_schema.table("fact_vm"))

    def test_dimension_partition_consistency(self, cloud_schema):
        """Grouping by any dimension partitions the same total."""
        realm = cloud_realm()
        total = realm.query(
            cloud_schema, "core_hours", start=T0, end=T_APR, view="aggregate",
        ).totals()["total"]
        for dimension in ("os", "submission_venue", "memory_level", "project"):
            parts = realm.query(
                cloud_schema, "core_hours", start=T0, end=T_APR,
                group_by=dimension, view="aggregate",
            ).totals()
            assert sum(parts.values()) == pytest.approx(total)

    def test_events_without_os_default_unknown(self):
        schema = Database().create_schema("modw")
        bare = {
            k: v for k, v in event(1, 1, "provision", T0).items()
            if k not in ("os", "submission_venue")
        }
        bare2 = {
            k: v for k, v in event(2, 1, "terminate", T0 + 3600).items()
            if k not in ("os", "submission_venue")
        }
        ingest_cloud_events(schema, [bare, bare2])
        vm = next(schema.table("fact_vm").rows())
        assert vm["os"] == "unknown"
        assert vm["submission_venue"] == "unknown"


class TestSupremmSummaryFederation:
    def test_next_release_filter(self, job_records, small_resource, sacct_log):
        """Section II-C5's plan: federate summarized performance data but
        never the raw timeseries."""
        satellite = XdmodInstance("perf_site")
        satellite.pipeline.ingest_sacct(
            sacct_log, default_resource=small_resource.name
        )
        batch = generate_performance_batch(
            job_records, small_resource, max_jobs=10
        )
        ingest_performance(satellite.schema, batch)

        hub = FederationHub("hub")
        hub.join(satellite, filter=supremm_summary_filter())
        fed = hub.database.schema("fed_perf_site")
        assert fed.has_table("fact_job_perf")
        assert len(fed.table("fact_job_perf")) == 10
        assert not fed.has_table("job_timeseries")
        assert fed.table("fact_job_perf").checksum() == (
            satellite.schema.table("fact_job_perf").checksum()
        )

    def test_filter_composes_with_routing(self):
        f = supremm_summary_filter(exclude_resources={"secret"})
        assert f.table_allowed("fact_job_perf")
        assert "secret" in f.exclude_resources
