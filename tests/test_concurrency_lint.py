"""Concurrency lint rules (R8–R10): lock inference, fixture positives and
negatives, the cross-file R9 graph, and the `# guards:` annotation
convention."""

from __future__ import annotations

import ast
import textwrap

import pytest

from repro.analysis import LintEngine, SchemaCatalog
from repro.analysis.concurrency import (
    ALL_PROJECT_RULES,
    LockOrderInversionRule,
    build_class_models,
)
from repro.analysis.rules import DEFAULT_CONFIG, LintConfig, RuleContext

#: inside LintConfig.blocking_paths (ui) — R10 active
UI = "src/repro/ui/fake.py"
#: outside blocking_paths — R10 scoped off
NEUTRAL = "src/repro/simulators/fake.py"


@pytest.fixture(scope="module")
def engine():
    # SchemaCatalog() empty: the concurrency rules don't need schemas,
    # and skipping build_default_catalog keeps the module fast
    return LintEngine(catalog=SchemaCatalog())


def lint(engine, source, path=UI):
    return engine.lint_source(textwrap.dedent(source), path)


def fired(engine, source, path=UI):
    return sorted({v.rule_id for v in lint(engine, source, path)})


def ctx_for(source, path=UI):
    source = textwrap.dedent(source)
    return ast.parse(source), RuleContext(
        path=path,
        source=source,
        lines=source.splitlines(),
        catalog=SchemaCatalog(),
        config=DEFAULT_CONFIG,
    )


# -- lock inference -----------------------------------------------------------


class TestLockInference:
    def test_with_body_mutations_infer_guards(self):
        tree, ctx = ctx_for(
            """
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []
                def add(self, x):
                    with self._lock:
                        self._items.append(x)
            """
        )
        models = build_class_models(tree, ctx)
        assert models["C"].guards == {"_lock": {"_items"}}

    def test_guards_annotation_seeds_model_without_inference(self):
        tree, ctx = ctx_for(
            """
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()  # guards: _count, _names
                    self._count = 0
                    self._names = []
            """
        )
        models = build_class_models(tree, ctx)
        assert models["C"].guards == {"_lock": {"_count", "_names"}}

    def test_create_lock_and_sanitized_lock_ctors_recognized(self):
        tree, ctx = ctx_for(
            """
            from repro.analysis.sanitizer import create_lock, SanitizedLock
            class A:
                def __init__(self):
                    self._lock = create_lock("A")  # guards: _x
            class B:
                def __init__(self, monitor):
                    self._lock = SanitizedLock("B", monitor)  # guards: _y
            """
        )
        models = build_class_models(tree, ctx)
        assert models["A"].guards == {"_lock": {"_x"}}
        assert models["B"].guards == {"_lock": {"_y"}}

    def test_class_without_lock_has_no_model(self):
        tree, ctx = ctx_for(
            """
            class C:
                def __init__(self):
                    self._items = []
                def add(self, x):
                    self._items.append(x)
            """
        )
        assert build_class_models(tree, ctx) == {}

    def test_nested_function_mutations_not_inferred(self):
        # a closure mutating self under the with is a different execution
        # time — inference must stay lexical to its own scope
        tree, ctx = ctx_for(
            """
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cbs = []
                def schedule(self):
                    with self._lock:
                        def cb():
                            self._cbs.append(1)
                        return cb
            """
        )
        models = build_class_models(tree, ctx)
        assert models["C"].guards == {"_lock": set()}


# -- R8: unguarded-shared-mutation --------------------------------------------


class TestUnguardedSharedMutation:
    def test_mutation_outside_lock_fires(self, engine):
        violations = [
            v
            for v in lint(
                engine,
                """
                import threading
                class C:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = []
                    def good(self, x):
                        with self._lock:
                            self._items.append(x)
                    def bad(self, x):
                        self._items.append(x)
                """,
            )
            if v.rule_id == "unguarded-shared-mutation"
        ]
        assert len(violations) == 1
        assert "C._items" in violations[0].message
        assert "_lock" in violations[0].message

    def test_annotated_guard_fires_without_any_locked_use(self, engine):
        # the # guards: contract alone is enough — no with-body needed
        assert "unguarded-shared-mutation" in fired(
            engine,
            """
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()  # guards: _count
                    self._count = 0
                def bump(self):
                    self._count += 1
            """,
        )

    def test_all_locked_is_silent(self, engine):
        assert fired(
            engine,
            """
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()  # guards: _count
                    self._count = 0
                def bump(self):
                    with self._lock:
                        self._count += 1
            """,
        ) == []

    def test_init_is_exempt(self, engine):
        assert fired(
            engine,
            """
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()  # guards: _items
                    self._items = []
                    self._items.append("seed")
            """,
        ) == []

    def test_wrong_lock_held_fires_and_names_the_right_one(self, engine):
        violations = [
            v
            for v in lint(
                engine,
                """
                import threading
                class C:
                    def __init__(self):
                        self._a = threading.Lock()  # guards: _x
                        self._b = threading.Lock()  # guards: _y
                        self._x = 0
                        self._y = 0
                    def bad(self):
                        with self._b:
                            self._x += 1
                """,
            )
            if v.rule_id == "unguarded-shared-mutation"
        ]
        assert len(violations) == 1
        assert "wrong" in violations[0].message
        assert "'_a'" in violations[0].message

    def test_unguarded_attr_in_lock_owning_class_silent(self, engine):
        # owning a lock does not make every attribute guarded
        assert fired(
            engine,
            """
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()  # guards: _shared
                    self._shared = {}
                    self._scratch = []
                def work(self, x):
                    self._scratch.append(x)
            """,
        ) == []

    def test_mutation_in_branch_under_lock_silent(self, engine):
        assert fired(
            engine,
            """
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()  # guards: _items
                    self._items = []
                def add(self, x):
                    with self._lock:
                        if x is not None:
                            self._items.append(x)
            """,
        ) == []

    def test_del_and_subscript_and_augassign_forms_fire(self, engine):
        violations = [
            v
            for v in lint(
                engine,
                """
                import threading
                class C:
                    def __init__(self):
                        self._lock = threading.Lock()  # guards: _m, _n
                        self._m = {}
                        self._n = 0
                    def bad(self, k, v):
                        self._m[k] = v
                        del self._m[k]
                        self._n += 1
                """,
            )
            if v.rule_id == "unguarded-shared-mutation"
        ]
        assert len(violations) == 3

    def test_suppression_with_reason_silences(self, engine):
        assert fired(
            engine,
            """
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()  # guards: _items
                    self._items = []
                def helper(self, x):
                    # repolint: ignore[unguarded-shared-mutation] -- caller holds _lock
                    self._items.append(x)
            """,
        ) == []


# -- R10: blocking-call-under-lock --------------------------------------------


class TestBlockingCallUnderLock:
    def test_time_sleep_under_lock_fires(self, engine):
        assert "blocking-call-under-lock" in fired(
            engine,
            """
            import threading, time
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                def slow(self):
                    with self._lock:
                        time.sleep(0.5)
            """,
        )

    def test_from_import_sleep_alias_fires(self, engine):
        assert "blocking-call-under-lock" in fired(
            engine,
            """
            import threading
            from time import sleep as snooze
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                def slow(self):
                    with self._lock:
                        snooze(0.5)
            """,
        )

    def test_open_and_thread_join_fire(self, engine):
        rule_hits = [
            v
            for v in lint(
                engine,
                """
                import threading
                class C:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._t = threading.Thread(target=print)
                    def bad(self):
                        with self._lock:
                            open("/tmp/x")
                            self._t.join()
                """,
            )
            if v.rule_id == "blocking-call-under-lock"
        ]
        assert len(rule_hits) == 2

    def test_str_join_is_silent(self, engine):
        # str.join takes the iterable positionally; Thread.join() does not
        assert fired(
            engine,
            """
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                def render(self, parts):
                    with self._lock:
                        return ", ".join(parts)
            """,
        ) == []

    def test_sleep_outside_lock_silent(self, engine):
        assert fired(
            engine,
            """
            import threading, time
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                def ok(self):
                    time.sleep(0.5)
                    with self._lock:
                        pass
            """,
        ) == []

    def test_path_scoping_config_driven(self, engine):
        src = """
        import threading, time
        class C:
            def __init__(self):
                self._lock = threading.Lock()
            def slow(self):
                with self._lock:
                    time.sleep(0.5)
        """
        assert fired(engine, src, path=NEUTRAL) == []
        scoped = LintEngine(
            catalog=SchemaCatalog(),
            config=LintConfig(blocking_paths=("repro/simulators/",)),
        )
        assert "blocking-call-under-lock" in fired(scoped, src, path=NEUTRAL)

    def test_foreign_lock_acquisition_under_self_lock_warns(self, engine):
        violations = [
            v
            for v in lint(
                engine,
                """
                import threading
                class C:
                    def __init__(self, other):
                        self._lock = threading.Lock()
                        self.other = other
                    def bad(self):
                        with self._lock:
                            with self.other._peer_lock:
                                pass
                """,
            )
            if v.rule_id == "blocking-call-under-lock"
        ]
        assert len(violations) == 1
        assert "foreign lock" in violations[0].message


# -- R9: lock-order-inversion -------------------------------------------------

A_SRC = """
import threading
class Alpha:
    def __init__(self):
        self._alock = threading.Lock()
    def ab(self, b: Beta):
        with self._alock:
            with b._block:
                pass
"""

B_INVERTED_SRC = """
import threading
class Beta:
    def __init__(self):
        self._block = threading.Lock()
    def ba(self, a: Alpha):
        with self._block:
            with a._alock:
                pass
"""

B_ORDERED_SRC = """
import threading
class Beta:
    def __init__(self):
        self._block = threading.Lock()
    def ba(self, a: Alpha):
        with a._alock:
            with self._block:
                pass
"""


class TestLockOrderInversion:
    def test_cross_file_inversion_fires_once(self, engine):
        violations = [
            v
            for v in engine.lint_sources(
                [
                    ("src/repro/ui/alpha.py", textwrap.dedent(A_SRC)),
                    ("src/repro/ui/beta.py", textwrap.dedent(B_INVERTED_SRC)),
                ]
            )
            if v.rule_id == "lock-order-inversion"
        ]
        assert len(violations) == 1
        assert "Alpha._alock" in violations[0].message
        assert "Beta._block" in violations[0].message

    def test_consistent_order_is_silent(self, engine):
        violations = [
            v
            for v in engine.lint_sources(
                [
                    ("src/repro/ui/alpha.py", textwrap.dedent(A_SRC)),
                    ("src/repro/ui/beta.py", textwrap.dedent(B_ORDERED_SRC)),
                ]
            )
            if v.rule_id == "lock-order-inversion"
        ]
        assert violations == []

    def test_single_file_inversion_via_lint_source(self, engine):
        source = """
        import threading
        class A:
            def __init__(self):
                self._l1 = threading.Lock()
                self._l2 = threading.Lock()
            def one(self):
                with self._l1:
                    with self._l2:
                        pass
            def two(self):
                with self._l2:
                    with self._l1:
                        pass
        """
        assert "lock-order-inversion" in fired(engine, source)

    def test_reentrant_same_lock_is_not_an_edge(self, engine):
        assert fired(
            engine,
            """
            import threading
            class A:
                def __init__(self):
                    self._lock = threading.RLock()
                def re(self):
                    with self._lock:
                        with self._lock:
                            pass
            """,
        ) == []

    def test_suppressed_acquisition_drops_the_edge(self, engine):
        suppressed = B_INVERTED_SRC.replace(
            "with a._alock:",
            "with a._alock:  # repolint: ignore[lock-order-inversion] -- replay path, documented order exception",
        )
        violations = [
            v
            for v in engine.lint_sources(
                [
                    ("src/repro/ui/alpha.py", textwrap.dedent(A_SRC)),
                    ("src/repro/ui/beta.py", textwrap.dedent(suppressed)),
                ]
            )
            if v.rule_id == "lock-order-inversion"
        ]
        assert violations == []

    def test_unresolvable_foreign_lock_drops_edge_not_guesses(self, engine):
        # two classes own `_lock`, receiver has no type hint: ambiguous
        violations = [
            v
            for v in engine.lint_sources(
                [
                    (
                        "src/repro/ui/x.py",
                        textwrap.dedent(
                            """
                            import threading
                            class X:
                                def __init__(self):
                                    self._lock = threading.Lock()
                                def go(self, peer):
                                    with self._lock:
                                        with peer._lock:
                                            pass
                            """
                        ),
                    ),
                    (
                        "src/repro/ui/y.py",
                        textwrap.dedent(
                            """
                            import threading
                            class Y:
                                def __init__(self):
                                    self._lock = threading.Lock()
                            """
                        ),
                    ),
                ]
            )
            if v.rule_id == "lock-order-inversion"
        ]
        assert violations == []

    def test_local_ctor_binding_resolves_receiver(self):
        # x = Beta(); with x._block under self._alock — hint via local ctor
        rule = LockOrderInversionRule()
        src_a = textwrap.dedent(
            """
            import threading
            class Alpha:
                def __init__(self):
                    self._alock = threading.Lock()
                def ab(self):
                    x = Beta()
                    with self._alock:
                        with x._block:
                            pass
            """
        )
        tree_a, ctx_a = ctx_for(src_a, path="src/repro/ui/a.py")
        tree_b, ctx_b = ctx_for(B_INVERTED_SRC, path="src/repro/ui/b.py")
        violations = rule.finalize(
            [rule.collect(tree_a, ctx_a), rule.collect(tree_b, ctx_b)]
        )
        assert len(violations) == 1

    def test_three_way_cycle_detected(self, engine):
        files = []
        order = [("A", "B"), ("B", "C"), ("C", "A")]
        for i, (first, second) in enumerate(order):
            files.append(
                (
                    f"src/repro/ui/f{i}.py",
                    textwrap.dedent(
                        f"""
                        import threading
                        class Cls{first}:
                            def __init__(self):
                                self._lock_{first.lower()} = threading.Lock()
                            def go(self, peer: Cls{second}):
                                with self._lock_{first.lower()}:
                                    with peer._lock_{second.lower()}:
                                        pass
                        """
                    ),
                )
            )
        violations = [
            v
            for v in engine.lint_sources(files)
            if v.rule_id == "lock-order-inversion"
        ]
        assert len(violations) == 1
        assert "ClsA._lock_a" in violations[0].message

    def test_summaries_are_picklable(self):
        import pickle

        rule = LockOrderInversionRule()
        tree, ctx = ctx_for(A_SRC, path="src/repro/ui/a.py")
        summary = rule.collect(tree, ctx)
        assert pickle.loads(pickle.dumps(summary)) == summary

    def test_registered_as_project_rule(self):
        assert [r.id for r in ALL_PROJECT_RULES] == ["lock-order-inversion"]
